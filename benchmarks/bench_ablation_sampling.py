"""Ablation A2 -- sample-size policy.

DESIGN.md documents why Eq. (16)'s theoretical realization count is replaced
by practical policies in the experiments.  This ablation quantifies the gap:
it reports the theoretical ``l*`` (computed, not run), the practical policy's
choice, and the empirical quality (acceptance probability relative to pmax)
achieved by several fixed realization budgets.
"""

from __future__ import annotations

from conftest import emit

from repro.core.parameters import ParameterCoupling, SamplePolicy, realization_count, solve_parameters
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, run_raf
from repro.experiments.harness import evaluate_invitation
from repro.experiments.reporting import format_table

BUDGETS = (500, 2000, 8000)


def test_ablation_sample_policies(benchmark, dataset_graphs, dataset_pairs, bench_config):
    graph = dataset_graphs["wiki"]
    pair = dataset_pairs["wiki"][0]
    alpha, epsilon = 0.2, 0.02
    parameters = solve_parameters(alpha, epsilon, graph.num_nodes, ParameterCoupling.BALANCED)

    rows = [
        {
            "policy": "theoretical (Eq. 16, computed only)",
            "realizations": realization_count(
                parameters, pair.pmax, bench_config.confidence_n, policy=SamplePolicy.THEORETICAL
            ),
            "raf_size": None,
            "acceptance/pmax": None,
        },
        {
            "policy": "practical (clamped)",
            "realizations": realization_count(
                parameters, pair.pmax, bench_config.confidence_n, policy=SamplePolicy.PRACTICAL
            ),
            "raf_size": None,
            "acceptance/pmax": None,
        },
    ]

    problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=alpha)

    def run_with_budget(budget: int):
        config = RAFConfig(
            epsilon=epsilon,
            sample_policy=SamplePolicy.FIXED,
            fixed_realizations=budget,
        )
        return run_raf(problem, config, rng=707 + budget)

    for budget in BUDGETS:
        result = run_with_budget(budget)
        achieved = evaluate_invitation(
            graph, pair.source, pair.target, result.invitation, num_samples=800, rng=808 + budget
        )
        rows.append(
            {
                "policy": f"fixed l = {budget}",
                "realizations": budget,
                "raf_size": result.size,
                "acceptance/pmax": achieved / max(pair.pmax, 1e-9),
            }
        )

    benchmark.pedantic(run_with_budget, args=(BUDGETS[-1],), rounds=1, iterations=1)
    emit(
        "ablation_sampling",
        format_table(rows, title="Ablation A2 -- realization-count policies (wiki pair)"),
    )

    theoretical = rows[0]["realizations"]
    practical = rows[1]["realizations"]
    # The documented gap: the worst-case prescription is orders of magnitude
    # above anything the empirical curve needs.
    assert theoretical > 100 * practical
    fixed_quality = [row["acceptance/pmax"] for row in rows[2:]]
    assert all(quality >= 0.0 for quality in fixed_quality)
    # More realizations should not hurt substantially (saturation).
    assert fixed_quality[-1] >= fixed_quality[0] - 0.15
