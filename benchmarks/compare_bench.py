"""Gate a fresh engine-throughput report against the committed baseline.

Used by the CI ``bench`` job::

    python benchmarks/compare_bench.py BENCH_engine.json fresh.json \
        --max-regression 0.30

Raw paths/sec are not comparable across machines (the committed baseline
was measured on different hardware than the CI runner), so the gate is on
each engine's ``speedup_vs_dict_seed`` ratio: the dict-based seed sampler
is re-timed in the *same* fresh run on the *same* machine, which makes the
ratio hardware-neutral.  An engine whose fresh speedup falls more than
``--max-regression`` (default 30%) below its committed speedup fails the
gate; absolute paths/sec for both runs are printed alongside for context.
Engines present in only one report (e.g. the no-numpy leg) are reported
but never gated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(baseline: dict, fresh: dict, max_regression: float) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    failures: list[str] = []
    baseline_results = baseline["results"]
    fresh_results = fresh["results"]
    header = f"{'engine':<12} {'base paths/s':>14} {'fresh paths/s':>14} {'base x':>8} {'fresh x':>8} {'ratio':>7}"
    print(header)
    print("-" * len(header))
    for engine in baseline_results:
        base_row = baseline_results[engine]
        fresh_row = fresh_results.get(engine)
        if fresh_row is None:
            print(f"{engine:<12} {base_row['paths_per_sec']:>14} {'(absent)':>14}")
            continue
        base_speedup = base_row["speedup_vs_dict_seed"]
        fresh_speedup = fresh_row["speedup_vs_dict_seed"]
        ratio = fresh_speedup / base_speedup if base_speedup else 1.0
        print(
            f"{engine:<12} {base_row['paths_per_sec']:>14} {fresh_row['paths_per_sec']:>14} "
            f"{base_speedup:>8} {fresh_speedup:>8} {ratio:>7.2f}"
        )
        if engine == "dict-seed":  # the normalizer itself, always ratio 1
            continue
        if ratio < 1.0 - max_regression:
            failures.append(
                f"{engine}: speedup regressed {1.0 - ratio:.0%} "
                f"({base_speedup}x -> {fresh_speedup}x, allowed {max_regression:.0%})"
            )
    for engine in fresh_results:
        if engine not in baseline_results:
            print(f"{engine:<12} {'(new)':>14} {fresh_results[engine]['paths_per_sec']:>14}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_engine.json")
    parser.add_argument("fresh", type=Path, help="report from the current run")
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="largest tolerated relative drop in speedup_vs_dict_seed (default: 0.30)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    failures = compare(baseline, fresh, args.max_regression)
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
