"""Gate a fresh benchmark report against a committed baseline.

Used by the CI ``bench`` job::

    python benchmarks/compare_bench.py BENCH_engine.json fresh.json \
        --max-regression 0.30 --require "numpy>=python"
    python benchmarks/compare_bench.py BENCH_pool.json fresh.json \
        --metric speedup_vs_no_pool --max-regression 0.30

Raw seconds or paths/sec are not comparable across machines (the committed
baselines were measured on different hardware than the CI runner), so the
gate is on a *ratio* metric that each report normalizes within its own run
on its own machine: ``speedup_vs_dict_seed`` for the engine-throughput
report (the dict-based seed sampler is re-timed in the same fresh run) and
``speedup_vs_no_pool`` for the pool-reuse report (the pool-free arm is
re-timed in the same fresh run).  A row whose fresh metric falls more than
``--max-regression`` (default 30%) below its committed value fails the
gate; rows present in only one report, and rows without the metric, are
reported but never gated.  Absolute context (paths/sec or seconds) is
printed alongside when available.

``--lower-is-better`` flips the gate's direction for latency-style metrics
(e.g. the service report's ``socket_p99_ms``): the fresh value may exceed
the committed one by at most ``--max-regression``, instead of falling
below it.

``--require "A>=B"`` adds a *cross-row* assertion on the fresh report:
row ``A``'s metric must be at least row ``B``'s.  This is how the bench
job encodes invariants the per-row regression gate cannot see -- e.g.
``numpy>=python`` guards against the vectorized backend silently losing
to the pure-Python one (which is exactly what happened, ungated, at
PRs 1-4).  A required row missing from the fresh report, or missing the
metric, fails the gate rather than passing vacuously.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _context(row: dict) -> str:
    if "paths_per_sec" in row:
        return str(row["paths_per_sec"])
    if "seconds" in row:
        return f"{row['seconds']}s"
    return "-"


def parse_requirement(spec: str) -> tuple[str, str]:
    """Parse one ``--require`` spec of the form ``"row_a>=row_b"``."""
    left, separator, right = spec.partition(">=")
    if not separator or not left.strip() or not right.strip():
        raise SystemExit(f"--require expects 'row_a>=row_b', got {spec!r}")
    return left.strip(), right.strip()


def check_requirements(fresh: dict, metric: str, requirements: list[str]) -> list[str]:
    """Cross-row assertions on the fresh report (see the module docstring)."""
    failures: list[str] = []
    results = fresh["results"]
    for spec in requirements:
        stronger, weaker = parse_requirement(spec)
        values = []
        for name in (stronger, weaker):
            row = results.get(name)
            value = row.get(metric) if row is not None else None
            if value is None:
                failures.append(
                    f"--require {spec!r}: row {name!r} is missing (or lacks the "
                    f"metric {metric!r}) in the fresh report"
                )
                break
            values.append(value)
        else:
            if values[0] < values[1]:
                failures.append(
                    f"--require {spec!r} violated: {stronger}={values[0]} < "
                    f"{weaker}={values[1]} ({metric})"
                )
    return failures


def compare(
    baseline: dict,
    fresh: dict,
    max_regression: float,
    metric: str,
    *,
    lower_is_better: bool = False,
) -> list[str]:
    """Return a list of failure messages (empty when the gate passes)."""
    failures: list[str] = []
    gated_rows = 0
    baseline_results = baseline["results"]
    fresh_results = fresh["results"]
    header = (
        f"{'row':<12} {'base ctx':>14} {'fresh ctx':>14} "
        f"{'base metric':>12} {'fresh metric':>12} {'ratio':>7}"
    )
    print(f"gating metric: {metric}")
    print(header)
    print("-" * len(header))
    for name in baseline_results:
        base_row = baseline_results[name]
        fresh_row = fresh_results.get(name)
        if fresh_row is None:
            print(f"{name:<12} {_context(base_row):>14} {'(absent)':>14}")
            continue
        base_metric = base_row.get(metric)
        fresh_metric = fresh_row.get(metric)
        if base_metric is None or fresh_metric is None:
            print(f"{name:<12} {_context(base_row):>14} {_context(fresh_row):>14} "
                  f"{'(no metric)':>12}")
            continue
        ratio = fresh_metric / base_metric if base_metric else 1.0
        print(
            f"{name:<12} {_context(base_row):>14} {_context(fresh_row):>14} "
            f"{base_metric:>12} {fresh_metric:>12} {ratio:>7.2f}"
        )
        if base_metric == 1.0 and fresh_metric == 1.0:
            continue  # the normalizer row itself, always ratio 1
        gated_rows += 1
        if lower_is_better:
            if ratio > 1.0 + max_regression:
                failures.append(
                    f"{name}: {metric} regressed {ratio - 1.0:.0%} "
                    f"({base_metric} -> {fresh_metric}, allowed {max_regression:.0%})"
                )
        elif ratio < 1.0 - max_regression:
            failures.append(
                f"{name}: {metric} regressed {1.0 - ratio:.0%} "
                f"({base_metric}x -> {fresh_metric}x, allowed {max_regression:.0%})"
            )
    for name in fresh_results:
        if name not in baseline_results:
            print(f"{name:<12} {'(new)':>14} {_context(fresh_results[name]):>14}")
    if gated_rows == 0:
        failures.append(
            f"no row in both reports carries the metric {metric!r} (other than "
            "normalizers); the gate would pass vacuously -- check --metric "
            "against the report schema"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline report")
    parser.add_argument("fresh", type=Path, help="report from the current run")
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="largest tolerated relative drop in the gated metric (default: 0.30)",
    )
    parser.add_argument(
        "--metric", default="speedup_vs_dict_seed",
        help="per-row ratio field to gate on (default: speedup_vs_dict_seed)",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="A>=B",
        help="cross-row assertion on the fresh report: row A's metric must be "
             "at least row B's (repeatable)",
    )
    parser.add_argument(
        "--lower-is-better", action="store_true",
        help="gate a latency-style metric: fail when the fresh value exceeds "
             "the baseline by more than --max-regression",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    failures = compare(
        baseline, fresh, args.max_regression, args.metric,
        lower_is_better=args.lower_is_better,
    )
    failures.extend(check_requirements(fresh, args.metric, args.require))
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
