"""Wall-clock win from request coalescing in the query service (repro/service).

Models the ROADMAP's heavy-traffic regime: ``--clients`` closed-loop
clients replay ``--rounds`` waves of requests drawn from a small hot query
set (pmax / evaluate / maximize over ``--hot-pairs`` screened pairs).  The
same deterministic schedule -- every request a pure function of labeled
seed derivations, see :mod:`repro.service.loadgen` -- is replayed against
two arms on fresh pools with the same pool seed:

* ``no-coalesce``: every admitted request executes (the pool still caches
  samples, so this arm measures the service *without* coalescing);
* ``coalesce``: duplicate in-flight requests attach to one execution.

``--socket`` replays the same schedule twice more over real TCP
connections through the asyncio front end (:mod:`repro.service.server`,
one socket per client), producing the ``socket-no-coalesce`` /``socket``
rows; the ``socket`` row carries the client-side ``socket_p99_ms`` tail
latency alongside its own ``coalesce_speedup``.

The benchmark asserts per-request *byte* identity between the arms (the
socket arms included) and against standalone library calls before
reporting a single number; the service changes cost, never results.  Run
standalone with::

    PYTHONPATH=src python benchmarks/bench_service_load.py
        [--clients 48] [--rounds 16] [--output PATH] [--min-speedup X]
        [--socket] [--max-socket-p99-ms MS]

``--min-speedup`` turns the report into a gate (the CI ``service-load``
job requires 2.0 in-process and ``--min-socket-speedup`` 1.1 over TCP --
the wire and event-loop cost is paid per request either way, which
dilutes the socket arm's coalescing win), and ``--max-socket-p99-ms`` is
an absolute ceiling on the socket tail latency.  Results are written to
``BENCH_service.json`` at the repository root in the ``compare_bench.py``
schema, gated on ``coalesce_speedup`` drift (both transports) plus
(``--lower-is-better``) drift on ``socket_p99_ms``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from bench_engine_throughput import _benchmark_graph

from repro.service import run_load_benchmark
from repro.service.loadgen import emit_load_report

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_service.json"

_SEED = 20190711
_POOL_SEED = 77


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hot-pairs", type=int, default=2,
                        help="screened hot (source, target) pairs (default: 2)")
    parser.add_argument("--clients", type=int, default=48,
                        help="closed-loop clients per wave (default: 48)")
    parser.add_argument("--rounds", type=int, default=16,
                        help="request waves replayed (default: 16)")
    parser.add_argument("--nodes", type=int, default=1500,
                        help="benchmark graph size (default: 1500)")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH,
                        help=f"where to write the JSON report (default: {OUTPUT_PATH})")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the coalescing arm reaches this speedup")
    parser.add_argument("--socket", action="store_true",
                        help="also replay both arms over TCP through the asyncio "
                             "front end (adds the socket/socket-no-coalesce rows)")
    parser.add_argument("--min-socket-speedup", type=float, default=None,
                        help="fail unless the socket coalescing arm reaches this "
                             "speedup (a lower bar than --min-speedup: the wire "
                             "overhead is paid per request either way)")
    parser.add_argument("--max-socket-p99-ms", type=float, default=None,
                        help="fail when the socket arm's client-side p99 exceeds "
                             "this many milliseconds (requires --socket)")
    args = parser.parse_args(argv)
    graph, _, _ = _benchmark_graph(num_nodes=args.nodes)
    report = run_load_benchmark(
        graph,
        hot_pairs=args.hot_pairs,
        num_clients=args.clients,
        rounds=args.rounds,
        seed=_SEED,
        pool_seed=_POOL_SEED,
        socket_transport=args.socket,
    )
    return emit_load_report(
        report,
        output=args.output,
        min_speedup=args.min_speedup,
        min_socket_speedup=args.min_socket_speedup,
        max_socket_p99_ms=args.max_socket_p99_ms,
    )


if __name__ == "__main__":
    sys.exit(main())
