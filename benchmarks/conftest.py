"""Shared fixtures for the benchmark suite.

Every benchmark reproduces one table or figure of the paper (or one
ablation) at a laptop-friendly scale: the dataset stand-ins are generated at
a small fraction of the original SNAP sizes and a handful of (s, t) pairs is
used per dataset.  Scale and pair count can be raised via the environment
variables ``REPRO_BENCH_SCALE`` (multiplier on the default scales) and
``REPRO_BENCH_PAIRS``.

Each benchmark prints the reproduced rows/series and also writes them to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture;
EXPERIMENTS.md is written from those files.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.pair_selection import select_pairs
from repro.graph.datasets import DATASET_NAMES, load_dataset

#: Default generation scale per dataset (fraction of the original node count).
BENCH_SCALES = {
    "wiki": 0.05,
    "hepth": 0.02,
    "hepph": 0.015,
    "youtube": 0.0015,
}

RESULTS_DIR = Path(__file__).parent / "results"

_SCALE_MULTIPLIER = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
_NUM_PAIRS = int(os.environ.get("REPRO_BENCH_PAIRS", "3"))
_SEED = 20190707


def emit(name: str, text: str) -> None:
    """Print a reproduced table/series and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The scaled-down Sec. IV protocol shared by all figure benchmarks."""
    return ExperimentConfig(
        num_pairs=_NUM_PAIRS,
        alphas=(0.05, 0.1, 0.2, 0.3),
        realizations=3000,
        eval_samples=250,
        pair_screen_samples=300,
        seed=_SEED,
    )


@pytest.fixture(scope="session")
def dataset_graphs():
    """The four Table-I stand-ins at benchmark scale."""
    return {
        name: load_dataset(name, scale=BENCH_SCALES[name] * _SCALE_MULTIPLIER, rng=_SEED + index)
        for index, name in enumerate(DATASET_NAMES)
    }


@pytest.fixture(scope="session")
def dataset_pairs(dataset_graphs, bench_config):
    """Screened (s, t) pairs per dataset, following the paper's pmax >= 0.01 rule."""
    pairs = {}
    for name, graph in dataset_graphs.items():
        pairs[name] = select_pairs(
            graph,
            bench_config.num_pairs,
            pmax_threshold=bench_config.pmax_threshold,
            pmax_ceiling=bench_config.pmax_ceiling,
            min_distance=bench_config.min_distance,
            screen_samples=bench_config.pair_screen_samples,
            rng=_SEED,
        )
    return pairs
