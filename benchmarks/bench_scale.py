"""Out-of-core scale benchmark: compile and sample a million-node snapshot.

Exercises the snapshot tier (DESIGN.md §8) end to end at a size the
in-memory dict graph cannot reach comfortably:

* ``compile`` -- stream a deterministic 10-regular-per-gap synthetic edge
  stream (ring plus nine chordal gaps: degree 20, ``m = 10 n``) through
  :func:`repro.graph.stream_compiler.compile_edge_list` into an on-disk
  snapshot, in a forked child whose ``resource.getrusage`` peak RSS is the
  row's headline: the compiler never materializes a dict graph, so the
  resident cost is the interner plus bounded chunk buffers plus the dirty
  pages of the columns being written -- far below the several GB a
  ``SocialGraph`` of 10M edges costs.  The ``--max-compile-rss`` gate
  (default 2 GiB at full size) turns the bound into an assertion.
* ``mapped-python`` / ``mapped-numpy`` / ``mapped-numpy-alias`` -- open the
  snapshot memory-mapped (``CompiledGraph.open``) and reverse-sample paths
  through each engine, each arm in its own forked child so its peak RSS
  reflects only the pages that sampling actually touched.
* ``inmemory`` -- the same snapshot opened with ``mmap=False`` (columns
  fully loaded) through the fastest engine, re-timed in the same run on
  the same machine: the committed report's ``mapped_share`` on the
  ``mapped-numpy-alias`` row is its throughput relative to this arm, the
  machine-normalized ratio the CI bench job gates with
  ``compare_bench.py --metric mapped_share`` (mapped sampling must stay
  within 30% drift of the committed share; the absolute floor is
  ``--min-mapped-share``).

Before timing anything, the benchmark asserts every engine samples
*bit-identical* paths from the mapped snapshot and the fully-loaded one,
so an out-of-core arm that drifted from the in-memory streams can never
post a number.  Results are written to ``BENCH_scale.json`` at the
repository root.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_scale.py [--nodes N] [--paths N]
        [--output PATH] [--snapshot-dir DIR] [--max-compile-rss MB]
        [--min-mapped-share X]

The committed report uses the full size (``--nodes 1000000``: one million
nodes, ten million undirected edges); the CI bench job replays a
size-capped run (200k nodes) and gates the ratio metrics against the
committed baseline with ``benchmarks/compare_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import resource
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_scale.json"

_SEED = 20190707

#: Ring gap plus nine chordal gaps.  All gaps are distinct, smaller than
#: ``n/2`` and no two sum to ``n`` (for any benchmark-sized ``n``), so the
#: generated undirected pairs never collide: exactly ``len(_GAPS) * n``
#: unique edges, degree ``2 * len(_GAPS)`` everywhere, no self-loops.  A
#: collision-free stream lets the compiler run with ``dedup=False`` -- no
#: duplicate set, so compile RSS measures only the unavoidable state.
_GAPS = (1, 2, 3, 5, 7, 11, 13, 17, 19, 23)

#: Nodes per generated chunk (pairs with the default ``chunk_edges``).
_GEN_CHUNK = 1 << 20


def _edge_stream(num_nodes: int):
    """A replayable chunked edge stream: ``(u, (u + gap) % n)`` per gap."""
    import numpy as np

    def factory():
        for gap in _GAPS:
            for lo in range(0, num_nodes, _GEN_CHUNK):
                u = np.arange(lo, min(lo + _GEN_CHUNK, num_nodes), dtype=np.int64)
                yield u, (u + gap) % num_nodes

    return factory


def _peak_rss_mb() -> float:
    """This process's peak resident set size in MiB (Linux: ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _arm_compile(conn, num_nodes: int, snapshot_dir: str) -> None:
    """Forked child: stream-compile the synthetic graph, report RSS + rate."""
    from repro.graph.stream_compiler import compile_edge_list

    start = time.perf_counter()
    result = compile_edge_list(
        _edge_stream(num_nodes), snapshot_dir,
        weights="degree", name=f"scale-{num_nodes}", dedup=False,
    )
    elapsed = time.perf_counter() - start
    assert result.num_nodes == num_nodes
    assert result.num_edges == num_nodes * len(_GAPS)
    assert result.self_loops_skipped == 0 and result.duplicates_skipped == 0
    conn.send({
        "seconds": round(elapsed, 2),
        "edges_per_sec": round(result.num_edges / elapsed, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "num_nodes": result.num_nodes,
        "num_edges": result.num_edges,
        "digest": result.digest,
    })


def _bench_pair(graph):
    """The benchmark (source, target, stop_set): antipodal on the ring."""
    source = 0
    target = graph.num_nodes // 2
    return source, target, graph.neighbor_set(source)


def _arm_sample(conn, snapshot_dir: str, engine_name: str, mmap: bool, num_paths: int) -> None:
    """Forked child: open the snapshot one way, sample, report RSS + rate."""
    from repro.diffusion.engine import create_engine
    from repro.graph.compiled import CompiledGraph

    graph = CompiledGraph.open(snapshot_dir, mmap=mmap)
    engine = create_engine(graph, engine_name)
    _, target, stop_set = _bench_pair(graph)

    def run(count):
        batch = getattr(engine, "sample_path_batch", None)
        if batch is not None:
            return batch(target, stop_set, count, rng=_SEED).type1_count()
        return sum(p.is_type1 for p in engine.sample_paths(target, stop_set, count, rng=_SEED))

    run(max(64, num_paths // 64))  # warm-up: fault in the hot pages once
    best = float("inf")
    type1 = 0
    for _ in range(2):
        start = time.perf_counter()
        type1 = run(num_paths)
        best = min(best, time.perf_counter() - start)
    conn.send({
        "paths_per_sec": round(num_paths / best, 1),
        "num_paths": num_paths,
        "type1_fraction": round(type1 / num_paths, 4),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "mapped": mmap,
    })


def _run_forked(target, *args) -> dict:
    """Run one arm in a forked child so its peak RSS is isolated; return its row."""
    context = multiprocessing.get_context("fork")
    parent, child = context.Pipe(duplex=False)
    process = context.Process(target=target, args=(child, *args))
    process.start()
    child.close()
    try:
        row = parent.recv()
    except EOFError:
        process.join()
        raise RuntimeError(f"benchmark arm {target.__name__} died (exit {process.exitcode})")
    process.join()
    return row


def assert_mapped_bit_identity(snapshot_dir: str, count: int = 2000) -> list[str]:
    """Every engine must sample identical paths mapped and fully loaded.

    Asserted inside the benchmark (before timing) so an out-of-core arm
    that got faster by drifting from the in-memory streams fails the bench
    job instead of posting a number.  Returns the engine names checked.
    """
    from repro.diffusion.engine import available_engines, create_engine
    from repro.graph.compiled import CompiledGraph

    mapped = CompiledGraph.open(snapshot_dir, mmap=True)
    loaded = CompiledGraph.open(snapshot_dir, mmap=False)
    _, target, stop_set = _bench_pair(mapped)
    names = [name for name in available_engines() if name != "auto"]
    for name in names:
        left = create_engine(mapped, name).sample_paths(target, stop_set, count, rng=_SEED)
        right = create_engine(loaded, name).sample_paths(target, stop_set, count, rng=_SEED)
        assert left == right, f"engine {name!r} diverged between mapped and in-memory columns"
    return names


def run_benchmark(num_nodes: int, num_paths: int, snapshot_dir: str | None = None) -> dict:
    """Compile the synthetic graph, verify bit-identity, time every arm."""
    from repro.diffusion.engine import available_engines

    if "numpy" not in available_engines():
        raise RuntimeError("the scale benchmark needs numpy (snapshots are .npy columns)")
    cleanup = snapshot_dir is None
    if cleanup:
        snapshot_dir = tempfile.mkdtemp(prefix="repro-bench-scale-")
    try:
        results = {"compile": _run_forked(_arm_compile, num_nodes, snapshot_dir)}
        engines = assert_mapped_bit_identity(snapshot_dir)
        for name in engines:
            results[f"mapped-{name}"] = _run_forked(
                _arm_sample, snapshot_dir, name, True, num_paths
            )
        fastest = "numpy-alias" if "numpy-alias" in engines else "numpy"
        results["inmemory"] = _run_forked(_arm_sample, snapshot_dir, fastest, False, num_paths)
        mapped_row = results[f"mapped-{fastest}"]
        mapped_row["mapped_share"] = round(
            mapped_row["paths_per_sec"] / results["inmemory"]["paths_per_sec"], 2
        )
        return {
            "benchmark": "scale",
            "graph": {
                "nodes": num_nodes,
                "edges": num_nodes * len(_GAPS),
                "model": "ring+chordal-gaps",
                "degree": 2 * len(_GAPS),
            },
            "num_paths": num_paths,
            "bit_identical": True,
            "inmemory_engine": fastest,
            "results": results,
        }
    finally:
        if cleanup:
            shutil.rmtree(snapshot_dir, ignore_errors=True)


def write_report(report: dict, path: Path = OUTPUT_PATH) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def test_scale_smoke(tmp_path):
    """Size-capped smoke of the full pipeline (no repo-root report rewrite).

    The committed BENCH_scale.json comes from the full 1M-node standalone
    run; this test only proves the benchmark machinery -- forked-arm RSS
    accounting, bit-identity gate, ratio metrics -- on a small graph.
    """
    import pytest

    try:
        import numpy  # noqa: F401
    except ImportError:
        pytest.skip("scale benchmark needs numpy")
    report = run_benchmark(num_nodes=20_000, num_paths=4_000,
                           snapshot_dir=str(tmp_path / "snap"))
    results = report["results"]
    assert results["compile"]["num_edges"] == 20_000 * len(_GAPS)
    assert results["compile"]["peak_rss_mb"] < 2048
    assert report["bit_identical"]
    fastest = report["inmemory_engine"]
    share = results[f"mapped-{fastest}"]["mapped_share"]
    # Mapped sampling must stay in the same league as fully-loaded columns
    # (at smoke size every page is cache-warm, so the share sits near 1).
    assert share >= 0.25, f"mapped sampling only {share}x of in-memory throughput"
    for name, row in results.items():
        if name != "compile":
            assert row["paths_per_sec"] > 0 and row["peak_rss_mb"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=1_000_000,
                        help="synthetic graph size; edges are 10x this (default: 1000000)")
    parser.add_argument("--paths", type=int, default=200_000,
                        help="reverse-sampled paths per arm (default: 200000)")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH,
                        help=f"where to write the JSON report (default: {OUTPUT_PATH})")
    parser.add_argument("--snapshot-dir", type=str, default=None,
                        help="keep the compiled snapshot here (default: a temp dir, removed)")
    parser.add_argument("--max-compile-rss", type=float, default=None, metavar="MB",
                        help="fail if the streaming compile arm's peak RSS exceeds this")
    parser.add_argument("--min-mapped-share", type=float, default=None, metavar="X",
                        help="fail unless mapped sampling reaches this fraction of the "
                             "in-memory arm's throughput")
    cli_args = parser.parse_args()
    report = run_benchmark(cli_args.nodes, cli_args.paths, snapshot_dir=cli_args.snapshot_dir)
    write_report(report, cli_args.output)
    print(json.dumps(report, indent=2))

    compile_rss = report["results"]["compile"]["peak_rss_mb"]
    if cli_args.max_compile_rss is not None and compile_rss > cli_args.max_compile_rss:
        print(f"FAIL: compile peak RSS {compile_rss} MB exceeds "
              f"{cli_args.max_compile_rss} MB", file=sys.stderr)
        sys.exit(1)
    share = report["results"][f"mapped-{report['inmemory_engine']}"]["mapped_share"]
    if cli_args.min_mapped_share is not None and share < cli_args.min_mapped_share:
        print(f"FAIL: mapped_share {share} below required {cli_args.min_mapped_share}",
              file=sys.stderr)
        sys.exit(1)
