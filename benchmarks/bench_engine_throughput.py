"""Throughput benchmark: dict-based seed sampler vs the compiled engines.

Measures reverse-sampled paths/second on a synthetic benchmark graph for

* ``dict-seed`` -- a verbatim replica of the original dict-based sampler
  (per-step ``in_weights`` dict copy + linear scan), kept here as the fixed
  baseline the engine speedups are tracked against;
* ``python`` -- :class:`repro.diffusion.engine.PythonEngine` (CSR + binary
  search, bit-compatible with the seed sampler);
* ``numpy`` -- :class:`repro.diffusion.engine.NumpyEngine` through the
  legacy object interface (``sample_paths``: the columnar kernel plus full
  :class:`TargetPath` materialization), skipped when numpy is unavailable;
* ``numpy-batch`` -- the same engine consumed columnarly
  (``sample_path_batch`` + array-native type-1 counting, no per-path
  objects): the representation every batch-aware consumer (estimators,
  pool, parallel IPC) actually uses.  Its ``columnar_speedup`` field is
  its throughput relative to the *python* engine -- the headline number
  the CI bench job gates (>= 3x absolute via ``--min-columnar-speedup``,
  <= 30% drift via ``compare_bench.py --metric columnar_speedup``);
* ``numpy-alias`` / ``alias-batch`` -- :class:`NumpyAliasEngine`, whose
  lockstep steps are O(1) alias-table gathers instead of O(log m) binary
  searches, through the object interface and columnarly.  The
  ``alias_speedup`` field on ``alias-batch`` is its columnar throughput
  relative to ``numpy-batch`` (gated >= 1.5x absolute via
  ``--min-alias-speedup``, <= 30% drift via ``--metric alias_speedup``);
* ``transport-pickle`` / ``transport-shm`` -- the parallel result wire in
  isolation: a real 4-worker fork pool where each worker holds one
  pre-sampled columnar chunk (sampled once in the pool initializer,
  outside the timed region) and re-ships it per task, either pickled
  through the result pipe or published to shared memory and adopted
  zero-copy by the parent (:mod:`repro.parallel.shm`).  The parent touches
  every received batch (``type1_count``), so deferred page access is paid
  inside the timing for both arms.  The ``shm_transport_speedup`` field on
  ``transport-shm`` is its wire throughput relative to ``transport-pickle``
  (gated >= 1.3x absolute via ``--min-shm-speedup``, <= 30% drift via
  ``--metric shm_transport_speedup``).

Before timing anything, the benchmark asserts each columnar kernel (search
mode and alias mode) is bit-identical to its retained per-walker reference
kernel (``sample_paths_reference``) on the benchmark workload, so a fast-
but-wrong kernel can never post a number.  Results (paths/sec, per-row
batch sizes and speedups) are printed and written to ``BENCH_engine.json``
at the repository root so the performance trajectory is tracked from PR to
PR.  Run standalone with::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--output PATH]
        [--paths N] [--nodes N] [--min-columnar-speedup X]
        [--min-alias-speedup X] [--min-shm-speedup X]

or via pytest (smaller sample counts, plus a regression assertion).  The CI
``bench`` job runs the standalone form on every push and gates merges with
``benchmarks/compare_bench.py`` against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import random
import sys
import time
from pathlib import Path

from repro.diffusion.engine import available_engines, create_engine
from repro.graph.generators import barabasi_albert_graph
from repro.graph.traversal import bfs_distances
from repro.graph.weights import apply_degree_normalized_weights
from repro.parallel import fork_available, shm_available
from repro.parallel.shm import ShmBatchRef, adopt, default_prefix, publish_batch, sweep_orphans

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"

_SEED = 20190707


def _legacy_dict_sample_target_path(graph, target, stop_set, generator):
    """The seed implementation: per-step dict copy + linear scan (unchanged)."""
    traced = {target}
    current = target
    while True:
        draw = generator.random()
        cumulative = 0.0
        parent = None
        # dict(...) reproduces the copy the original SocialGraph.in_weights
        # made on every call; the linear scan is the original selection.
        for friend, weight in dict(graph.in_weights(current)).items():
            cumulative += weight
            if draw < cumulative:
                parent = friend
                break
        if parent is None or parent in traced:
            return frozenset(traced), False
        if parent in stop_set:
            return frozenset(traced), True
        traced.add(parent)
        current = parent


def _benchmark_graph(num_nodes: int = 3000, attachment: int = 8):
    """The synthetic benchmark graph plus a distant (source, target) pair."""
    graph = apply_degree_normalized_weights(
        barabasi_albert_graph(num_nodes, attachment, rng=_SEED, name="bench-ba")
    )
    source = 0
    distances = bfs_distances(graph, source)
    target = max(
        (node for node, distance in distances.items() if distance >= 3),
        key=lambda node: distances[node],
        default=None,
    )
    if target is None:  # tiny graphs in smoke runs: fall back to any non-friend
        target = next(
            node for node in graph.nodes()
            if node != source and not graph.has_edge(source, node)
        )
    return graph, source, target


def _time_sampler(label, sample_many, num_paths, repeats=3):
    """Best-of-``repeats`` wall-clock timing; returns (paths/sec, type-1 count)."""
    best = float("inf")
    type1 = 0
    for _ in range(repeats):
        start = time.perf_counter()
        type1 = sample_many(num_paths)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return num_paths / best, type1


def _assert_columnar_bit_identity(graph, target, stop_set, count=4000):
    """The columnar kernel must reproduce the legacy object path exactly.

    Asserted inside the benchmark (on the benchmark graph, before timing)
    so a kernel that got faster by drifting from the reference stream
    fails the bench job instead of posting a number.
    """
    engine = create_engine(graph, "numpy")
    batch = engine.sample_path_batch(target, stop_set, count, rng=_SEED)
    reference = engine.sample_paths_reference(target, stop_set, count, rng=_SEED)
    assert batch.to_paths() == reference, (
        "columnar PathBatch kernel diverged from the per-walker reference kernel"
    )
    assert batch.type1_bytes() == bytes(1 if path.is_type1 else 0 for path in reference)


def _assert_alias_bit_identity(graph, target, stop_set, count=4000):
    """Alias-mode columnar kernel must match the alias-mode reference kernel."""
    engine = create_engine(graph, "numpy-alias")
    batch = engine.sample_path_batch(target, stop_set, count, rng=_SEED)
    reference = engine.sample_paths_reference(target, stop_set, count, rng=_SEED)
    assert batch.to_paths() == reference, (
        "alias-mode columnar kernel diverged from the alias-mode reference kernel"
    )


# The transport benchmark's worker state: one columnar chunk, sampled once in
# the pool initializer so the timed region measures only the wire.
_TRANSPORT_BATCH = None
_TRANSPORT_PREFIX = None


def _transport_init(engine, target, stop_set, chunk_size, prefix):
    global _TRANSPORT_BATCH, _TRANSPORT_PREFIX
    _TRANSPORT_BATCH = engine.sample_path_batch(target, stop_set, chunk_size, rng=_SEED)
    _TRANSPORT_PREFIX = prefix


def _ship_pickled(_index):
    # Crosses the result pipe as pickled packed columns (the pre-shm wire).
    return _TRANSPORT_BATCH


def _ship_shared(_index):
    ref = publish_batch(_TRANSPORT_BATCH, prefix=_TRANSPORT_PREFIX)
    return ref if ref is not None else _TRANSPORT_BATCH


def _benchmark_transport(
    graph, target, stop_set, chunk_size=65_536, num_chunks=16, workers=4, repeats=3
):
    """Time the two chunk transports over a real fork pool; rows or ``None``.

    Workers re-ship their pre-sampled chunk per task; the parent adopts
    (shm) or receives (pickle) every chunk and reads its type-1 column, so
    both arms pay for actually consuming the shipped columns.  Chunks are
    large (64k paths, a few MB of columns) so the wire cost dominates the
    per-task pool overhead: below ~16k paths per chunk the per-segment
    syscalls (shm_open/mmap/unlink) eat the zero-copy margin and the two
    arms converge.
    """
    if not (fork_available() and shm_available() and "numpy" in available_engines()):
        return None
    engine = create_engine(graph, "numpy")
    context = multiprocessing.get_context("fork")
    rows = {}
    for label, ship in (("transport-pickle", _ship_pickled), ("transport-shm", _ship_shared)):
        pool = context.Pool(
            workers,
            initializer=_transport_init,
            initargs=(engine, target, stop_set, chunk_size, default_prefix()),
        )
        try:

            def round_trip(pool=pool, ship=ship):
                # chunksize=1 pins the task batching: Pool.map's heuristic
                # otherwise varies it with num_chunks, which swings the
                # pickle arm's pipe overlap (and so the measured ratio).
                received = [
                    adopt(chunk) if isinstance(chunk, ShmBatchRef) else chunk
                    for chunk in pool.map(ship, range(num_chunks), chunksize=1)
                ]
                return sum(batch.type1_count() for batch in received)

            round_trip()  # warm-up: forks the workers, samples their chunk
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                round_trip()
                best = min(best, time.perf_counter() - start)
        finally:
            pool.terminate()
            pool.join()
        sweep_orphans()
        rows[label] = {
            "paths_per_sec": round(chunk_size * num_chunks / best, 1),
            "num_paths": chunk_size,
            "chunks": num_chunks,
            "workers": workers,
        }
    rows["transport-shm"]["shm_transport_speedup"] = round(
        rows["transport-shm"]["paths_per_sec"] / rows["transport-pickle"]["paths_per_sec"], 2
    )
    return rows


def run_benchmark(num_paths: int = 30_000, num_nodes: int = 3000, transport_chunks: int = 16):
    """Time every backend and return the result rows."""
    graph, source, target = _benchmark_graph(num_nodes=num_nodes)
    stop_set = graph.neighbor_set(source)

    def run_dict(count):
        generator = random.Random(_SEED)
        hits = 0
        for _ in range(count):
            _, is_type1 = _legacy_dict_sample_target_path(graph, target, stop_set, generator)
            hits += is_type1
        return hits

    samplers = {"dict-seed": run_dict}
    for name in available_engines():
        engine = create_engine(graph, name)

        def run_engine(count, engine=engine):
            paths = engine.sample_paths(target, stop_set, count, rng=_SEED)
            return sum(path.is_type1 for path in paths)

        samplers[name] = run_engine

    if "numpy" in available_engines():
        _assert_columnar_bit_identity(graph, target, stop_set)
        batch_engine = create_engine(graph, "numpy")

        def run_batch(count, engine=batch_engine):
            # Columnar end to end: the type-1 count comes off the is_type1
            # column; no TargetPath object is ever constructed.
            return engine.sample_path_batch(target, stop_set, count, rng=_SEED).type1_count()

        samplers["numpy-batch"] = run_batch

    if "numpy-alias" in available_engines():
        _assert_alias_bit_identity(graph, target, stop_set)
        alias_engine = create_engine(graph, "numpy-alias")

        def run_alias(count, engine=alias_engine):
            return engine.sample_path_batch(target, stop_set, count, rng=_SEED).type1_count()

        samplers["alias-batch"] = run_alias

    results = {}
    baseline = None
    for label, sampler in samplers.items():
        rate, type1 = _time_sampler(label, sampler, num_paths)
        if label == "dict-seed":
            baseline = rate
        results[label] = {
            "paths_per_sec": round(rate, 1),
            "num_paths": num_paths,
            "type1_fraction": round(type1 / num_paths, 4),
            "speedup_vs_dict_seed": round(rate / baseline, 2) if baseline else None,
        }
    if "numpy-batch" in results:
        python_rate = results["python"]["paths_per_sec"]
        results["numpy-batch"]["columnar_speedup"] = round(
            results["numpy-batch"]["paths_per_sec"] / python_rate, 2
        )
    if "alias-batch" in results:
        results["alias-batch"]["alias_speedup"] = round(
            results["alias-batch"]["paths_per_sec"] / results["numpy-batch"]["paths_per_sec"], 2
        )
    transport = _benchmark_transport(graph, target, stop_set, num_chunks=transport_chunks)
    if transport is not None:
        results.update(transport)
    return {
        "benchmark": "engine_throughput",
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges, "model": "barabasi-albert"},
        "pair": {"source": source, "target": target},
        "num_paths": num_paths,
        "bit_identical": "numpy" in available_engines(),
        "results": results,
    }


def write_report(report: dict, path: Path = OUTPUT_PATH) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def test_engine_throughput():
    """Track engine throughput and guard the headline speedup.

    The compiled python engine must stay well ahead of the seed dict-based
    sampler; the committed BENCH_engine.json records the actual multiple
    (>= 3x on the synthetic benchmark graph at full size).
    """
    report = run_benchmark(num_paths=20_000, transport_chunks=8)
    write_report(report)
    print()
    print(json.dumps(report, indent=2))
    speedup = report["results"]["python"]["speedup_vs_dict_seed"]
    assert speedup >= 1.5, f"python engine only {speedup}x over the seed sampler"
    results = report["results"]
    if "numpy" in results:
        # The engine-inversion guard: a vectorized backend that loses to
        # the pure-Python one must fail loudly (it shipped silently at
        # PR 1-4), and the columnar path must deliver a real multiple.
        python_row, numpy_row = results["python"], results["numpy"]
        assert numpy_row["speedup_vs_dict_seed"] >= python_row["speedup_vs_dict_seed"], (
            "numpy engine slower than the python engine"
        )
        assert numpy_row["speedup_vs_dict_seed"] >= 1.0, "numpy lost to the seed sampler"
        columnar = results["numpy-batch"]["columnar_speedup"]
        assert columnar >= 1.5, f"columnar kernel only {columnar}x over the python engine"
    if "alias-batch" in results:
        # The O(1)-step guard, softer than the CI bench job's standalone
        # gate (1.5x at full benchmark size) to keep tier-1 runs unflaky.
        alias = results["alias-batch"]["alias_speedup"]
        assert alias >= 1.1, f"alias kernel only {alias}x over the searchsorted kernel"
    if "transport-shm" in results:
        # The wire rows must post, carry their sizing metadata, and the
        # zero-copy arm must never lose outright to pickling; the absolute
        # multiple is gated by the CI bench job at full size.
        row = results["transport-shm"]
        assert row["workers"] == 4 and row["num_paths"] > 0 and row["chunks"] > 0
        assert row["shm_transport_speedup"] > 0
    # The engines must agree with the baseline on what they sample (the
    # transport rows re-ship one chunk and carry no type1_fraction).
    rates = [
        row["type1_fraction"] for row in report["results"].values() if "type1_fraction" in row
    ]
    assert max(rates) - min(rates) <= 0.05


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH,
                        help=f"where to write the JSON report (default: {OUTPUT_PATH})")
    parser.add_argument("--paths", type=int, default=30_000,
                        help="reverse-sampled paths per backend (default: 30000)")
    parser.add_argument("--nodes", type=int, default=3000,
                        help="benchmark graph size (default: 3000)")
    parser.add_argument("--min-columnar-speedup", type=float, default=None,
                        help="fail unless the columnar numpy kernel reaches this "
                             "multiple of the python engine's throughput")
    parser.add_argument("--min-alias-speedup", type=float, default=None,
                        help="fail unless the alias-mode columnar kernel reaches this "
                             "multiple of the searchsorted columnar kernel's throughput")
    parser.add_argument("--min-shm-speedup", type=float, default=None,
                        help="fail unless the shared-memory transport reaches this "
                             "multiple of the pickle transport's wire throughput")
    cli_args = parser.parse_args()
    report = run_benchmark(num_paths=cli_args.paths, num_nodes=cli_args.nodes)
    write_report(report, cli_args.output)
    print(json.dumps(report, indent=2))

    def gate(row_name, metric, minimum):
        if minimum is None:
            return
        row = report["results"].get(row_name)
        value = row.get(metric, 0.0) if row else 0.0
        if value < minimum:
            print(f"FAIL: {metric} {value}x below required {minimum}x", file=sys.stderr)
            sys.exit(1)

    gate("numpy-batch", "columnar_speedup", cli_args.min_columnar_speedup)
    gate("alias-batch", "alias_speedup", cli_args.min_alias_speedup)
    gate("transport-shm", "shm_transport_speedup", cli_args.min_shm_speedup)
