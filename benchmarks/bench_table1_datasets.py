"""Experiment E1 -- Table I: dataset statistics.

Regenerates the Table I rows (nodes, edges, average degree) for the four
dataset stand-ins, next to the values the paper reports for the original
SNAP graphs.  The benchmark measures the stand-in construction time.
"""

from __future__ import annotations

from conftest import BENCH_SCALES, emit

from repro.experiments.datasets_table import format_datasets_table, run_datasets_table
from repro.graph.datasets import DATASET_NAMES


def test_table1_dataset_statistics(benchmark):
    def build():
        return [
            run_datasets_table(datasets=(name,), scale=BENCH_SCALES[name], rng=7 + index)[0]
            for index, name in enumerate(DATASET_NAMES)
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("table1_datasets", format_datasets_table(rows))
    assert [row.dataset for row in rows] == list(DATASET_NAMES)
    for row in rows:
        # The stand-ins must land in the right average-degree ballpark so the
        # downstream experiments operate in the same regime as the paper.
        assert 0.5 * row.paper_avg_degree < row.avg_degree < 1.5 * row.paper_avg_degree
