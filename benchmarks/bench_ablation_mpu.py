"""Ablation A1 -- MSC/MpU solver choice.

The RAF pipeline delegates its covering step to the "Chlamtáč-style"
best-of solver (DESIGN.md documents the substitution).  This ablation runs
all MSC solvers on the same sampled-trace instance -- the exact instance RAF
would solve -- and reports cover sizes and solve times, plus the exact
optimum on a sub-sampled instance small enough to solve exactly.
"""

from __future__ import annotations

import math
import time

from conftest import emit

from repro.core.parameters import solve_parameters
from repro.diffusion.reverse_sampling import sample_target_path
from repro.experiments.reporting import format_table
from repro.setcover.hypergraph import SetSystem
from repro.setcover.msc import MSC_SOLVERS, greedy_node_cover, minimum_subset_cover
from repro.setcover.mpu import exact_mpu
from repro.utils.rng import ensure_rng


def _sampled_trace_system(graph, pair, num_realizations, rng):
    generator = ensure_rng(rng)
    friends = graph.neighbor_set(pair.source)
    paths = [
        sample_target_path(graph, pair.target, friends, rng=generator)
        for _ in range(num_realizations)
    ]
    return SetSystem.from_target_paths(paths)


def test_ablation_msc_solvers(benchmark, dataset_graphs, dataset_pairs):
    graph = dataset_graphs["wiki"]
    pair = dataset_pairs["wiki"][0]
    system = _sampled_trace_system(graph, pair, 4000, rng=606)
    beta = solve_parameters(0.1, 0.01, graph.num_nodes).beta
    target = max(1, math.ceil(beta * system.total_weight))

    rows = []
    for name in sorted(MSC_SOLVERS):
        if name == "exact":
            continue  # handled separately on a sub-sampled instance below
        start = time.perf_counter()
        cover = minimum_subset_cover(system, target, solver=name)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "solver": name,
                "cover_size": cover.size,
                "covered": cover.covered_weight,
                "target": target,
                "seconds": elapsed,
            }
        )
    start = time.perf_counter()
    node_cover = greedy_node_cover(system, target)
    rows.append(
        {
            "solver": "greedy-node",
            "cover_size": node_cover.size,
            "covered": node_cover.covered_weight,
            "target": target,
            "seconds": time.perf_counter() - start,
        }
    )

    # Exact optimum on a deduplicated sub-instance small enough for branch and bound.
    deduped = system.deduplicate()
    small = SetSystem(list(deduped.sets())[:16], weights=list(deduped.weights())[:16])
    small_target = max(1, math.ceil(beta * small.total_weight))
    exact = exact_mpu(small, small_target)
    approx = minimum_subset_cover(small, small_target, solver="chlamtac")
    rows.append(
        {
            "solver": "chlamtac-vs-exact (16-set sub-instance)",
            "cover_size": approx.size,
            "covered": exact.union_size,
            "target": small_target,
            "seconds": float("nan"),
        }
    )

    def timed_default_solver():
        return minimum_subset_cover(system, target, solver="chlamtac")

    benchmark.pedantic(timed_default_solver, rounds=3, iterations=1)
    emit("ablation_mpu_solvers", format_table(rows, title="Ablation A1 -- MSC solver comparison"))

    default_size = next(row["cover_size"] for row in rows if row["solver"] == "chlamtac")
    for row in rows[:3]:
        assert row["covered"] >= row["target"]
    # The combined solver must never lose to its own ingredients.
    for name in ("greedy", "smallest"):
        other = next(row["cover_size"] for row in rows if row["solver"] == name)
        assert default_size <= other
    # And it matches the exact optimum on the small sub-instance.
    assert approx.size <= 2 * math.sqrt(small.num_sets) * max(1, exact.union_size)
