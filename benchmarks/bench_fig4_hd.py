"""Experiment E3 -- Fig. 4: how many invitations HD needs to match RAF.

For each pair, HD's invitation set is grown until it reaches the acceptance
probability of the RAF solution; the trajectory points
``(f(I_HD)/f(I_RAF), |I_HD|/|I_RAF|)`` are binned over five probability-ratio
intervals exactly as in the paper.  The paper's qualitative finding is that
the size ratio is (well) above 1 and grows towards the right end of the
x-axis -- HD needs several times more invitations to match RAF.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.ratio_comparison import format_ratio_comparison, run_ratio_comparison
from repro.graph.datasets import DATASET_NAMES


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig4_hd_size_ratio(benchmark, dataset, dataset_graphs, dataset_pairs, bench_config):
    graph = dataset_graphs[dataset]
    pairs = dataset_pairs[dataset]

    result = benchmark.pedantic(
        run_ratio_comparison,
        args=(graph, pairs, bench_config),
        kwargs={"baseline": "HD", "alpha": 0.1, "dataset_name": dataset, "rng": 202},
        rounds=1,
        iterations=1,
    )
    emit(f"fig4_hd_{dataset}", format_ratio_comparison(result))

    assert result.num_pairs >= 1
    assert result.bins, "the HD growth produced no trajectory points"
    # Paper shape: matching RAF costs HD extra invitations (ratio above 1 on
    # average across the binned curve).
    mean_ratio = sum(row["size_ratio"] for row in result.bins) / len(result.bins)
    assert mean_ratio >= 1.0
