"""Wall-clock win from the shared reverse-sample pool (repro/pool).

Models a screening service under repeated query traffic: the same batch of
candidate (source, target) pairs is screened with :func:`screen_pmax` over
several rounds (resubmitted queries, dashboard refreshes, retry storms --
the ROADMAP's "heavy traffic" regime), and each surviving candidate then
gets a stopping-rule :func:`estimate_pmax` that *warm-starts* from the very
samples its screen already drew.  Both arms consume the pool's canonical
seed-derived streams -- the "pool disabled" arm is a pool with caching off
(``reuse=False``), which re-draws every request -- so the benchmark
asserts per-candidate bit-identity between the arms before it reports a
single number; the pool changes cost, never results.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_pool_reuse.py
        [--candidates 50] [--rounds 4] [--output PATH] [--min-speedup X]

``--min-speedup`` turns the report into a gate (the CI ``bench`` job
requires 3.0).  Results are written to ``BENCH_pool.json`` at the
repository root in the ``compare_bench.py`` schema, gated on the
``speedup_vs_no_pool`` metric.

The ``restart`` row exercises durable pool restarts (DESIGN.md §11):
candidates are warmed into a spill-backed pool, checkpointed, one side-
community edge arrives (recorded in the persisted lineage file), and a
*fresh* pool on the same spill directory replays the workload.  The row
reports ``restart_adopt_rate`` -- the fraction of checkpointed keys the
restarted pool served from disk instead of re-drawing -- after asserting
every restarted answer is byte-identical to a cold pool on the mutated
topology.  ``--min-restart-adopt-rate`` gates it (CI requires 0.9) and
the committed value is drift-gated via ``compare_bench.py --metric
restart_adopt_rate``.

The ``mutation`` row exercises delta-scoped invalidation (DESIGN.md §10):
candidates are warmed on a two-region graph (a large main component plus a
small side community), one edge then arrives inside the side community, and
the row reports ``retained_hit_rate`` -- the fraction of warm keys that
survived the re-snapshot -- after asserting every post-mutation answer is
byte-identical to a cold pool on the mutated topology.  ``--min-retained-
hit-rate`` gates it (CI requires 0.9); the committed value is additionally
drift-gated via ``compare_bench.py --metric retained_hit_rate``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from bench_engine_throughput import _benchmark_graph

from repro.core.raf import estimate_pmax
from repro.diffusion.engine import create_engine
from repro.graph.generators import barabasi_albert_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights
from repro.pool import SamplePool
from repro.utils.rng import derive_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_pool.json"

_SEED = 20190707
_POOL_SEED = 77


def _candidate_pairs(graph, count, rng, nodes=None):
    """Unscreened candidate pairs (distinct, non-friend, non-isolated)."""
    nodes = list(nodes) if nodes is not None else graph.node_list()
    pairs = []
    seen = set()
    while len(pairs) < count:
        source, target = rng.sample(nodes, 2)
        if (source, target) in seen:
            continue
        seen.add((source, target))
        if graph.has_edge(source, target):
            continue
        if graph.degree(source) == 0 or graph.degree(target) == 0:
            continue
        pairs.append((source, target))
    return pairs


def _run_workload(graph, pairs, pool, rounds, screen_samples, estimate_top):
    """One full traffic replay against ``pool``; returns the result transcript.

    Per round every candidate is screened; the ``estimate_top`` candidates
    with the highest screened pmax then get a stopping-rule estimate (which
    shares the pool's pmax stream with the screen, so a warm pool serves it
    from cache).  The transcript contains every number produced, so two
    arms can be compared for bit-identity.
    """
    from repro.experiments.pair_selection import screen_pmax

    transcript = []
    for _ in range(rounds):
        screens = [
            screen_pmax(graph, source, target, num_samples=screen_samples, pool=pool)
            for source, target in pairs
        ]
        ranked = sorted(range(len(pairs)), key=lambda i: (-screens[i], i))
        estimates = []
        for index in ranked[:estimate_top]:
            source, target = pairs[index]
            if screens[index] == 0.0:
                continue  # hopeless pair; the stopping rule would only cap out
            result = estimate_pmax(
                graph, source, target, epsilon=0.2, confidence_n=1_000.0,
                max_samples=200_000, pool=pool,
            )
            estimates.append((index, result.value, result.num_samples, result.method))
        transcript.append((screens, estimates))
    return transcript


def _two_region_graph(num_nodes):
    """A main BA component plus a small disjoint side community.

    Edge arrivals land in the side community, so the delta mapper's
    reverse-reachability BFS exhausts a bounded region instead of the whole
    graph -- the regime where retention wins (a mutation inside one giant
    connected component conservatively flushes it; see DESIGN.md §10).
    """
    side_n = max(20, num_nodes // 30)
    main_n = num_nodes - side_n
    main = apply_degree_normalized_weights(
        barabasi_albert_graph(main_n, 8, rng=_SEED, name="bench-ba-main")
    )
    side = apply_degree_normalized_weights(
        barabasi_albert_graph(side_n, 3, rng=_SEED + 1, name="bench-ba-side")
    )
    graph = SocialGraph(name="bench-two-region")
    for u, v in main.edges():
        graph.add_edge(u, v, main.weight(u, v), main.weight(v, u))
    for u, v in side.edges():
        graph.add_edge(u + main_n, v + main_n, side.weight(u, v), side.weight(v, u))
    return graph, list(range(main_n)), list(range(main_n, main_n + side_n))


def _arrive_side_edge(graph, side_nodes, label):
    """One edge arrival inside the side community, weights within the
    endpoints' normalization headroom (the model invariant)."""
    picker = derive_rng(_SEED, label)
    while True:
        u, v = picker.sample(side_nodes, 2)
        if not graph.has_edge(u, v):
            break
    graph.add_edge(
        u, v,
        min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(v))),
        min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(u))),
    )


def run_restart_arm(candidates=50, screen_samples=400, num_nodes=3000, side_keys=2):
    """Checkpoint a warm pool, mutate, restart fresh, measure adoption.

    The writer pool warms every candidate into a spill directory and
    checkpoints; one side-community edge then arrives *while the writer is
    alive*, so its refreshed lineage record proves the main-community blobs
    (written under the old CSR digest) survive the mutation.  A fresh pool
    on the same directory replays the workload: main keys are adopted off
    disk through the lineage record, the ``side_keys`` affected keys are
    re-drawn, so the expected ``restart_adopt_rate`` is
    ``1 - side_keys/candidates``.  Before any number is reported, every
    restarted answer is asserted byte-equal to a cold spill-free pool on
    the mutated topology: adoption must change cost, never results.
    """
    from repro.experiments.pair_selection import screen_pmax

    graph, main_nodes, side_nodes = _two_region_graph(num_nodes)
    rng = derive_rng(_SEED, "pool-bench-restart-pairs")
    pairs = _candidate_pairs(graph, candidates - side_keys, rng, nodes=main_nodes)
    pairs += _candidate_pairs(graph, side_keys, rng, nodes=side_nodes)

    with tempfile.TemporaryDirectory(prefix="bench-pool-restart-") as tmp:
        spill_dir = Path(tmp)
        writer = SamplePool(
            create_engine(graph, "python"), seed=_POOL_SEED, spill_dir=spill_dir
        )
        for source, target in pairs:
            screen_pmax(graph, source, target, num_samples=screen_samples, pool=writer)
        spilled_keys = writer.spill_all()

        _arrive_side_edge(graph, side_nodes, "pool-bench-restart-edge")
        # The live writer observes the mutation; its refreshed lineage
        # record binds the new digest to the old-digest transition.
        writer.spill_all()

        restarted = SamplePool(
            create_engine(graph, "python"), seed=_POOL_SEED, spill_dir=spill_dir
        )
        start = time.perf_counter()
        restarted_screens = [
            screen_pmax(graph, source, target, num_samples=screen_samples, pool=restarted)
            for source, target in pairs
        ]
        restart_seconds = time.perf_counter() - start
        stats = restarted.stats()

    cold_pool = SamplePool(create_engine(graph, "python"), seed=_POOL_SEED)
    start = time.perf_counter()
    cold_screens = [
        screen_pmax(graph, source, target, num_samples=screen_samples, pool=cold_pool)
        for source, target in pairs
    ]
    cold_seconds = time.perf_counter() - start

    assert restarted_screens == cold_screens, (
        "restart-adopted streams diverged from a cold re-draw on the mutated topology"
    )
    return {
        "seconds": round(restart_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "spilled_keys": spilled_keys,
        "adopted_keys": stats.loads,
        "redrawn_paths": stats.drawn_paths,
        "restart_adopt_rate": round(stats.loads / spilled_keys, 4),
    }


def run_mutation_arm(candidates=50, screen_samples=400, num_nodes=3000, side_keys=2):
    """Warm keys, insert one far-away edge, measure what survives.

    ``candidates - side_keys`` pairs live in the main component (far from
    the arriving edge) and ``side_keys`` pairs in the side community (whose
    reverse-reachable sets the edge *does* touch), so the expected retained
    hit rate is ``1 - side_keys/candidates`` -- high, but intentionally not
    1.0, which the drift gate would skip as a normalizer row.  Before any
    number is reported, every post-mutation screen is asserted byte-equal
    to a cold pool on the mutated graph: retention must be observationally
    indistinguishable from a full flush, apart from cost.
    """
    from repro.experiments.pair_selection import screen_pmax

    graph, main_nodes, side_nodes = _two_region_graph(num_nodes)
    rng = derive_rng(_SEED, "pool-bench-mutation-pairs")
    pairs = _candidate_pairs(graph, candidates - side_keys, rng, nodes=main_nodes)
    pairs += _candidate_pairs(graph, side_keys, rng, nodes=side_nodes)

    pool = SamplePool(create_engine(graph, "python"), seed=_POOL_SEED)
    for source, target in pairs:
        screen_pmax(graph, source, target, num_samples=screen_samples, pool=pool)
    warm_keys = pool.stats().keys

    _arrive_side_edge(graph, side_nodes, "pool-bench-mutation-edge")

    start = time.perf_counter()
    warm_screens = [
        screen_pmax(graph, source, target, num_samples=screen_samples, pool=pool)
        for source, target in pairs
    ]
    warm_seconds = time.perf_counter() - start
    stats = pool.stats()

    cold_pool = SamplePool(create_engine(graph, "python"), seed=_POOL_SEED)
    start = time.perf_counter()
    cold_screens = [
        screen_pmax(graph, source, target, num_samples=screen_samples, pool=cold_pool)
        for source, target in pairs
    ]
    cold_seconds = time.perf_counter() - start

    assert warm_screens == cold_screens, (
        "retained streams diverged from a cold re-draw on the mutated topology"
    )
    touched = stats.retained_keys + stats.flushed_keys
    assert touched == warm_keys, (stats, warm_keys)
    return {
        "seconds": round(warm_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "warm_keys": warm_keys,
        "retained_keys": stats.retained_keys,
        "flushed_keys": stats.flushed_keys,
        "retained_hit_rate": round(stats.retained_keys / touched, 4),
    }


def run_benchmark(candidates=50, rounds=5, screen_samples=400, estimate_top=10, num_nodes=3000):
    """Time the screening workload with the pool on and off."""
    graph, _, _ = _benchmark_graph(num_nodes=num_nodes)
    engine = create_engine(graph, "python")
    pairs = _candidate_pairs(graph, candidates, derive_rng(_SEED, "pool-bench-pairs"))

    arms = {}
    transcripts = {}
    for name, reuse in (("no-pool", False), ("pool", True)):
        pool = SamplePool(engine, seed=_POOL_SEED, reuse=reuse)
        start = time.perf_counter()
        transcripts[name] = _run_workload(
            graph, pairs, pool, rounds, screen_samples, estimate_top
        )
        seconds = time.perf_counter() - start
        stats = pool.stats()
        arms[name] = {
            "seconds": round(seconds, 4),
            "paths_drawn": stats.drawn_paths,
            "paths_served": stats.served_paths,
        }

    # The whole point: identical numbers, different cost.
    assert transcripts["pool"] == transcripts["no-pool"], (
        "pool-backed results diverged from pool-free results"
    )
    speedup = arms["no-pool"]["seconds"] / arms["pool"]["seconds"]
    arms["no-pool"]["speedup_vs_no_pool"] = 1.0
    arms["pool"]["speedup_vs_no_pool"] = round(speedup, 2)
    arms["mutation"] = run_mutation_arm(
        candidates=candidates, screen_samples=screen_samples, num_nodes=num_nodes
    )
    arms["restart"] = run_restart_arm(
        candidates=candidates, screen_samples=screen_samples, num_nodes=num_nodes
    )
    return {
        "benchmark": "pool_reuse_screening",
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges, "model": "barabasi-albert"},
        "workload": {
            "candidates": candidates,
            "rounds": rounds,
            "screen_samples": screen_samples,
            "estimate_top": estimate_top,
            "workers": 1,
            "seed": _SEED,
            "pool_seed": _POOL_SEED,
        },
        "bit_identical": True,
        "results": arms,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--candidates", type=int, default=50,
                        help="candidate pairs per screening round (default: 50)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="times the candidate batch is (re)screened (default: 5)")
    parser.add_argument("--screen-samples", type=int, default=400,
                        help="reverse samples per screen (default: 400)")
    parser.add_argument("--estimate-top", type=int, default=10,
                        help="top screened candidates getting a stopping-rule "
                             "estimate per round (default: 10)")
    parser.add_argument("--nodes", type=int, default=3000,
                        help="benchmark graph size (default: 3000)")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH,
                        help=f"where to write the JSON report (default: {OUTPUT_PATH})")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the pooled arm reaches this speedup")
    parser.add_argument("--min-retained-hit-rate", type=float, default=None,
                        help="fail unless the mutation arm retains this fraction "
                             "of warm keys across the edge arrival")
    parser.add_argument("--min-restart-adopt-rate", type=float, default=None,
                        help="fail unless a restarted pool adopts this fraction "
                             "of its predecessor's checkpointed keys")
    args = parser.parse_args(argv)
    report = run_benchmark(
        candidates=args.candidates,
        rounds=args.rounds,
        screen_samples=args.screen_samples,
        estimate_top=args.estimate_top,
        num_nodes=args.nodes,
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    speedup = report["results"]["pool"]["speedup_vs_no_pool"]
    mutation = report["results"]["mutation"]
    print(f"\npool speedup: {speedup}x over pool-free (bit-identical results)")
    print(f"mutation arm: {mutation['retained_keys']}/{mutation['warm_keys']} warm keys "
          f"retained across one edge arrival (retained_hit_rate "
          f"{mutation['retained_hit_rate']}, byte-identical to a cold pool)")
    restart = report["results"]["restart"]
    print(f"restart arm: {restart['adopted_keys']}/{restart['spilled_keys']} "
          f"checkpointed keys adopted by a fresh pool across a restart + edge "
          f"arrival (restart_adopt_rate {restart['restart_adopt_rate']}, "
          f"byte-identical to a cold pool)")
    failed = False
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup}x below required {args.min_speedup}x", file=sys.stderr)
        failed = True
    if (
        args.min_retained_hit_rate is not None
        and mutation["retained_hit_rate"] < args.min_retained_hit_rate
    ):
        print(f"FAIL: retained_hit_rate {mutation['retained_hit_rate']} below "
              f"required {args.min_retained_hit_rate}", file=sys.stderr)
        failed = True
    if (
        args.min_restart_adopt_rate is not None
        and restart["restart_adopt_rate"] < args.min_restart_adopt_rate
    ):
        print(f"FAIL: restart_adopt_rate {restart['restart_adopt_rate']} below "
              f"required {args.min_restart_adopt_rate}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
