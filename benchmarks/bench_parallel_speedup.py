"""Stopping-rule wall-clock speedup from the parallel sampling fan-out.

Times the Dagum et al. stopping-rule ``pmax`` estimation (Alg. 2) on the
synthetic benchmark graph for a range of worker counts.  Because the
:class:`~repro.parallel.engine.ParallelEngine` contract makes the sample
stream independent of the worker count, every timed run computes the *same*
estimate from the same number of samples -- the benchmark asserts that, so
it doubles as an end-to-end determinism check -- and the only thing that
changes is wall-clock time.

Run standalone with::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py
        [--workers 1,4] [--epsilon 0.02] [--output PATH] [--min-speedup X]

``--min-speedup`` turns the report into a gate: the best measured speedup
over the ``workers=1`` run must reach the given factor (the CI ``bench``
job requires 2.0 at 4 workers).  Results are written to
``BENCH_parallel.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from bench_engine_throughput import _benchmark_graph

from repro.core.raf import estimate_pmax
from repro.diffusion.engine import create_engine
from repro.parallel.engine import DEFAULT_CHUNK_SIZE, ParallelEngine

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_parallel.json"

_SEED = 20190707


def _time_pmax(graph, source, target, engine, epsilon, repeats=3):
    """Best-of-``repeats`` wall clock; returns (seconds, estimate).

    ``engine`` is a pre-warmed (pool already forked) ParallelEngine, so the
    timed region measures sampling fan-out, not process startup.
    """
    best = float("inf")
    estimate = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = estimate_pmax(
            graph,
            source,
            target,
            epsilon=epsilon,
            confidence_n=100_000.0,
            max_samples=2_000_000,
            rng=_SEED,
            engine=engine,
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        estimate = (result.value, result.num_samples, result.method)
    return best, estimate


def run_benchmark(worker_counts=(1, 4), epsilon=0.02, num_nodes=3000):
    """Time the stopping rule at every worker count and return the report."""
    graph, source, target = _benchmark_graph(num_nodes=num_nodes)
    base = create_engine(graph, "python")
    stop_set = graph.neighbor_set(source)
    rows = {}
    baseline_seconds = None
    baseline_estimate = None
    for workers in worker_counts:
        with ParallelEngine(base, workers=workers) as engine:
            # Fork the pool (and fault in the inherited snapshot) before
            # the clock starts: a multi-chunk request forces the dispatch.
            engine.sample_paths(target, stop_set, 2 * DEFAULT_CHUNK_SIZE, rng=0)
            seconds, estimate = _time_pmax(graph, source, target, engine, epsilon)
        if baseline_seconds is None:
            baseline_seconds, baseline_estimate = seconds, estimate
        # The parallel contract: every worker count sees the same stream.
        assert estimate == baseline_estimate, (
            f"workers={workers} diverged from workers={worker_counts[0]}: "
            f"{estimate} != {baseline_estimate}"
        )
        rows[str(workers)] = {
            "seconds": round(seconds, 4),
            "samples": estimate[1],
            "pmax_estimate": round(estimate[0], 6),
            "speedup_vs_1_worker": round(baseline_seconds / seconds, 2),
        }
    return {
        "benchmark": "parallel_stopping_rule_speedup",
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges, "model": "barabasi-albert"},
        "pair": {"source": source, "target": target},
        "epsilon": epsilon,
        "cpu_count": os.cpu_count(),
        "results": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", default="1,4",
                        help="comma-separated worker counts to time (default: 1,4)")
    parser.add_argument("--epsilon", type=float, default=0.02,
                        help="stopping-rule relative error; smaller = more samples "
                             "= more parallel work (default: 0.02)")
    parser.add_argument("--nodes", type=int, default=3000,
                        help="benchmark graph size (default: 3000)")
    parser.add_argument("--output", type=Path, default=OUTPUT_PATH,
                        help=f"where to write the JSON report (default: {OUTPUT_PATH})")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the best speedup over workers=1 reaches this factor")
    args = parser.parse_args(argv)
    worker_counts = tuple(int(item) for item in args.workers.split(","))
    report = run_benchmark(worker_counts=worker_counts, epsilon=args.epsilon,
                           num_nodes=args.nodes)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    best = max(row["speedup_vs_1_worker"] for row in report["results"].values())
    print(f"\nbest speedup: {best}x over workers=1 ({os.cpu_count()} CPUs)")
    if args.min_speedup is not None and best < args.min_speedup:
        print(f"FAIL: best speedup {best}x below required {args.min_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
