"""Experiment E6 -- Fig. 6: acceptance probability vs number of realizations.

Fix one (s, t) pair and the covering fraction β, sweep the number of
realizations fed to the sampling framework, and measure the acceptance
probability of the produced invitation set.  The paper's point (Sec. IV-E)
is that the curve saturates: beyond some point additional realizations stop
improving the solution, far below the theoretical prescription of Eq. (16).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.realization_sweep import format_realization_sweep, run_realization_sweep

REALIZATION_COUNTS = (250, 500, 1000, 2000, 4000, 8000, 16000)


def test_fig6_realization_sweep(benchmark, dataset_graphs, dataset_pairs, bench_config):
    graph = dataset_graphs["wiki"]
    pair = dataset_pairs["wiki"][0]

    result = benchmark.pedantic(
        run_realization_sweep,
        args=(graph, pair, bench_config),
        kwargs={
            "realization_counts": REALIZATION_COUNTS,
            "alpha": 0.1,
            "dataset_name": "wiki",
            "rng": 505,
        },
        rounds=1,
        iterations=1,
    )
    emit("fig6_realizations", format_realization_sweep(result))

    assert len(result.rows) == len(REALIZATION_COUNTS)
    probabilities = [row["acceptance_probability"] for row in result.rows]
    # Paper shape: performance saturates -- the largest sweep value should not
    # be dramatically better than the mid-range ones.
    assert max(probabilities[:4]) >= 0.5 * max(probabilities)
    # And some probability is achieved well before the largest count.
    assert max(probabilities[:4]) > 0.0
