"""Experiment E4 -- Fig. 5: how many invitations SP needs to match RAF.

Same protocol as Fig. 4 with the Shortest-Path baseline.  The paper finds SP
much closer to RAF than HD on the small datasets (ratios of a few) but still
behind, with the gap exploding on the largest graph.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.ratio_comparison import format_ratio_comparison, run_ratio_comparison
from repro.graph.datasets import DATASET_NAMES


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig5_sp_size_ratio(benchmark, dataset, dataset_graphs, dataset_pairs, bench_config):
    graph = dataset_graphs[dataset]
    pairs = dataset_pairs[dataset]

    result = benchmark.pedantic(
        run_ratio_comparison,
        args=(graph, pairs, bench_config),
        kwargs={"baseline": "SP", "alpha": 0.1, "dataset_name": dataset, "rng": 303},
        rounds=1,
        iterations=1,
    )
    emit(f"fig5_sp_{dataset}", format_ratio_comparison(result))

    assert result.num_pairs >= 1
    assert result.bins, "the SP growth produced no trajectory points"
    for row in result.bins:
        assert row["size_ratio"] > 0.0
