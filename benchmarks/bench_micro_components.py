"""Micro-benchmarks of the pipeline's building blocks.

These are conventional pytest-benchmark timings (multiple rounds) of the
operations whose cost dominates RAF runs: reverse-sampling a backward trace,
simulating one LT friending process, computing Vmax, and one full RAF run.
They make performance regressions visible independently of the figure-level
experiments.
"""

from __future__ import annotations

import random

import pytest

from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, SamplePolicy, run_raf
from repro.core.vmax import compute_vmax
from repro.diffusion.engine import available_engines, create_engine
from repro.diffusion.reverse_sampling import sample_target_path
from repro.diffusion.threshold_model import simulate_friending
from repro.baselines.pagerank import pagerank_scores


@pytest.fixture(scope="module")
def wiki(dataset_graphs):
    return dataset_graphs["wiki"]


@pytest.fixture(scope="module")
def wiki_pair(dataset_pairs):
    return dataset_pairs["wiki"][0]


def test_micro_reverse_sampling(benchmark, wiki, wiki_pair):
    friends = wiki.neighbor_set(wiki_pair.source)
    generator = random.Random(1)
    benchmark(lambda: sample_target_path(wiki, wiki_pair.target, friends, rng=generator))


@pytest.mark.parametrize("engine_name", available_engines())
def test_micro_engine_batch_sampling(benchmark, wiki, wiki_pair, engine_name):
    """One 512-path engine batch (the shape RAF actually requests)."""
    friends = wiki.neighbor_set(wiki_pair.source)
    engine = create_engine(wiki, engine_name)
    generator = random.Random(1)
    paths = benchmark(
        lambda: engine.sample_paths(wiki_pair.target, friends, 512, rng=generator)
    )
    assert len(paths) == 512


def test_micro_threshold_simulation(benchmark, wiki, wiki_pair):
    invitation = frozenset(wiki.node_list()[: wiki.num_nodes // 4])
    generator = random.Random(2)
    benchmark(
        lambda: simulate_friending(
            wiki, wiki_pair.source, invitation, target=wiki_pair.target, rng=generator
        )
    )


def test_micro_vmax(benchmark, wiki, wiki_pair):
    result = benchmark(lambda: compute_vmax(wiki, wiki_pair.source, wiki_pair.target))
    assert wiki_pair.target in result


def test_micro_pagerank(benchmark, wiki):
    scores = benchmark.pedantic(lambda: pagerank_scores(wiki), rounds=3, iterations=1)
    assert len(scores) == wiki.num_nodes


def test_micro_full_raf_run(benchmark, wiki, wiki_pair):
    problem = ActiveFriendingProblem(wiki, wiki_pair.source, wiki_pair.target, alpha=0.1)
    config = RAFConfig(sample_policy=SamplePolicy.FIXED, fixed_realizations=2000)

    result = benchmark.pedantic(
        lambda: run_raf(problem, config, rng=3), rounds=3, iterations=1
    )
    assert wiki_pair.target in result.invitation
