"""Ablation A3 -- familiarity-weight schemes.

The paper follows the convention ``w(u, v) = 1/|N_v|``.  This ablation keeps
the wiki stand-in topology fixed and swaps the weight scheme (degree
normalized / uniform / random-normalized), reporting how the reachability
(pmax) and the RAF invitation size react.  It documents that the pipeline is
scheme-agnostic -- only the problem difficulty changes.
"""

from __future__ import annotations

from conftest import BENCH_SCALES, emit

from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, SamplePolicy, run_raf
from repro.exceptions import AlgorithmError
from repro.experiments.pair_selection import screen_pmax, select_pairs
from repro.experiments.reporting import format_table
from repro.graph.datasets import load_dataset
from repro.graph.weights import (
    apply_degree_normalized_weights,
    apply_random_weights,
    apply_uniform_weights,
)

SCHEMES = {
    "degree-normalized (paper)": apply_degree_normalized_weights,
    "uniform 0.1 (normalized)": lambda graph: apply_uniform_weights(graph, weight=0.1),
    "random-normalized": lambda graph: apply_random_weights(graph, rng=99),
}


def test_ablation_weight_schemes(benchmark, bench_config):
    topology = load_dataset("wiki", scale=BENCH_SCALES["wiki"], rng=909, weighted=False)
    reference = apply_degree_normalized_weights(topology.copy())
    pair = select_pairs(
        reference, 1, pmax_threshold=0.02, pmax_ceiling=0.5, min_distance=3,
        screen_samples=300, rng=910,
    )[0]

    config = RAFConfig(
        epsilon=0.02, sample_policy=SamplePolicy.FIXED, fixed_realizations=4000
    )

    rows = []

    def run_scheme(name: str):
        graph = SCHEMES[name](topology.copy())
        pmax = screen_pmax(graph, pair.source, pair.target, num_samples=600, rng=911)
        problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=0.2)
        try:
            result = run_raf(problem, config, rng=912)
            size, covered = result.size, result.coverage_fraction
        except AlgorithmError:
            size, covered = 0, 0.0
        return {"scheme": name, "pmax": pmax, "raf_size": size, "coverage_fraction": covered}

    for name in SCHEMES:
        rows.append(run_scheme(name))

    benchmark.pedantic(run_scheme, args=("degree-normalized (paper)",), rounds=1, iterations=1)
    emit(
        "ablation_weights",
        format_table(rows, title="Ablation A3 -- weight schemes on the wiki stand-in"),
    )

    paper_row = rows[0]
    assert paper_row["pmax"] > 0.0
    assert paper_row["raf_size"] >= 1
    # Every scheme keeps the pipeline functional (pmax may legitimately be 0
    # for unlucky schemes, in which case RAF correctly reports no solution).
    for row in rows:
        assert 0.0 <= row["pmax"] <= 1.0
