"""Experiment E5 -- Table II: comparing the RAF solution with Vmax.

``Vmax`` is the exact minimum invitation set achieving ``pmax`` (Lemma 7);
the paper contrasts its size with the much smaller RAF solution at α = 0.1.
The assertion captures the paper's point: RAF needs substantially fewer
invitations than the α = 1 solution (on average more than twice fewer here;
the paper reports factors of 2.6-33 on the full-size graphs).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.vmax_comparison import format_vmax_comparison, run_vmax_comparison
from repro.graph.datasets import DATASET_NAMES


def test_table2_vmax_comparison(benchmark, dataset_graphs, dataset_pairs, bench_config):
    def run_all():
        return [
            run_vmax_comparison(
                dataset_graphs[name], dataset_pairs[name], bench_config,
                alpha=0.1, dataset_name=name, rng=404,
            )
            for name in DATASET_NAMES
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("table2_vmax", format_vmax_comparison(results))

    for result in results:
        assert result.num_pairs >= 1
        assert result.avg_vmax_size >= result.avg_raf_size
    overall_ratio = sum(r.avg_ratio for r in results) / len(results)
    assert overall_ratio > 2.0
