"""Experiment E2 -- Fig. 3: the basic experiment.

For each dataset and each α, RAF produces an invitation set; HD and SP get
the same budget; the average acceptance probabilities are reported next to
pmax.  The paper's qualitative findings, which are asserted here, are:

* RAF is at least as good as both heuristics at every α (it consistently
  outperforms them), and
* all three stay below pmax.
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments.basic_experiment import format_basic_experiment, run_basic_experiment
from repro.graph.datasets import DATASET_NAMES


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_fig3_basic_experiment(benchmark, dataset, dataset_graphs, dataset_pairs, bench_config):
    graph = dataset_graphs[dataset]
    pairs = dataset_pairs[dataset]

    result = benchmark.pedantic(
        run_basic_experiment,
        args=(graph, pairs, bench_config),
        kwargs={"dataset_name": dataset, "rng": 101},
        rounds=1,
        iterations=1,
    )
    emit(f"fig3_basic_{dataset}", format_basic_experiment(result))

    assert len(result.rows) == len(bench_config.alphas)
    raf_mean = sum(row["raf"] for row in result.rows) / len(result.rows)
    hd_mean = sum(row["hd"] for row in result.rows) / len(result.rows)
    sp_mean = sum(row["sp"] for row in result.rows) / len(result.rows)
    pmax_mean = sum(row["pmax"] for row in result.rows) / len(result.rows)
    # Paper shape: RAF >= HD and RAF >= SP on average (small Monte Carlo slack),
    # and nobody exceeds pmax by more than noise.
    assert raf_mean >= hd_mean - 0.01
    assert raf_mean >= sp_mean - 0.01
    assert raf_mean <= pmax_mean + 0.05
