"""Extension X1 -- maximum active friending under an invitation budget.

The prior work on active friending (Yang et al., Yuan et al.) studies the
budgeted maximization problem.  The realization machinery built for RAF
solves it directly (budgeted trace coverage); this benchmark compares that
solver against giving the same budget to the HD and SP heuristics, at
several budgets, on the wiki stand-in.
"""

from __future__ import annotations

from conftest import emit

from repro.baselines.high_degree import high_degree_invitation
from repro.baselines.shortest_path import shortest_path_invitation
from repro.core.maximization import maximize_acceptance_probability
from repro.core.problem import ActiveFriendingProblem
from repro.experiments.harness import evaluate_invitation
from repro.experiments.reporting import format_table

BUDGETS = (2, 5, 10, 20, 40)


def test_extension_budgeted_maximization(benchmark, dataset_graphs, dataset_pairs, bench_config):
    graph = dataset_graphs["wiki"]
    pair = dataset_pairs["wiki"][0]
    problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=0.5)

    def run_budget(budget: int):
        return maximize_acceptance_probability(
            graph, pair.source, pair.target, budget=budget,
            num_realizations=bench_config.realizations, rng=1010 + budget,
        )

    rows = []
    for budget in BUDGETS:
        max_raf = run_budget(budget)
        hd = high_degree_invitation(problem, budget)
        sp = shortest_path_invitation(problem, budget)
        evaluate = lambda invitation, salt: evaluate_invitation(  # noqa: E731
            graph, pair.source, pair.target, invitation,
            num_samples=bench_config.eval_samples, rng=2020 + budget + salt,
        )
        rows.append(
            {
                "budget": budget,
                "max_raf": evaluate(max_raf.invitation, 0),
                "sp": evaluate(sp.invitation, 1),
                "hd": evaluate(hd.invitation, 2),
                "screened_pmax": pair.pmax,
            }
        )

    benchmark.pedantic(run_budget, args=(BUDGETS[-1],), rounds=1, iterations=1)
    emit(
        "extension_maximization",
        format_table(rows, title="Extension X1 -- budgeted maximization on the wiki stand-in"),
    )

    # The trace-based maximizer should dominate HD at every budget and grow
    # (weakly) with the budget.
    for row in rows:
        assert row["max_raf"] >= row["hd"] - 0.02
    values = [row["max_raf"] for row in rows]
    assert values[-1] >= values[0] - 0.02
