"""Scenario: friending a celebrity.

The motivating use case of the paper: an ordinary user wants to become an
online friend of a hub user (a "celebrity" with very high degree) who would
never accept a cold invitation.  The script shows how the required
invitation effort grows with the desired fraction ``alpha`` of the maximum
acceptance probability, and how much better RAF spends that effort than the
High-Degree heuristic.

Run with:  python examples/celebrity_friending.py
"""

from __future__ import annotations

from repro import (
    ActiveFriendingProblem,
    RAFConfig,
    SamplePolicy,
    barabasi_albert_graph,
    apply_degree_normalized_weights,
    estimate_acceptance_probability,
    high_degree_invitation,
    run_raf,
)
from repro.experiments.reporting import format_table

SEED = 7


def pick_celebrity_and_fan(graph):
    """The celebrity is the highest-degree user; the fan is a distant low-degree user."""
    celebrity = max(graph.nodes(), key=graph.degree)
    fans = [
        node
        for node in graph.nodes()
        if node != celebrity
        and not graph.has_edge(node, celebrity)
        and graph.degree(node) <= 3
    ]
    if not fans:
        raise RuntimeError("no suitable fan found; enlarge the graph")
    return fans[len(fans) // 2], celebrity


def main() -> None:
    graph = apply_degree_normalized_weights(barabasi_albert_graph(800, 3, rng=SEED))
    fan, celebrity = pick_celebrity_and_fan(graph)
    print(f"fan {fan} (degree {graph.degree(fan)}) wants to friend "
          f"celebrity {celebrity} (degree {graph.degree(celebrity)})")

    config = RAFConfig(
        epsilon=0.02,
        sample_policy=SamplePolicy.FIXED,
        fixed_realizations=8000,
    )

    rows = []
    for alpha in (0.3, 0.5, 0.7, 0.9):
        problem = ActiveFriendingProblem(graph, fan, celebrity, alpha=alpha)
        raf = run_raf(problem, config, rng=SEED + int(alpha * 100))
        hd = high_degree_invitation(problem, raf.size)

        def acceptance(invitation) -> float:
            return estimate_acceptance_probability(
                graph, fan, celebrity, invitation, num_samples=4000, rng=SEED
            ).probability

        raf_acceptance = acceptance(raf.invitation)
        rows.append(
            {
                "alpha": alpha,
                "invitations": raf.size,
                "raf_acceptance": raf_acceptance,
                "hd_acceptance": acceptance(hd.invitation),
                "pmax_estimate": raf.pmax_estimate,
                "raf_fraction_of_pmax": raf_acceptance / raf.pmax_estimate,
            }
        )

    print()
    print(format_table(rows, title="Invitation effort vs target fraction alpha"))
    print("\nReading the table: the invitation budget RAF needs grows with the desired "
          "fraction alpha of the best achievable probability, and spending the same "
          "budget on merely popular users (HD) achieves consistently less -- popularity "
          "is no substitute for sitting on the routes between the fan and the celebrity.")


if __name__ == "__main__":
    main()
