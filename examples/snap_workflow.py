"""Workflow: running the paper's evaluation protocol on your own SNAP edge list.

The paper evaluates on public SNAP graphs.  This environment cannot download
them, so the script demonstrates the exact drop-in workflow with a synthetic
edge list written to disk: point ``EDGE_LIST`` at a real SNAP file (e.g.
``wiki-Vote.txt``) and the rest of the script runs unchanged -- pair
selection with the pmax >= 0.01 screen, the Fig. 3 basic experiment and the
Table II Vmax comparison.

Run with:  python examples/snap_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import apply_degree_normalized_weights, load_dataset, read_snap_graph
from repro.experiments import (
    ExperimentConfig,
    format_basic_experiment,
    format_vmax_comparison,
    run_basic_experiment,
    run_vmax_comparison,
    select_pairs,
)
from repro.graph.io import write_edge_list

SEED = 42

#: Point this at a real SNAP edge list to reproduce the paper on real data.
EDGE_LIST: Path | None = None


def build_sample_edge_list(directory: Path) -> Path:
    """Write a synthetic stand-in edge list (used when no real file is given)."""
    graph = load_dataset("hepth", scale=0.03, rng=SEED, weighted=False)
    path = directory / "hepth_standin.txt"
    write_edge_list(graph, path, header="synthetic stand-in for cit-HepTh")
    return path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        edge_list = EDGE_LIST or build_sample_edge_list(Path(tmp))
        print(f"loading edge list: {edge_list}")
        graph = apply_degree_normalized_weights(read_snap_graph(edge_list))
        print(f"graph: {graph.num_nodes} users, {graph.num_edges} friendships")

        config = ExperimentConfig(
            num_pairs=3,
            alphas=(0.1, 0.2, 0.3),
            realizations=3000,
            eval_samples=300,
            pair_screen_samples=300,
            seed=SEED,
        )
        pairs = select_pairs(
            graph,
            config.num_pairs,
            pmax_threshold=config.pmax_threshold,
            pmax_ceiling=config.pmax_ceiling,
            min_distance=config.min_distance,
            screen_samples=config.pair_screen_samples,
            rng=config.seed,
        )
        print(f"selected pairs: {[(p.source, p.target, round(p.pmax, 3)) for p in pairs]}\n")

        basic = run_basic_experiment(graph, pairs, config, dataset_name=edge_list.name, rng=SEED)
        print(format_basic_experiment(basic))
        print()
        vmax = run_vmax_comparison(graph, pairs, config, dataset_name=edge_list.name, rng=SEED)
        print(format_vmax_comparison([vmax]))


if __name__ == "__main__":
    main()
