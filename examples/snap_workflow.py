"""Workflow: compile a SNAP edge list once, evaluate from the mapped snapshot.

The paper evaluates on public SNAP graphs.  This environment cannot download
them, so the script demonstrates the exact drop-in workflow with a synthetic
edge list written to disk: point ``EDGE_LIST`` at a real SNAP file (e.g.
``wiki-Vote.txt``) and the rest runs unchanged.

The workflow is the out-of-core one (DESIGN.md §8) -- compile once, open
many times:

1. ``compile_edge_list`` streams the file into an on-disk CSR snapshot in
   bounded memory (two passes over the edges; no dict graph is ever built),
   equivalent to ``repro compile-graph <edgelist> <dir>`` on the CLI;
2. ``CompiledGraph.open`` maps the snapshot's columns read-only -- opening
   a million-node graph costs milliseconds and a few MB resident, and every
   sampling engine accepts it unchanged (``repro raf/matrix/serve
   --snapshot <dir>``);
3. the paper's protocol runs from the mapped columns: the pmax >= 0.01 pair
   screen and the Fig. 3 basic experiment;
4. the same experiment is repeated on the conventionally loaded in-memory
   graph and the reports are asserted **identical** -- the mapped snapshot
   changes where the columns live, never what gets sampled.

Run with:  PYTHONPATH=src python examples/snap_workflow.py
           [--scale F] [--pairs N] [--realizations N]  (smaller = faster)
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import apply_degree_normalized_weights, load_dataset, read_snap_graph
from repro.experiments import (
    ExperimentConfig,
    format_basic_experiment,
    run_basic_experiment,
    select_pairs,
)
from repro.graph.compiled import CompiledGraph, read_snapshot_meta
from repro.graph.io import write_edge_list
from repro.graph.stream_compiler import compile_edge_list

SEED = 42

#: Point this at a real SNAP edge list to reproduce the paper on real data.
EDGE_LIST: Path | None = None


def build_sample_edge_list(directory: Path, scale: float) -> Path:
    """Write a synthetic stand-in edge list (used when no real file is given)."""
    graph = load_dataset("hepth", scale=scale, rng=SEED, weighted=False)
    path = directory / "hepth_standin.txt"
    write_edge_list(graph, path, header="synthetic stand-in for cit-HepTh")
    return path


def run_protocol(graph, name: str, config: ExperimentConfig) -> str:
    """Pair screen + Fig. 3 basic experiment; returns the formatted report."""
    pairs = select_pairs(
        graph,
        config.num_pairs,
        pmax_threshold=config.pmax_threshold,
        pmax_ceiling=config.pmax_ceiling,
        min_distance=config.min_distance,
        screen_samples=config.pair_screen_samples,
        rng=config.seed,
    )
    print(f"selected pairs: {[(p.source, p.target, round(p.pmax, 3)) for p in pairs]}")
    basic = run_basic_experiment(graph, pairs, config, dataset_name=name, rng=SEED)
    return format_basic_experiment(basic)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02,
                        help="synthetic stand-in size (fraction of cit-HepTh; default 0.02)")
    parser.add_argument("--pairs", type=int, default=2, help="screened pairs (default 2)")
    parser.add_argument("--realizations", type=int, default=1500,
                        help="backward traces per RAF run (default 1500)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        edge_list = EDGE_LIST or build_sample_edge_list(Path(tmp), args.scale)
        snapshot_dir = Path(tmp) / "snapshot"

        # Step 1: compile once.  Streams the file in bounded memory; the
        # CLI equivalent is `repro compile-graph <edgelist> <dir>`.
        result = compile_edge_list(edge_list, snapshot_dir)
        print(f"compiled {edge_list.name}: {result.num_nodes} users, "
              f"{result.num_edges} friendships -> {snapshot_dir}")
        print(f"snapshot digest: {result.digest}")

        # Step 2: open many times.  The columns are memory-mapped read-only;
        # meta.json carries the format version and the CSR digest that the
        # sample pool and experiment fingerprints bind.
        meta = read_snapshot_meta(snapshot_dir)
        print(f"format: {meta['format']} v{meta['format_version']}, "
              f"weights: {meta['weights']}\n")
        mapped = CompiledGraph.open(snapshot_dir)

        config = ExperimentConfig(
            num_pairs=args.pairs,
            alphas=(0.1, 0.2, 0.3),
            realizations=args.realizations,
            eval_samples=max(100, args.realizations // 10),
            pair_screen_samples=max(100, args.realizations // 5),
            seed=SEED,
        )

        # Step 3: the paper's protocol straight off the mapped columns.
        mapped_report = run_protocol(mapped, edge_list.name, config)
        print(mapped_report)
        print()

        # Step 4: the mapped snapshot is a *representation* change, not a
        # semantic one -- the conventional in-memory load produces the very
        # same report, byte for byte (same RNG streams, same paths).
        in_memory = apply_degree_normalized_weights(read_snap_graph(edge_list))
        in_memory_report = run_protocol(in_memory, edge_list.name, config)
        assert in_memory_report == mapped_report, "mapped and in-memory reports diverged"
        print("in-memory rerun is bit-identical to the mapped snapshot run ✓")


if __name__ == "__main__":
    main()
