"""Quickstart: recommend an invitation strategy for one (initiator, target) pair.

This walks through the full public API in one page:

1. build a friendship graph (a scaled stand-in for the paper's Wiki dataset),
2. pick an (initiator, target) pair that is hard but not hopeless,
3. run the RAF algorithm to get an invitation set with a provable guarantee,
4. evaluate it against the High-Degree and Shortest-Path heuristics and
   against the maximum achievable acceptance probability.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ActiveFriendingProblem,
    RAFConfig,
    SamplePolicy,
    compute_vmax,
    estimate_acceptance_probability,
    high_degree_invitation,
    load_dataset,
    run_raf,
    shortest_path_invitation,
)
from repro.experiments.pair_selection import select_pairs

SEED = 2019


def main() -> None:
    # 1. A friendship graph with the paper's w(u, v) = 1/|N_v| weights.
    graph = load_dataset("wiki", scale=0.1, rng=SEED)
    print(f"graph: {graph.num_nodes} users, {graph.num_edges} friendships")

    # 2. A pair with pmax >= 0.02 that is at least three hops apart.
    pair = select_pairs(
        graph, num_pairs=1, pmax_threshold=0.02, pmax_ceiling=0.5,
        min_distance=3, screen_samples=500, rng=SEED,
    )[0]
    print(f"initiator {pair.source} wants to friend target {pair.target} "
          f"(estimated pmax = {pair.pmax:.3f})")

    # 3. Run RAF: reach at least 30% of the best achievable probability.
    problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=0.3)
    config = RAFConfig(
        epsilon=0.05,
        sample_policy=SamplePolicy.FIXED,
        fixed_realizations=6000,
    )
    result = run_raf(problem, config, rng=SEED)
    print(f"\nRAF recommends inviting {result.size} users "
          f"(covered {result.covered_weight}/{result.num_type1} sampled realizations, "
          f"size bound 2*sqrt(|B1|) = {result.approx_ratio_bound:.1f})")

    # 4. Evaluate against the baselines at the same invitation budget.
    budget = result.size
    hd = high_degree_invitation(problem, budget)
    sp = shortest_path_invitation(problem, budget)
    vmax = compute_vmax(graph, pair.source, pair.target)

    def acceptance(invitation) -> float:
        return estimate_acceptance_probability(
            graph, pair.source, pair.target, invitation, num_samples=2000, rng=SEED + 1
        ).probability

    print("\nacceptance probability with the same budget "
          f"({budget} invitations):")
    print(f"  RAF            : {acceptance(result.invitation):.4f}")
    print(f"  Shortest-Path  : {acceptance(sp.invitation):.4f}")
    print(f"  High-Degree    : {acceptance(hd.invitation):.4f}")
    print(f"  pmax (invite everyone useful, {len(vmax)} users): {acceptance(vmax):.4f}")


if __name__ == "__main__":
    main()
