"""Scenario: friending across communities.

The initiator and the target live in different communities of a
planted-partition network that are connected only through a few bridge
users.  A good invitation strategy must spend its budget on those bridges.
The script compares RAF with the Shortest-Path and PageRank heuristics and
reports how many of the true bridge users each strategy invites.

Run with:  python examples/community_bridge.py
"""

from __future__ import annotations

from repro import (
    ActiveFriendingProblem,
    RAFConfig,
    SamplePolicy,
    apply_degree_normalized_weights,
    compute_vmax,
    estimate_acceptance_probability,
    pagerank_invitation,
    run_raf,
    shortest_path_invitation,
)
from repro.experiments.reporting import format_table
from repro.graph.generators import planted_partition_graph

SEED = 11
COMMUNITIES = 2
COMMUNITY_SIZE = 150


def community_of(node: int) -> int:
    return node // COMMUNITY_SIZE


def main() -> None:
    graph = apply_degree_normalized_weights(
        planted_partition_graph(
            COMMUNITIES, COMMUNITY_SIZE, p_in=0.06, p_out=0.003, rng=SEED
        )
    )
    bridges = {
        node
        for node in graph.nodes()
        if any(community_of(neighbor) != community_of(node) for neighbor in graph.neighbors(node))
    }
    print(f"graph: {graph.num_nodes} users in {COMMUNITIES} communities, "
          f"{graph.num_edges} friendships, {len(bridges)} bridge users")

    # Initiator in community 0, target in community 1, not already friends.
    source = 0
    target = next(
        node
        for node in range(COMMUNITY_SIZE, 2 * COMMUNITY_SIZE)
        if not graph.has_edge(source, node) and graph.degree(node) > 0
    )
    print(f"initiator {source} (community 0) wants to friend target {target} (community 1)")

    problem = ActiveFriendingProblem(graph, source, target, alpha=0.3)
    config = RAFConfig(epsilon=0.05, sample_policy=SamplePolicy.FIXED, fixed_realizations=8000)
    raf = run_raf(problem, config, rng=SEED)
    budget = raf.size
    sp = shortest_path_invitation(problem, budget)
    pr = pagerank_invitation(problem, budget)

    def acceptance(invitation) -> float:
        return estimate_acceptance_probability(
            graph, source, target, invitation, num_samples=1500, rng=SEED + 1
        ).probability

    rows = []
    for name, invitation in [
        ("RAF", raf.invitation),
        ("Shortest-Path", sp.invitation),
        ("PageRank", pr.invitation),
        ("everyone useful (Vmax)", compute_vmax(graph, source, target)),
    ]:
        rows.append(
            {
                "algorithm": name,
                "invitations": len(invitation),
                "bridge_users_invited": len(invitation & bridges),
                "acceptance_probability": acceptance(invitation),
            }
        )

    print()
    print(format_table(rows, title=f"Crossing communities with {budget} invitations"))
    print("\nRAF concentrates its invitations on the users that actually connect the "
          "two communities, which is what drives the acceptance probability; global "
          "popularity scores (PageRank) mostly pick users inside the big communities.")


if __name__ == "__main__":
    main()
