"""Deterministic fault injection for chaos testing the sampling stack.

Fault tolerance is only trustworthy if it is *tested* against the failures
it claims to survive, and those tests are only debuggable if the failures
are reproducible.  This module provides :class:`FaultPlan`: a seeded,
deterministic schedule of injected faults -- worker kills, shared-memory
publish failures, spill I/O errors and slow chunks -- that the
fault-tolerant layers consult at their injection sites:

* :class:`~repro.parallel.engine.ParallelEngine` asks the plan, once per
  dispatched chunk, whether the worker running that chunk should be
  SIGKILLed (:data:`SITE_WORKER_KILL`), should fail its shared-memory
  publish and fall back to pickling (:data:`SITE_SHM_PUBLISH`), or should
  sleep before sampling (:data:`SITE_SLOW_CHUNK`).
* :class:`~repro.pool.sample_pool.SamplePool` asks, once per spill chunk
  blob, whether the write should raise ``OSError``
  (:data:`SITE_SPILL_IO`).

Determinism follows the library's labeled-seed scheme
(:func:`repro.utils.rng.derive_seed`): whether occurrence ``i`` at a site
fires is a pure function of ``(plan seed, site, i)``, independent of
wall-clock time, scheduling, or any other site's history.  The same plan
therefore injects the same faults at the same logical points on every
run -- and because every recovery path is itself deterministic (chunks are
pure functions of their seeds, spills are append-safe), a faulted run's
*results* are asserted byte-identical to a fault-free run's.

A plan can fire probabilistically (per-site rates, for soak runs) or at
explicit occurrence indices (for pinpoint regression tests); both consume
the same occurrence counters.  Plans are mutable (they count occurrences
and injections) and are not thread-safe; share one plan per single-threaded
harness, or one per component.
"""

from __future__ import annotations

import random

from repro.utils.rng import derive_seed
from repro.utils.validation import require_non_negative_int

__all__ = [
    "SITE_WORKER_KILL",
    "SITE_SLOW_CHUNK",
    "SITE_SHM_PUBLISH",
    "SITE_SPILL_IO",
    "FAULT_SITES",
    "FaultPlan",
]

#: A worker process is SIGKILLed while running the chunk (crash recovery).
SITE_WORKER_KILL = "worker-kill"

#: The chunk's worker sleeps before sampling (latency, not corruption).
SITE_SLOW_CHUNK = "slow-chunk"

#: The chunk's shared-memory publish fails (exercises the pickle fallback).
SITE_SHM_PUBLISH = "shm-publish"

#: A spill chunk-blob write raises ``OSError`` (exercises spill resilience).
SITE_SPILL_IO = "spill-io"

#: Every injection site a plan schedules.
FAULT_SITES = (SITE_WORKER_KILL, SITE_SLOW_CHUNK, SITE_SHM_PUBLISH, SITE_SPILL_IO)


def _require_rate(value: float, name: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


class FaultPlan:
    """A deterministic schedule of injected faults.

    Parameters
    ----------
    seed:
        The plan's base seed.  Whether occurrence ``i`` at a site fires is
        a pure function of ``(seed, site, i)``.
    kill_rate, slow_rate, shm_fail_rate, spill_fail_rate:
        Per-site firing probabilities in ``[0, 1]`` (evaluated on the
        site's own derived stream, so sites never perturb each other).
    kill_at, slow_at, shm_fail_at, spill_fail_at:
        Explicit occurrence indices that fire regardless of the rate --
        the pinpoint mode regression tests use (``kill_at={0}`` kills the
        worker running the first dispatched chunk, exactly once: the
        retry consumes a *new* occurrence index, which no longer fires).
    slow_seconds:
        How long a slow chunk sleeps (latency only; never touches data).
    max_faults:
        Optional cap on the total faults injected across all sites; once
        reached the plan goes quiet, guaranteeing chaos runs terminate.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        kill_rate: float = 0.0,
        slow_rate: float = 0.0,
        shm_fail_rate: float = 0.0,
        spill_fail_rate: float = 0.0,
        kill_at: "tuple[int, ...] | frozenset | set" = (),
        slow_at: "tuple[int, ...] | frozenset | set" = (),
        shm_fail_at: "tuple[int, ...] | frozenset | set" = (),
        spill_fail_at: "tuple[int, ...] | frozenset | set" = (),
        slow_seconds: float = 0.005,
        max_faults: "int | None" = None,
    ) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        if max_faults is not None:
            require_non_negative_int(max_faults, "max_faults")
        if not isinstance(slow_seconds, (int, float)) or slow_seconds < 0:
            raise ValueError(f"slow_seconds must be non-negative, got {slow_seconds!r}")
        self._seed = seed
        self._rates = {
            SITE_WORKER_KILL: _require_rate(kill_rate, "kill_rate"),
            SITE_SLOW_CHUNK: _require_rate(slow_rate, "slow_rate"),
            SITE_SHM_PUBLISH: _require_rate(shm_fail_rate, "shm_fail_rate"),
            SITE_SPILL_IO: _require_rate(spill_fail_rate, "spill_fail_rate"),
        }
        self._explicit = {
            SITE_WORKER_KILL: frozenset(kill_at),
            SITE_SLOW_CHUNK: frozenset(slow_at),
            SITE_SHM_PUBLISH: frozenset(shm_fail_at),
            SITE_SPILL_IO: frozenset(spill_fail_at),
        }
        self._max_faults = max_faults
        self.slow_seconds = float(slow_seconds)
        self._occurrences = {site: 0 for site in FAULT_SITES}
        self._injected = {site: 0 for site in FAULT_SITES}

    @property
    def seed(self) -> int:
        """The plan's base seed."""
        return self._seed

    @property
    def total_injected(self) -> int:
        """Faults injected so far, across all sites."""
        return sum(self._injected.values())

    def injected(self, site: "str | None" = None) -> int:
        """Faults injected at ``site`` so far (or in total with ``None``)."""
        if site is None:
            return self.total_injected
        return self._injected[site]

    def occurrences(self, site: str) -> int:
        """How many occurrences at ``site`` have been decided so far."""
        return self._occurrences[site]

    def fires(self, site: str) -> bool:
        """Decide (and consume) the next occurrence at ``site``.

        Deterministic: occurrence ``i`` fires iff ``i`` is in the site's
        explicit index set, or the site's derived per-occurrence stream
        draws below its rate -- a pure function of ``(seed, site, i)``.
        Returns ``False`` unconditionally once ``max_faults`` is reached.
        """
        if site not in self._occurrences:
            raise ValueError(f"unknown fault site {site!r} (expected one of {FAULT_SITES})")
        index = self._occurrences[site]
        self._occurrences[site] = index + 1
        if self._max_faults is not None and self.total_injected >= self._max_faults:
            return False
        fired = index in self._explicit[site]
        if not fired and self._rates[site] > 0.0:
            draw_seed = derive_seed(random.Random(self._seed), f"fault-{site}-{index}")
            fired = random.Random(draw_seed).random() < self._rates[site]
        if fired:
            self._injected[site] += 1
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        shots = {site: count for site, count in self._injected.items() if count}
        return f"<FaultPlan seed={self._seed} injected={shots}>"
