"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends raised by misuse of the Python API itself) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "WeightError",
    "GraphFormatError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotVersionError",
    "SnapshotIntegrityError",
    "ProblemDefinitionError",
    "EstimationError",
    "EngineError",
    "WorkerCrashError",
    "SetCoverError",
    "InfeasibleCoverError",
    "ParameterSolverError",
    "AlgorithmError",
    "ExperimentError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceRejectedError",
    "ServiceClosedError",
    "ServiceBudgetExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors related to the social graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by the caller does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by the caller does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class WeightError(GraphError, ValueError):
    """A familiarity weight violates the model constraints.

    The linear-threshold friending model requires every ordered-pair weight
    ``w(u, v)`` to lie in ``(0, 1]`` and the total incoming weight of every
    node to be at most 1 (after normalization).
    """


class GraphFormatError(GraphError, ValueError):
    """An edge-list file or serialized graph could not be parsed."""


class SnapshotError(GraphError):
    """Base class for on-disk compiled-snapshot errors.

    Raised (always with the offending path in the message) when a snapshot
    directory cannot be written, opened or re-opened -- including the case
    where the optional ``numpy`` dependency backing the ``.npy`` columns is
    not installed.  More specific failure modes use the subclasses below so
    callers can distinguish "not a snapshot" from "a snapshot from the
    future" from "a damaged snapshot".
    """


class SnapshotFormatError(SnapshotError, ValueError):
    """A snapshot directory is malformed: missing or unreadable ``meta.json``
    or column files, wrong column dtypes/shapes, or inconsistent CSR
    structure (see DESIGN.md §8 for the rejection rules)."""


class SnapshotVersionError(SnapshotError, ValueError):
    """A snapshot declares an on-disk format version this library does not
    speak.  Snapshots are never silently reinterpreted across format
    versions; recompile with ``repro compile-graph`` instead."""


class SnapshotIntegrityError(SnapshotError, ValueError):
    """A snapshot's recorded CSR digest does not match its column bytes.

    Means the columns were truncated or modified after ``meta.json`` was
    written; any sample drawn from such a snapshot would be untrustworthy,
    so verification fails loudly."""


class ProblemDefinitionError(ReproError, ValueError):
    """The active-friending problem instance is ill-formed.

    Examples: the initiator equals the target, the target is already a
    friend of the initiator, or ``alpha`` lies outside ``(0, 1]``.
    """


class EstimationError(ReproError):
    """A Monte Carlo estimation routine could not produce an estimate."""


class EngineError(ReproError, ValueError):
    """A sampling engine is unknown or its backend is unavailable.

    Raised when an engine name does not match a registered backend or when
    an optional backend (e.g. the numpy-vectorized engine) is requested in
    an environment where its dependency is not installed.
    """


class WorkerCrashError(EngineError):
    """A parallel sampling worker died and the retry budget ran out.

    Raised by :class:`~repro.parallel.engine.ParallelEngine` when a worker
    process disappears mid-chunk (OOM kill, segfault, injected fault) and
    the lost chunks could not be recovered within ``max_chunk_retries``
    respawn-and-retry rounds (``on_worker_failure="retry"``), or
    immediately on the first crash (``on_worker_failure="raise"``).  The
    retried chunks would have been byte-identical to the lost ones -- each
    chunk is a pure function of its derived seed -- so this error reports
    an infrastructure failure, never a results discrepancy.
    """

    def __init__(self, message: str, chunks: "tuple[int, ...]" = ()) -> None:
        super().__init__(message)
        #: Indices of the chunks that were lost when the budget ran out.
        self.chunks = tuple(chunks)


class SetCoverError(ReproError):
    """Base class for errors raised by the set-cover / MpU solvers."""


class InfeasibleCoverError(SetCoverError, ValueError):
    """The requested cover cannot be satisfied (e.g. ``p`` exceeds ``|U|``)."""


class ParameterSolverError(ReproError, ValueError):
    """Equation System 1 / Eq. (17) has no solution for the given inputs."""


class AlgorithmError(ReproError):
    """An invitation-set algorithm failed to produce a valid solution."""


class ExperimentError(ReproError):
    """An experiment configuration or run is invalid."""


class ServiceError(ReproError):
    """Base class for errors raised by the concurrent query service."""


class ServiceOverloadedError(ServiceError):
    """Admission control refused a query: too many executions in flight.

    Raised instead of queueing so callers can shed load explicitly; a query
    that *coalesces* onto an in-flight execution is always admitted (it
    costs no extra sampling).
    """


class ServiceRejectedError(ServiceError, ValueError):
    """Admission control refused a query: it exceeds the per-query budget
    (e.g. it requests more samples than ``max_query_samples`` allows)."""


class ServiceClosedError(ServiceError):
    """A query reached a service whose :meth:`~repro.service.QueryService.close`
    has begun (or finished).

    Raised *instead of* executing against an engine or executor that is
    being torn down: a submission racing ``close()`` -- including a
    would-be coalesced follower -- fails fast with this typed error rather
    than hanging on a latch nobody will set or surfacing a bare
    ``RuntimeError`` from a shut-down ``ThreadPoolExecutor``.
    """


class ServiceBudgetExceededError(ServiceError):
    """A tenant's token-bucket budget cannot cover a request's sample cost.

    Raised by the serving front end (:mod:`repro.service.server`) before the
    query reaches the service proper; the request should be retried after
    the bucket refills (HTTP clients see 429).  Distinct from
    :class:`ServiceRejectedError`, which means the single request is too
    large to *ever* admit.
    """
