"""Command-line interface.

The CLI exposes the common workflows without writing Python:

* ``repro datasets`` -- Table I statistics of the dataset stand-ins.
* ``repro raf`` -- run the RAF algorithm for one (initiator, target) pair
  (an explicit pair or an automatically screened one) and report the
  invitation set with its quality estimates.
* ``repro vmax`` -- the α = 1 solution (Lemma 7) for one pair.
* ``repro maximize`` -- the budgeted (maximum) active friending extension.
* ``repro experiment`` -- regenerate a table/figure of the paper (or all of
  them) on the stand-ins or on a user-supplied SNAP edge list.
* ``repro matrix`` -- run a scenario grid of (dataset × algorithm × budget
  × engine) cells in parallel, streaming resumable per-cell JSON records.
* ``repro serve`` -- a JSON-lines request loop over stdin/stdout answering
  pmax / evaluate / maximize queries through a shared
  :class:`~repro.service.QueryService` (request coalescing, admission
  control, metrics via the ``stats`` op).  With ``--listen HOST:PORT`` the
  same queries are served over TCP instead -- newline-delimited JSON or
  HTTP/1.1 on one port -- with per-tenant pools and token-bucket budgets,
  per-connection backpressure windows, deadlines and priority admission
  (see DESIGN.md §9).
* ``repro bench-load`` -- replay the deterministic closed-loop load
  benchmark (coalescing vs. no-coalescing arm, bit-identity asserted).
* ``repro compile-graph`` -- stream a SNAP edge list into an on-disk CSR
  snapshot directory (bounded memory, DESIGN.md §8); ``raf``, ``matrix``
  and ``serve`` then accept ``--snapshot DIR`` to open it memory-mapped.

Every command accepts ``--seed`` for reproducibility and either
``--dataset`` (a built-in stand-in, with ``--scale``) or ``--edge-list``
(a SNAP file, weighted with the paper's 1/|N_v| convention on load).
Sampling-heavy commands additionally accept ``--engine`` (backend) and
``--workers N|auto`` (multi-process sampling fan-out; seeded results are
identical for every worker count), and ``raf``/``maximize``/``matrix``
accept ``--pool/--no-pool`` (+ ``--pool-budget N``) to reuse reverse
samples across estimators through a shared sample pool (:mod:`repro.pool`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.baselines.high_degree import high_degree_invitation
from repro.baselines.shortest_path import shortest_path_invitation
from repro.core.maximization import maximize_acceptance_probability
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import RAFConfig, run_raf
from repro.core.parameters import SamplePolicy
from repro.core.vmax import compute_vmax
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.diffusion.engine import ENGINE_NAMES, create_engine
from repro.exceptions import ReproError
from repro.experiments.basic_experiment import format_basic_experiment, run_basic_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets_table import format_datasets_table, run_datasets_table
from repro.experiments.matrix import (
    MATRIX_ALGORITHM_NAMES,
    MatrixSpec,
    format_matrix,
    run_matrix,
)
from repro.experiments.pair_selection import select_pairs
from repro.experiments.ratio_comparison import format_ratio_comparison, run_ratio_comparison
from repro.experiments.realization_sweep import format_realization_sweep, run_realization_sweep
from repro.experiments.reporting import format_table
from repro.experiments.vmax_comparison import format_vmax_comparison, run_vmax_comparison
from repro.graph.compiled import CompiledGraph
from repro.graph.datasets import DATASET_NAMES, load_dataset
from repro.graph.io import read_snap_graph
from repro.graph.stream_compiler import WEIGHT_SCHEMES, compile_edge_list
from repro.graph.metrics import compute_stats
from repro.graph.weights import apply_degree_normalized_weights
from repro.experiments.records import to_jsonable
from repro.parallel.engine import WORKERS_AUTO, maybe_parallel
from repro.pool.sample_pool import SamplePool
from repro.service.loadgen import emit_load_report, run_load_benchmark
from repro.service.query_service import QUERY_KINDS, QueryService
from repro.service.server import serve_forever
from repro.types import PairSpec, ordered
from repro.utils.rng import derive_seed
from repro.utils.tables import render_table

__all__ = ["main", "build_parser"]

EXPERIMENT_CHOICES = ("table1", "fig3", "fig4", "fig5", "table2", "fig6", "all")


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", choices=DATASET_NAMES, default="wiki",
        help="built-in dataset stand-in to use (default: wiki)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="fraction of the original node count to generate (default: dataset-specific)",
    )
    parser.add_argument(
        "--edge-list", type=str, default=None,
        help="path to a SNAP edge list; overrides --dataset/--scale",
    )


def _add_snapshot_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--snapshot", type=str, default=None, metavar="DIR",
        help="compiled snapshot directory (see `repro compile-graph`), opened "
             "memory-mapped; overrides --dataset/--scale/--edge-list",
    )


def _parse_workers(value: str) -> "int | str":
    """argparse type for ``--workers``: a positive integer or 'auto'."""
    if value.lower() == WORKERS_AUTO:
        return WORKERS_AUTO
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive integer or '{WORKERS_AUTO}', got {value!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError(f"workers must be at least 1, got {count}")
    return count


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default="python",
        help="reverse-sampling backend: 'python' (default, pure stdlib), "
             "'numpy' (vectorized, requires numpy), or 'auto'",
    )
    parser.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="{N,auto}",
        help="sampling worker processes ('auto' = one per CPU); seeded results "
             "are identical for every worker count (default: single-stream)",
    )


def _add_pool_arguments(parser: argparse.ArgumentParser, default: bool, default_text: str) -> None:
    parser.add_argument(
        "--pool", action=argparse.BooleanOptionalAction, default=default,
        help="reuse reverse samples across estimators through a shared sample "
             f"pool (--no-pool disables; default: {default_text})",
    )
    parser.add_argument(
        "--pool-budget", type=int, default=None, metavar="N",
        help="cap on the total paths the pool keeps cached "
             "(default: unbounded)",
    )


def _add_pair_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--source", type=int, default=None, help="initiator user id")
    parser.add_argument("--target", type=int, default=None, help="target user id")
    parser.add_argument(
        "--min-pmax", type=float, default=0.02,
        help="pmax screening threshold used when the pair is auto-selected (default: 0.02)",
    )


#: Help/metavar grouping of the subcommands: (group, description, commands).
#: ``build_parser`` registers the groups in this order and renders them as
#: the top-level help epilog, so ``repro --help`` reads as four workflows
#: rather than a flat nine-command list.
_COMMAND_GROUPS = (
    ("algorithms", "single-pair algorithms", ("raf", "vmax", "maximize")),
    ("experiments", "paper artefacts and scenario grids", ("datasets", "experiment", "matrix")),
    ("serving", "query serving and load benchmarking", ("serve", "bench-load")),
    ("data", "graph compilation tooling", ("compile-graph",)),
)


def _group_epilog() -> str:
    lines = ["command groups:"]
    for group, description, commands in _COMMAND_GROUPS:
        lines.append(f"  {group:<12} {', '.join(commands)}")
        lines.append(f"  {'':<12} {description}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (subcommands in workflow groups)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Active friending under the linear threshold model (Tong et al., ICDCS 2019).",
        epilog=_group_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seed", type=int, default=2019, help="random seed (default: 2019)")
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")
    _register_algorithm_commands(subparsers)
    _register_experiment_commands(subparsers)
    _register_serving_commands(subparsers)
    _register_data_commands(subparsers)
    return parser


def _register_algorithm_commands(subparsers) -> None:
    raf = subparsers.add_parser("raf", help="run RAF for one (initiator, target) pair")
    _add_graph_arguments(raf)
    _add_snapshot_argument(raf)
    _add_pair_arguments(raf)
    _add_engine_argument(raf)
    raf.add_argument("--alpha", type=float, default=0.1, help="target fraction of pmax")
    raf.add_argument("--epsilon", type=float, default=None, help="guarantee slack (default alpha/5)")
    raf.add_argument("--realizations", type=int, default=5000, help="sampled realizations")
    raf.add_argument("--eval-samples", type=int, default=1000,
                     help="Process-1 simulations used to evaluate the output")
    raf.add_argument("--compare-baselines", action="store_true",
                     help="also evaluate HD and SP at the same budget")
    _add_pool_arguments(raf, default=False, default_text="off; pooled runs follow "
                        "the pool's labeled streams, see DESIGN.md §4")

    vmax = subparsers.add_parser("vmax", help="compute the alpha = 1 solution (Lemma 7)")
    _add_graph_arguments(vmax)
    _add_pair_arguments(vmax)

    maximize = subparsers.add_parser("maximize", help="budgeted (maximum) active friending")
    _add_graph_arguments(maximize)
    _add_pair_arguments(maximize)
    _add_engine_argument(maximize)
    maximize.add_argument("--budget", type=int, required=True, help="invitation budget")
    maximize.add_argument("--realizations", type=int, default=5000)
    _add_pool_arguments(maximize, default=False, default_text="off")


def _register_experiment_commands(subparsers) -> None:
    datasets = subparsers.add_parser("datasets", help="show Table I statistics of the stand-ins")
    datasets.add_argument("--scale", type=float, default=None)

    experiment = subparsers.add_parser("experiment", help="regenerate a table or figure")
    experiment.add_argument("name", choices=EXPERIMENT_CHOICES, help="which artefact to regenerate")
    _add_graph_arguments(experiment)
    _add_engine_argument(experiment)
    experiment.add_argument("--pairs", type=int, default=3, help="pairs per dataset (default: 3)")
    experiment.add_argument("--realizations", type=int, default=3000)
    experiment.add_argument("--eval-samples", type=int, default=250)
    experiment.add_argument(
        "--all-datasets", action="store_true",
        help="run over all four stand-ins instead of only --dataset",
    )

    matrix = subparsers.add_parser(
        "matrix",
        help="run a (dataset x algorithm x budget x engine) scenario grid with "
             "resumable per-cell JSON records",
    )
    matrix.add_argument(
        "--datasets", default="wiki,hepth",
        help="comma-separated dataset stand-ins (default: wiki,hepth)",
    )
    matrix.add_argument(
        "--algorithms", default="raf,hd",
        help=f"comma-separated algorithms out of {{{','.join(MATRIX_ALGORITHM_NAMES)}}} "
             "(default: raf,hd)",
    )
    matrix.add_argument(
        "--budgets", default="4,8",
        help="comma-separated invitation budgets (default: 4,8)",
    )
    matrix.add_argument(
        "--engines", default="python",
        help="comma-separated sampling backends (default: python)",
    )
    matrix.add_argument("--scale", type=float, default=0.03,
                        help="dataset generation scale (default: 0.03)")
    matrix.add_argument("--alpha", type=float, default=0.2, help="target fraction of pmax")
    matrix.add_argument("--realizations", type=int, default=2000,
                        help="backward traces sampled per raf cell")
    matrix.add_argument("--eval-samples", type=int, default=400,
                        help="reverse samples used to estimate each cell's f(I)")
    matrix.add_argument(
        "--output", default="matrix-records",
        help="directory for the per-cell JSON records (default: matrix-records)",
    )
    matrix.add_argument(
        "--workers", type=_parse_workers, default=None, metavar="{N,auto}",
        help="worker processes running grid cells concurrently ('auto' = one per "
             "CPU); records are byte-identical for every worker count",
    )
    matrix.add_argument(
        "--fresh", action="store_true",
        help="recompute every cell instead of resuming from existing records",
    )
    _add_snapshot_argument(matrix)
    _add_pool_arguments(matrix, default=True, default_text="on; records are "
                        "byte-identical with --no-pool, only slower")


def _register_serving_commands(subparsers) -> None:
    serve = subparsers.add_parser(
        "serve",
        help="answer pmax/evaluate/maximize queries as JSON lines over "
             "stdin/stdout through a shared coalescing query service",
    )
    _add_graph_arguments(serve)
    _add_snapshot_argument(serve)
    _add_engine_argument(serve)
    serve.add_argument(
        "--pool-budget", type=int, default=None, metavar="N",
        help="cap on the total paths the service pool keeps cached "
             "(default: unbounded)",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=None, metavar="N",
        help="admission limit on concurrent query executions "
             "(default: unbounded)",
    )
    serve.add_argument(
        "--max-query-samples", type=int, default=None, metavar="N",
        help="per-query sample budget; larger requests are refused "
             "(default: unbounded)",
    )
    serve.add_argument(
        "--coalesce", action=argparse.BooleanOptionalAction, default=True,
        help="coalesce equal in-flight queries onto one execution "
             "(--no-coalesce disables; results are identical either way)",
    )
    serve.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="serve over TCP instead of stdin: newline-delimited JSON or "
             "HTTP/1.1 on one port (POST /query, GET /stats, GET /healthz); "
             "port 0 picks a free port (default: stdin/stdout loop)",
    )
    serve.add_argument(
        "--tenant-burst", type=int, default=None, metavar="N",
        help="per-tenant token-bucket capacity in sample units; requests "
             "beyond it are refused with error_type 'budget' "
             "(--listen only; default: unlimited)",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=None, metavar="R",
        help="per-tenant bucket refill rate in sample units per second; "
             "requires --tenant-burst (--listen only; default: 0, no refill)",
    )
    serve.add_argument(
        "--max-tenants", type=int, default=64, metavar="N",
        help="cap on distinct tenants, each with its own pool and budget "
             "(--listen only; default: 64)",
    )
    serve.add_argument(
        "--connection-window", type=int, default=32, metavar="N",
        help="bounded in-flight request window per connection; further "
             "reads wait until responses drain (--listen only; default: 32)",
    )
    serve.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="deadline applied to requests that do not carry their own "
             "deadline_ms field (--listen only; default: none)",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="enable deterministic fault injection for chaos soak runs: "
             "seeds the FaultPlan driving the --fault-* rates; answers stay "
             "byte-identical (default: no faults; never use in production)",
    )
    serve.add_argument(
        "--fault-kill-rate", type=float, default=0.0, metavar="R",
        help="probability each dispatched sampling chunk SIGKILLs its "
             "worker (requires --fault-seed; default: 0)",
    )
    serve.add_argument(
        "--fault-slow-rate", type=float, default=0.0, metavar="R",
        help="probability each dispatched sampling chunk sleeps before "
             "running (requires --fault-seed; default: 0)",
    )
    serve.add_argument(
        "--fault-spill-rate", type=float, default=0.0, metavar="R",
        help="probability each pool spill write raises an I/O error "
             "(requires --fault-seed; default: 0)",
    )

    bench_load = subparsers.add_parser(
        "bench-load",
        help="replay the deterministic closed-loop load benchmark "
             "(coalescing vs. no-coalescing, bit-identity asserted)",
    )
    _add_graph_arguments(bench_load)
    _add_engine_argument(bench_load)
    bench_load.add_argument("--hot-pairs", type=int, default=2,
                            help="screened hot (source, target) pairs (default: 2)")
    bench_load.add_argument("--clients", type=int, default=48,
                            help="closed-loop clients per wave (default: 48)")
    bench_load.add_argument("--rounds", type=int, default=16,
                            help="request waves replayed (default: 16)")
    bench_load.add_argument("--pool-seed", type=int, default=77,
                            help="shared pool seed of both arms (default: 77)")
    bench_load.add_argument("--output", type=Path, default=None, metavar="PATH",
                            help="also write the JSON report to this file")
    bench_load.add_argument("--min-speedup", type=float, default=None,
                            help="fail unless the coalescing arm reaches this speedup")
    bench_load.add_argument("--socket", action="store_true",
                            help="also replay both arms over TCP through the asyncio "
                                 "front end (adds socket rows with client-side p99)")
    bench_load.add_argument("--min-socket-speedup", type=float, default=None,
                            help="fail unless the socket coalescing arm reaches this "
                                 "speedup (requires --socket)")
    bench_load.add_argument("--max-socket-p99-ms", type=float, default=None, metavar="MS",
                            help="fail when the socket arm's client-side p99 exceeds "
                                 "this many milliseconds (requires --socket)")


def _register_data_commands(subparsers) -> None:
    compile_graph = subparsers.add_parser(
        "compile-graph",
        help="stream a SNAP edge list into an on-disk CSR snapshot directory "
             "(bounded memory; see DESIGN.md §8 for the format)",
    )
    compile_graph.add_argument("edgelist", type=str, help="path to the SNAP edge list to compile")
    compile_graph.add_argument("snapshot_dir", type=str,
                               help="output snapshot directory (created if missing)")
    compile_graph.add_argument(
        "--weights", choices=WEIGHT_SCHEMES, default="degree",
        help="edge weight scheme: 'degree' (the paper's 1/|N_v|, default) or "
             "'uniform' (a fixed per-edge weight, capped at 1/|N_v|)",
    )
    compile_graph.add_argument(
        "--uniform-weight", type=float, default=0.1, metavar="W",
        help="per-edge weight for --weights uniform (default: 0.1)",
    )
    compile_graph.add_argument(
        "--name", type=str, default=None,
        help="graph name recorded in the snapshot metadata (default: edge list stem)",
    )
    compile_graph.add_argument(
        "--dedup", action=argparse.BooleanOptionalAction, default=True,
        help="drop repeated undirected edges like the in-memory loader "
             "(--no-dedup skips the duplicate set for pre-deduplicated inputs)",
    )
    compile_graph.add_argument(
        "--chunk-edges", type=int, default=None, metavar="N",
        help="edges buffered per streaming pass chunk (default: 1M; lower "
             "bounds peak memory, higher is faster)",
    )


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #


def _load_graph(args: argparse.Namespace):
    if getattr(args, "snapshot", None):
        return CompiledGraph.open(args.snapshot)
    if getattr(args, "edge_list", None):
        graph = apply_degree_normalized_weights(read_snap_graph(args.edge_list))
        return graph
    return load_dataset(args.dataset, scale=args.scale, rng=args.seed)


def _resolve_pair(graph, args: argparse.Namespace) -> PairSpec:
    if (args.source is None) != (args.target is None):
        raise ReproError("--source and --target must be given together")
    if args.source is not None:
        return PairSpec(source=args.source, target=args.target)
    pair = select_pairs(
        graph, 1, pmax_threshold=args.min_pmax, pmax_ceiling=1.0, min_distance=3,
        screen_samples=400, rng=args.seed, engine=getattr(args, "engine", "python"),
        workers=getattr(args, "workers", None),
    )[0]
    print(f"auto-selected pair: initiator={pair.source} target={pair.target} "
          f"(screened pmax={pair.pmax:.3f})")
    return pair


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        num_pairs=args.pairs,
        realizations=args.realizations,
        eval_samples=args.eval_samples,
        pair_screen_samples=max(200, args.eval_samples),
        engine=getattr(args, "engine", "python"),
        workers=getattr(args, "workers", None),
        seed=args.seed,
    )


def _experiment_graphs(args: argparse.Namespace) -> dict:
    if getattr(args, "edge_list", None):
        graph = apply_degree_normalized_weights(read_snap_graph(args.edge_list))
        return {graph.name or "edge-list": graph}
    if args.all_datasets:
        return {
            name: load_dataset(name, scale=args.scale, rng=args.seed + index)
            for index, name in enumerate(DATASET_NAMES)
        }
    return {args.dataset: load_dataset(args.dataset, scale=args.scale, rng=args.seed)}


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #


def _command_datasets(args: argparse.Namespace) -> int:
    rows = run_datasets_table(scale=args.scale, rng=args.seed)
    print(format_datasets_table(rows))
    return 0


def _command_raf(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = compute_stats(graph)
    print(f"graph: {stats.num_nodes} users, {stats.num_edges} friendships, "
          f"avg degree {stats.avg_degree:.2f}")
    pair = _resolve_pair(graph, args)
    problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=args.alpha)
    epsilon = args.epsilon if args.epsilon is not None else args.alpha / 5.0
    config = RAFConfig(
        epsilon=epsilon,
        sample_policy=SamplePolicy.FIXED,
        fixed_realizations=args.realizations,
        engine=args.engine,
        workers=args.workers,
        pool=args.pool,
        pool_budget=args.pool_budget,
    )
    result = run_raf(problem, config, rng=args.seed)
    print(f"\nRAF invitation set ({result.size} users):")
    print("  " + ", ".join(str(node) for node in ordered(result.invitation)))
    print(f"\npmax estimate            : {result.pmax_estimate:.4f}")
    print(f"sampled realizations     : {result.num_realizations} ({result.num_type1} type-1)")
    print(f"covered / target         : {result.covered_weight} / {result.cover_target}")
    print(f"size bound 2*sqrt(|B1|)  : {result.approx_ratio_bound:.1f}")
    achieved = estimate_acceptance_probability(
        graph, pair.source, pair.target, result.invitation,
        num_samples=args.eval_samples, rng=args.seed + 1,
    ).probability
    print(f"estimated f(I_RAF)       : {achieved:.4f}")
    if args.compare_baselines:
        rows = [{"algorithm": "RAF", "size": result.size, "acceptance": achieved}]
        for name, builder in (("HD", high_degree_invitation), ("SP", shortest_path_invitation)):
            invitation = builder(problem, max(1, result.size)).invitation
            value = estimate_acceptance_probability(
                graph, pair.source, pair.target, invitation,
                num_samples=args.eval_samples, rng=args.seed + 1,
            ).probability
            rows.append({"algorithm": name, "size": len(invitation), "acceptance": value})
        print()
        print(format_table(rows, title="Baselines at the same budget"))
    return 0


def _command_vmax(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    pair = _resolve_pair(graph, args)
    vmax = compute_vmax(graph, pair.source, pair.target)
    print(f"|Vmax| = {len(vmax)}")
    print("  " + ", ".join(str(node) for node in ordered(vmax)))
    return 0


def _command_maximize(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    pair = _resolve_pair(graph, args)
    pool = None
    if args.pool:
        pool = SamplePool(
            maybe_parallel(create_engine(graph, args.engine), args.workers),
            seed=derive_seed(args.seed, "cli-maximize-pool"),
            budget=args.pool_budget,
        )
    result = maximize_acceptance_probability(
        graph, pair.source, pair.target, budget=args.budget,
        num_realizations=args.realizations, rng=args.seed, engine=args.engine,
        workers=args.workers, pool=pool,
    )
    print(f"budgeted invitation set ({result.size} of at most {result.budget} users):")
    print("  " + ", ".join(str(node) for node in ordered(result.invitation)))
    print(f"estimated fraction of pmax achieved: {result.estimated_fraction_of_pmax:.3f}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    graphs = _experiment_graphs(args)
    wanted = EXPERIMENT_CHOICES[:-1] if args.name == "all" else (args.name,)
    pairs: dict = {}
    if any(name != "table1" for name in wanted):
        # Only the pair-based experiments need the pmax-screened pairs.
        pairs = {
            name: select_pairs(
                graph, config.num_pairs,
                pmax_threshold=config.pmax_threshold, pmax_ceiling=config.pmax_ceiling,
                min_distance=config.min_distance, screen_samples=config.pair_screen_samples,
                rng=config.seed, engine=config.engine,
            )
            for name, graph in graphs.items()
        }

    if "table1" in wanted:
        print(format_datasets_table(run_datasets_table(scale=args.scale, rng=args.seed)))
        print()
    if "fig3" in wanted:
        for name, graph in graphs.items():
            result = run_basic_experiment(graph, pairs[name], config, dataset_name=name, rng=args.seed)
            print(format_basic_experiment(result))
            print()
    for figure, baseline in (("fig4", "HD"), ("fig5", "SP")):
        if figure in wanted:
            for name, graph in graphs.items():
                result = run_ratio_comparison(
                    graph, pairs[name], config, baseline=baseline, dataset_name=name, rng=args.seed
                )
                print(format_ratio_comparison(result))
                print()
    if "table2" in wanted:
        results = [
            run_vmax_comparison(graph, pairs[name], config, dataset_name=name, rng=args.seed)
            for name, graph in graphs.items()
        ]
        print(format_vmax_comparison(results))
        print()
    if "fig6" in wanted:
        name, graph = next(iter(graphs.items()))
        result = run_realization_sweep(
            graph, pairs[name][0], config, dataset_name=name, rng=args.seed
        )
        print(format_realization_sweep(result))
        print()
    return 0


def _split_csv(value: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in value.split(",") if item.strip())


def _command_matrix(args: argparse.Namespace) -> int:
    try:
        budgets = tuple(int(item) for item in _split_csv(args.budgets))
    except ValueError:
        raise ReproError(f"--budgets must be comma-separated integers, got {args.budgets!r}") from None
    datasets = _split_csv(args.datasets)
    if args.snapshot is not None:
        # A mapped snapshot replaces the dataset axis: every cell runs on the
        # one compiled graph, and the fingerprint binds its digest.
        datasets = ("snapshot",)
    spec = MatrixSpec(
        datasets=datasets,
        algorithms=_split_csv(args.algorithms),
        budgets=budgets,
        engines=_split_csv(args.engines),
        scale=args.scale,
        alpha=args.alpha,
        realizations=args.realizations,
        eval_samples=args.eval_samples,
        seed=args.seed,
        pool=args.pool,
        pool_budget=args.pool_budget,
        snapshot=args.snapshot,
    )
    result = run_matrix(
        spec, args.output, workers=args.workers, resume=not args.fresh, echo=print
    )
    print()
    print(format_matrix(result))
    print(f"\nrecords: {result.output_dir}")
    return 0


def _serve_malformed(line_number: int, reason: str) -> int:
    print(f"error: malformed request on line {line_number}: {reason}", file=sys.stderr)
    return 1


def _serve_reply(payload: dict) -> None:
    print(json.dumps(payload, sort_keys=True), flush=True)


#: In-flight request window of ``repro serve`` when --max-in-flight is not
#: given: enough pipelining for duplicates to meet in flight and coalesce,
#: small enough that responses (written in input order) are not held back
#: long behind a slow request.
_SERVE_WINDOW = 32


def _serve_fault_plan(args: argparse.Namespace):
    """Build ``repro serve``'s opt-in FaultPlan (``None`` without --fault-seed).

    The rate flags are refused without ``--fault-seed`` rather than silently
    ignored: fault injection must never be half-configured into a serve
    process by accident.
    """
    rates = (
        ("--fault-kill-rate", args.fault_kill_rate),
        ("--fault-slow-rate", args.fault_slow_rate),
        ("--fault-spill-rate", args.fault_spill_rate),
    )
    if args.fault_seed is None:
        for flag, value in rates:
            if value:
                raise ReproError(f"{flag} requires --fault-seed (fault injection is opt-in)")
        return None
    from repro.faults import FaultPlan

    try:
        return FaultPlan(
            args.fault_seed,
            kill_rate=args.fault_kill_rate,
            slow_rate=args.fault_slow_rate,
            spill_fail_rate=args.fault_spill_rate,
        )
    except (TypeError, ValueError) as error:
        raise ReproError(str(error)) from None


def _command_serve(args: argparse.Namespace) -> int:
    """Dispatch ``repro serve``: stdin loop by default, TCP with --listen.

    The stdin mode is the original interface and its output is unchanged;
    the tenancy/budget/deadline flags only make sense for the socket server
    and are refused otherwise rather than silently ignored.
    """
    if args.listen is not None:
        return _serve_listen(args)
    for flag, value, unset in (
        ("--tenant-burst", args.tenant_burst, None),
        ("--tenant-rate", args.tenant_rate, None),
        ("--max-tenants", args.max_tenants, 64),
        ("--connection-window", args.connection_window, 32),
        ("--default-deadline-ms", args.default_deadline_ms, None),
    ):
        if value != unset:
            raise ReproError(f"{flag} requires --listen (the stdin loop is single-tenant)")
    try:
        return _serve_stdin(args)
    except BrokenPipeError:
        # The downstream reader (e.g. `repro serve | head -1`) closed our
        # stdout mid-stream.  That is a normal way for a consumer to stop:
        # drain quietly and exit clean instead of dying on the traceback.
        print(
            "serve: stdout closed by the downstream reader; "
            "drained in-flight requests and stopped",
            file=sys.stderr,
        )
        _neutralize_stdout()
        return 0
    except KeyboardInterrupt:
        print(
            "serve: interrupted; drained in-flight requests and stopped",
            file=sys.stderr,
        )
        return 130


def _neutralize_stdout() -> None:
    """Detach the broken stdout so interpreter-shutdown flushes stay quiet.

    After EPIPE the buffered writer still holds the half-written line; the
    interpreter flushes every open file at exit, which would print an
    ``Exception ignored`` traceback to stderr.  Flush-and-close now (eating
    the expected error) and point ``sys.stdout`` at /dev/null.
    """
    try:
        sys.stdout.close()
    except (OSError, ValueError):
        pass
    try:
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
    except OSError:  # pragma: no cover - /dev/null always opens on POSIX
        pass


def _serve_stdin(args: argparse.Namespace) -> int:
    """The JSON-lines request loop.

    One request object per input line, one response line per request *in
    input order*.  Requests are pipelined through a bounded window of
    concurrent submissions, so duplicates piped back-to-back genuinely meet
    in flight and coalesce, and ``--max-in-flight`` genuinely bounds the
    concurrent executions (the window never exceeds it, so admission
    control only refuses work an external co-user of the service is
    already running).  Library-level failures -- admission control,
    unreachable pairs -- become ``"ok": false`` lines and the loop
    continues.  A *malformed* request (invalid JSON, not an object,
    unknown ``op``, bad fields) drains the window, prints a diagnostic to
    stderr and exits non-zero: a client speaking the wrong protocol should
    fail loudly, not be half-served.  ``stats`` is a barrier: it drains the
    window first, so its counters cover every preceding line.
    """
    from collections import deque
    from concurrent.futures import ThreadPoolExecutor

    graph = _load_graph(args)
    window = args.max_in_flight if args.max_in_flight is not None else _SERVE_WINDOW
    with QueryService(
        graph,
        engine=args.engine,
        workers=args.workers,
        seed=args.seed,
        pool_budget=args.pool_budget,
        max_in_flight=args.max_in_flight,
        max_query_samples=args.max_query_samples,
        coalesce=args.coalesce,
        fault_plan=_serve_fault_plan(args),
    ) as service, ThreadPoolExecutor(
        max_workers=window, thread_name_prefix="repro-serve"
    ) as executor:
        pending: deque = deque()

        def drain(down_to: int = 0) -> None:
            while len(pending) > down_to:
                op, future = pending.popleft()
                try:
                    result = future.result()
                except ReproError as error:
                    _serve_reply({"ok": False, "op": op, "error": str(error)})
                else:
                    _serve_reply({"ok": True, "op": op, "result": to_jsonable(result)})

        for line_number, line in enumerate(sys.stdin, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                drain()
                return _serve_malformed(line_number, f"invalid JSON ({error})")
            if not isinstance(request, dict):
                drain()
                return _serve_malformed(line_number, "expected a JSON object")
            op = request.pop("op", None)
            if op == "stats":
                drain()
                metrics = service.metrics()
                _serve_reply({
                    "ok": True,
                    "op": op,
                    "result": {
                        **{k: v for k, v in to_jsonable(metrics).items() if k != "__type__"},
                        "coalesce_rate": metrics.coalesce_rate,
                        "pool_hit_rate": metrics.pool_hit_rate,
                    },
                })
                continue
            builder = QUERY_KINDS.get(op)
            if builder is None:
                drain()
                known = ", ".join(sorted((*QUERY_KINDS, "stats")))
                return _serve_malformed(line_number, f"unknown op {op!r} (expected {known})")
            try:
                query = builder(**request)
            except (TypeError, ValueError) as error:
                drain()
                return _serve_malformed(line_number, str(error))
            pending.append((op, executor.submit(service.submit, query)))
            drain(down_to=window - 1)
        drain()
    return 0


def _parse_listen(value: str) -> tuple[str, int]:
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise ReproError(f"--listen expects HOST:PORT, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(f"--listen port must be an integer, got {port_text!r}") from None
    if not 0 <= port <= 65535:
        raise ReproError(f"--listen port must be in [0, 65535], got {port}")
    return host, port


def _format_latency_ms(seconds: "float | None") -> str:
    return "-" if seconds is None else f"{seconds * 1000.0:.2f}"


def _server_stats_report(stats: dict) -> str:
    """The shutdown report of ``repro serve --listen``: summary + tenant table."""
    server = stats["server"]
    summary = (
        f"shutting down: {server['responses_total']} responses on "
        f"{server['connections_total']} connections "
        f"({server['malformed_total']} malformed, "
        f"{server['budget_rejected_total']} over budget, "
        f"{server['deadline_expired_total']} deadline-expired)"
    )
    rows = [
        (
            name,
            tenant["requests"],
            tenant["executed"],
            tenant["coalesced"],
            tenant["rejected"],
            _format_latency_ms(tenant["latency_p50"]),
            _format_latency_ms(tenant["latency_p99"]),
            "-" if tenant["tokens"] is None else f"{tenant['tokens']:.1f}",
        )
        for name, tenant in stats["tenants"].items()
    ]
    if not rows:
        return summary
    table = render_table(
        ("tenant", "requests", "executed", "coalesced", "rejected",
         "p50 ms", "p99 ms", "tokens"),
        rows,
        title="per-tenant service metrics",
    )
    return f"{summary}\n{table}"


#: Exit code of ``repro serve --listen`` when the port is already bound.
#: Distinct from the generic error exit so supervisors (and the regression
#: test) can tell "pick another port" apart from "the server is broken".
EXIT_ADDR_IN_USE = 2


def _serve_listen(args: argparse.Namespace) -> int:
    """Run the asyncio socket/HTTP server until interrupted."""
    import asyncio
    import errno

    host, port = _parse_listen(args.listen)
    fault_plan = _serve_fault_plan(args)
    graph = _load_graph(args)

    def echo(message: str) -> None:
        # Control-plane chatter goes to stderr: stdout stays clean in case
        # the process is composed into a pipeline.
        print(message, file=sys.stderr, flush=True)

    try:
        asyncio.run(serve_forever(
            graph,
            engine=args.engine,
            workers=args.workers,
            seed=args.seed,
            pool_budget=args.pool_budget,
            max_in_flight=args.max_in_flight,
            max_query_samples=args.max_query_samples,
            coalesce=args.coalesce,
            host=host,
            port=port,
            tenant_burst=args.tenant_burst,
            tenant_rate=args.tenant_rate,
            max_tenants=args.max_tenants,
            connection_window=args.connection_window,
            default_deadline_ms=args.default_deadline_ms,
            fault_plan=fault_plan,
            echo=echo,
            on_shutdown=lambda stats: echo(_server_stats_report(stats)),
        ))
    except KeyboardInterrupt:
        print("serve: interrupted; server closed cleanly", file=sys.stderr)
        return 0
    except OSError as error:
        if error.errno != errno.EADDRINUSE:
            raise
        # The most common operational mistake gets a one-line diagnostic
        # and its own exit code instead of an asyncio traceback.
        print(
            f"error: {host}:{port} is already in use; stop the other "
            "listener or pass a different --listen port (0 picks a free one)",
            file=sys.stderr,
        )
        return EXIT_ADDR_IN_USE
    except ValueError as error:
        # Configuration errors from QueryServer (e.g. --tenant-rate without
        # --tenant-burst) surface as the CLI's usual error: line.
        raise ReproError(str(error)) from None
    return 0


def _command_compile_graph(args: argparse.Namespace) -> int:
    extra = {}
    if args.chunk_edges is not None:
        if args.chunk_edges < 1:
            raise ReproError(f"--chunk-edges must be at least 1, got {args.chunk_edges}")
        extra["chunk_edges"] = args.chunk_edges
    result = compile_edge_list(
        args.edgelist,
        args.snapshot_dir,
        weights=args.weights,
        uniform_weight=args.uniform_weight,
        name=args.name,
        dedup=args.dedup,
        **extra,
    )
    print(f"snapshot: {result.directory}")
    print(f"  nodes            : {result.num_nodes}")
    print(f"  edges            : {result.num_edges}")
    print(f"  digest           : {result.digest}")
    print(f"  self-loops skipped: {result.self_loops_skipped}")
    print(f"  duplicates skipped: {result.duplicates_skipped}")
    return 0


def _command_bench_load(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    report = run_load_benchmark(
        graph,
        hot_pairs=args.hot_pairs,
        num_clients=args.clients,
        rounds=args.rounds,
        seed=args.seed,
        pool_seed=args.pool_seed,
        engine=args.engine,
        workers=args.workers,
        socket_transport=args.socket,
    )
    return emit_load_report(
        report,
        output=args.output,
        min_speedup=args.min_speedup,
        min_socket_speedup=args.min_socket_speedup,
        max_socket_p99_ms=args.max_socket_p99_ms,
    )


_COMMANDS = {
    "datasets": _command_datasets,
    "raf": _command_raf,
    "vmax": _command_vmax,
    "maximize": _command_maximize,
    "experiment": _command_experiment,
    "matrix": _command_matrix,
    "serve": _command_serve,
    "bench-load": _command_bench_load,
    "compile-graph": _command_compile_graph,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
