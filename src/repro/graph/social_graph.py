"""The undirected, familiarity-weighted friendship graph of Sec. II-A.

A snapshot of the social network is an undirected graph ``G = (V, E)``.
For every *ordered* pair ``(u, v)`` of current friends there is a weight
``w(u, v) ∈ (0, 1]`` describing v's familiarity with u; the weight need not
be symmetric.  The linear-threshold friending model additionally requires
``sum_u w(u, v) <= 1`` for every node ``v`` (after normalization), which is
what makes the "pick at most one in-neighbour" realization sampling of
Def. 1 well defined.

:class:`SocialGraph` stores, for every node ``v``, the mapping
``u -> w(u, v)`` over v's friends.  Because friendship is symmetric, ``u``
appears in ``v``'s map iff ``v`` appears in ``u``'s map; the two entries
hold the two directional weights.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, WeightError
from repro.types import EdgeTuple, NodeId

__all__ = ["GraphMutation", "SocialGraph", "MUTATION_LOG_LIMIT", "WEIGHT_SUM_TOLERANCE"]

#: Numerical slack allowed when checking that incoming weights sum to <= 1.
WEIGHT_SUM_TOLERANCE = 1e-9

#: How many mutation events a graph retains.  Consumers that fall behind by
#: more than this many versions get ``None`` from :meth:`SocialGraph.
#: mutations_since` and must treat the delta as unknown (full flush).
MUTATION_LOG_LIMIT = 256


@dataclass(frozen=True, slots=True)
class GraphMutation:
    """One structured mutation event emitted by a :class:`SocialGraph` mutator.

    ``kind`` names the mutator (``"add_node"``, ``"add_edge"``,
    ``"remove_edge"``, ``"remove_node"``, ``"set_weight"`` or ``"opaque"``).

    ``touched`` lists every node whose *incoming-weight row* ``{u: w(u, v)}``
    changed — i.e. the nodes at which a reverse-sampling walk would observe a
    different in-neighbour distribution.  ``None`` means the extent of the
    change is unknown (an opaque event); consumers must fall back to a full
    invalidation.  ``add_node`` touches no row (a fresh node has an empty
    row nothing could have sampled from), so its ``touched`` is ``()``.
    """

    kind: str
    touched: tuple[NodeId, ...] | None


class SocialGraph:
    """Undirected friendship graph with ordered-pair familiarity weights.

    Parameters
    ----------
    nodes:
        Optional iterable of initial (isolated) nodes.
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, w_uv, w_vu)`` tuples.
        Two-tuples add the edge with both directional weights unset (0.0);
        a weight scheme from :mod:`repro.graph.weights` can fill them in.

    Notes
    -----
    The graph is a plain mutable container; algorithms never mutate graphs
    they receive unless explicitly documented.
    """

    __slots__ = (
        "_in_weights",
        "_num_edges",
        "name",
        "_version",
        "_compiled_cache",
        "_mutation_log",
    )

    def __init__(
        self,
        nodes: Iterable[NodeId] | None = None,
        edges: Iterable[tuple] | None = None,
        name: str = "",
    ) -> None:
        # _in_weights[v][u] == w(u, v): v's familiarity with friend u.
        self._in_weights: dict[NodeId, dict[NodeId, float]] = {}
        self._num_edges: int = 0
        self.name = name
        # Mutation counter plus a slot for the frozen CSR snapshot; both are
        # managed by repro.graph.compiled.compile_graph so that compiled
        # snapshots are rebuilt only after the graph actually changed.
        self._version: int = 0
        self._compiled_cache = None
        # Bounded structured mutation log: event i describes the transition
        # from version (floor + i) to (floor + i + 1) where
        # floor == _version - len(_mutation_log).  Delta-scoped consumers
        # (the sample pool) slice it with mutations_since().
        self._mutation_log: deque[GraphMutation] = deque(maxlen=MUTATION_LOG_LIMIT)
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for edge in edges:
                if len(edge) == 2:
                    self.add_edge(edge[0], edge[1])
                elif len(edge) == 4:
                    self.add_edge(edge[0], edge[1], weight_uv=edge[2], weight_vu=edge[3])
                else:
                    raise ValueError(
                        "edges must be (u, v) or (u, v, w_uv, w_vu) tuples, "
                        f"got a tuple of length {len(edge)}"
                    )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges: Iterable[EdgeTuple], name: str = "") -> "SocialGraph":
        """Build a graph from an iterable of unweighted ``(u, v)`` pairs."""
        graph = cls(name=name)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_networkx(cls, nx_graph, name: str = "") -> "SocialGraph":
        """Build a :class:`SocialGraph` from an undirected networkx graph.

        Edge attribute ``weight_uv``/``weight_vu`` (if present) seed the two
        directional familiarity weights, otherwise both default to 0.
        """
        graph = cls(name=name or str(getattr(nx_graph, "name", "")))
        for node in nx_graph.nodes():
            graph.add_node(node)
        for u, v, data in nx_graph.edges(data=True):
            if u == v:
                continue
            graph.add_edge(
                u,
                v,
                weight_uv=float(data.get("weight_uv", 0.0)),
                weight_vu=float(data.get("weight_vu", 0.0)),
            )
        return graph

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with directional weight attributes."""
        import networkx as nx

        nx_graph = nx.Graph(name=self.name)
        nx_graph.add_nodes_from(self.nodes())
        for u, v in self.edges():
            nx_graph.add_edge(u, v, weight_uv=self.weight(u, v), weight_vu=self.weight(v, u))
        return nx_graph

    def copy(self) -> "SocialGraph":
        """Return a deep copy of the graph (nodes, edges and weights)."""
        clone = SocialGraph(name=self.name)
        clone._in_weights = {v: dict(inw) for v, inw in self._in_weights.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _record(self, kind: str, touched: tuple[NodeId, ...] | None) -> None:
        """Log one mutation event, bump the version and drop the snapshot.

        Exactly one event is appended per version bump, so the log can be
        sliced by version offset in :meth:`mutations_since`.
        """
        self._mutation_log.append(GraphMutation(kind, touched))
        self._version += 1
        self._compiled_cache = None

    def _invalidate(self) -> None:
        """Record an *opaque* mutation: bump the version and drop the snapshot.

        Kept for callers outside the structured mutators; the logged event
        carries ``touched=None``, which forces delta-scoped consumers into a
        full invalidation (always sound, never surprising).
        """
        self._record("opaque", None)

    @property
    def version(self) -> int:
        """Monotonic mutation counter (compiled snapshots key off it)."""
        return self._version

    def mutations_since(self, version: int) -> tuple[GraphMutation, ...] | None:
        """Return the events that took the graph from ``version`` to now.

        Returns ``()`` when ``version == self.version`` (nothing changed),
        the ordered event tuple when the bounded log still covers the span,
        and ``None`` when ``version`` predates the log's retention window
        (or is from the future / another graph) — callers must then treat
        the delta as unknown.
        """
        if version == self._version:
            return ()
        floor = self._version - len(self._mutation_log)
        if version < floor or version > self._version:
            return None
        start = version - floor
        return tuple(list(self._mutation_log)[start:])

    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (no-op if it already exists)."""
        if node not in self._in_weights:
            self._in_weights[node] = {}
            self._record("add_node", ())

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        weight_uv: float = 0.0,
        weight_vu: float = 0.0,
    ) -> None:
        """Add the undirected friendship ``(u, v)``.

        ``weight_uv`` is ``w(u, v)`` (v's familiarity with u) and
        ``weight_vu`` is ``w(v, u)``.  Adding an existing edge overwrites
        its weights; re-adding it with *identical* weights is a no-op (no
        version bump, no event), so idempotent writes never cold-start
        downstream caches.  Self-loops are rejected: a user cannot friend
        itself.
        """
        if u == v:
            raise WeightError(f"self-loop on node {u!r} is not allowed")
        weight_uv = float(weight_uv)
        weight_vu = float(weight_vu)
        self._validate_weight_value(weight_uv, u, v)
        self._validate_weight_value(weight_vu, v, u)
        self.add_node(u)
        self.add_node(v)
        is_new = u not in self._in_weights[v]
        if (
            not is_new
            and self._in_weights[v][u] == weight_uv
            and self._in_weights[u][v] == weight_vu
        ):
            return
        self._in_weights[v][u] = weight_uv
        self._in_weights[u][v] = weight_vu
        if is_new:
            self._num_edges += 1
        self._record("add_edge", (u, v))

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the friendship ``(u, v)``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._in_weights[v][u]
        del self._in_weights[u][v]
        self._num_edges -= 1
        self._record("remove_edge", (u, v))

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all its incident friendships.

        Logged as a *single* mutation event (one version bump) touching the
        node and all its former neighbours, not one event per incident edge.
        """
        if node not in self._in_weights:
            raise NodeNotFoundError(node)
        neighbors = tuple(self._in_weights[node])
        for neighbor in neighbors:
            del self._in_weights[neighbor][node]
        self._num_edges -= len(neighbors)
        del self._in_weights[node]
        self._record("remove_node", (node, *neighbors))

    def set_weight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Set ``w(u, v)`` (v's familiarity with friend u).

        Writing the value already stored is a no-op: no version bump, no
        mutation event, so redundant weight refreshes keep caches warm.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        weight = float(weight)
        self._validate_weight_value(weight, u, v)
        if self._in_weights[v][u] == weight:
            return
        self._in_weights[v][u] = weight
        self._record("set_weight", (v,))

    @staticmethod
    def _validate_weight_value(weight: float, u: NodeId, v: NodeId) -> None:
        weight = float(weight)
        if weight < 0.0 or weight > 1.0:
            raise WeightError(f"w({u!r}, {v!r}) = {weight} is outside [0, 1]")

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #

    def __contains__(self, node: NodeId) -> bool:
        return node in self._in_weights

    def __len__(self) -> int:
        return len(self._in_weights)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._in_weights)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        label = f" {self.name!r}" if self.name else ""
        return f"<SocialGraph{label} n={self.num_nodes} m={self.num_edges}>"

    @property
    def num_nodes(self) -> int:
        """The number of users ``n``."""
        return len(self._in_weights)

    @property
    def num_edges(self) -> int:
        """The number of friendships ``m``."""
        return self._num_edges

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is a user of the network."""
        return node in self._in_weights

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether ``u`` and ``v`` are currently friends."""
        inner = self._in_weights.get(v)
        return inner is not None and u in inner

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over all users."""
        return iter(self._in_weights)

    def node_list(self) -> list[NodeId]:
        """All users as a list (insertion order)."""
        return list(self._in_weights)

    def edges(self) -> Iterator[EdgeTuple]:
        """Iterate over each friendship exactly once (arbitrary orientation)."""
        seen: set[NodeId] = set()
        for v, inner in self._in_weights.items():
            for u in inner:
                if u not in seen:
                    yield (v, u)
            seen.add(v)

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over the current friends ``N_v`` of ``node``."""
        try:
            return iter(self._in_weights[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbor_set(self, node: NodeId) -> frozenset:
        """The current friends ``N_v`` of ``node`` as a frozenset."""
        return frozenset(self.neighbors(node))

    def degree(self, node: NodeId) -> int:
        """The number of current friends of ``node``."""
        try:
            return len(self._in_weights[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Return ``w(u, v)``: v's familiarity with u.

        Following the paper's convention, the weight of a non-friend pair is
        0.  Referencing an unknown node raises :class:`NodeNotFoundError`.
        """
        if v not in self._in_weights:
            raise NodeNotFoundError(v)
        if u not in self._in_weights:
            raise NodeNotFoundError(u)
        return self._in_weights[v].get(u, 0.0)

    def in_weights(self, node: NodeId) -> Mapping[NodeId, float]:
        """Read-only view of ``{u: w(u, node)}`` over node's friends.

        The returned mapping is a live :class:`types.MappingProxyType` view
        (not a copy): it reflects later weight updates and rejects mutation.
        Hot loops can therefore call this per step without paying an
        allocation; callers that need a detached snapshot must ``dict()`` it.
        """
        try:
            return MappingProxyType(self._in_weights[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def total_in_weight(self, node: NodeId) -> float:
        """Return ``sum_u w(u, node)``, which the model requires to be <= 1."""
        try:
            return sum(self._in_weights[node].values())
        except KeyError:
            raise NodeNotFoundError(node) from None

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def subgraph(self, nodes: Iterable[NodeId]) -> "SocialGraph":
        """Return the induced subgraph on ``nodes`` (weights preserved)."""
        keep = set(nodes)
        missing = [node for node in keep if node not in self._in_weights]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = SocialGraph(name=self.name)
        for node in keep:
            sub.add_node(node)
        for v in keep:
            for u, w_uv in self._in_weights[v].items():
                if u in keep and not sub.has_edge(u, v):
                    sub.add_edge(u, v, weight_uv=w_uv, weight_vu=self._in_weights[u][v])
        return sub

    def without_nodes(self, nodes: Iterable[NodeId]) -> "SocialGraph":
        """Return a copy of the graph with ``nodes`` (and incident edges) removed."""
        drop = set(nodes)
        return self.subgraph(node for node in self.nodes() if node not in drop)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self, require_positive_weights: bool = False) -> None:
        """Check the structural and weight invariants of the friending model.

        Raises :class:`~repro.exceptions.WeightError` if any node's incoming
        weights sum to more than 1 (beyond numerical tolerance), or -- when
        ``require_positive_weights`` is set -- if any friendship carries a
        zero directional weight (the paper requires ``w(u, v) ∈ (0, 1]`` for
        friends).
        """
        for v, inner in self._in_weights.items():
            total = sum(inner.values())
            if total > 1.0 + WEIGHT_SUM_TOLERANCE:
                raise WeightError(
                    f"incoming weights of node {v!r} sum to {total:.6f} > 1; "
                    "apply a weight scheme from repro.graph.weights to normalize"
                )
            if require_positive_weights:
                for u, w_uv in inner.items():
                    if w_uv <= 0.0:
                        raise WeightError(
                            f"friends ({u!r}, {v!r}) have non-positive weight "
                            f"w({u!r}, {v!r}) = {w_uv}"
                        )

    def is_normalized(self) -> bool:
        """Whether every node's incoming weights sum to at most 1."""
        try:
            self.validate()
        except WeightError:
            return False
        return True
