"""Reading and writing friendship graphs.

The paper's experiments use public SNAP edge lists (Wiki-Vote, cit-HepTh,
cit-HepPh, com-Youtube).  SNAP files are plain whitespace-separated edge
lists with ``#`` comment lines; :func:`read_snap_graph` parses that format
(treating every edge as an undirected friendship and dropping self-loops
and duplicates), so the real datasets can be dropped into the experiment
harness when they are available.  A JSON-friendly dict form preserves the
directional familiarity weights for round-tripping fully weighted graphs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.exceptions import GraphFormatError
from repro.graph.social_graph import SocialGraph

__all__ = [
    "read_edge_list",
    "read_snap_graph",
    "write_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph_json",
    "load_graph_json",
]

PathLike = Union[str, Path]


def _parse_node(token: str) -> object:
    """Parse a node token: integers stay integers, everything else is a string."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(
    lines: Iterable[str],
    comment_prefix: str = "#",
    name: str = "",
) -> SocialGraph:
    """Parse an in-memory iterable of edge-list lines into a graph.

    Each non-comment, non-empty line must contain at least two whitespace
    separated tokens ``u v``; any further tokens are ignored (SNAP files
    sometimes carry timestamps).  Self-loops are skipped, duplicate edges
    collapse to one friendship.
    """
    graph = SocialGraph(name=name)
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment_prefix):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {line_number}: expected 'u v', got {raw!r}")
        u, v = _parse_node(parts[0]), _parse_node(parts[1])
        if u == v:
            continue
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def read_snap_graph(path: PathLike, name: str = "") -> SocialGraph:
    """Read a SNAP-style edge-list file into an (unweighted) SocialGraph."""
    file_path = Path(path)
    with file_path.open("r", encoding="utf-8") as handle:
        return read_edge_list(handle, name=name or file_path.stem)


def write_edge_list(graph: SocialGraph, path: PathLike, header: str | None = None) -> None:
    """Write the friendships of ``graph`` as a SNAP-style edge list.

    Only the topology is written; directional weights are not representable
    in the SNAP format (use :func:`save_graph_json` for that).
    """
    file_path = Path(path)
    with file_path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")


def graph_to_dict(graph: SocialGraph) -> dict:
    """Convert a graph (including weights) to a JSON-serializable dict."""
    return {
        "name": graph.name,
        "nodes": list(graph.nodes()),
        "edges": [
            {"u": u, "v": v, "w_uv": graph.weight(u, v), "w_vu": graph.weight(v, u)}
            for u, v in graph.edges()
        ],
    }


def graph_from_dict(payload: dict) -> SocialGraph:
    """Reconstruct a graph from the dict produced by :func:`graph_to_dict`."""
    try:
        graph = SocialGraph(nodes=payload["nodes"], name=payload.get("name", ""))
        for edge in payload["edges"]:
            graph.add_edge(edge["u"], edge["v"], weight_uv=edge["w_uv"], weight_vu=edge["w_vu"])
    except (KeyError, TypeError) as exc:
        raise GraphFormatError(f"malformed graph payload: {exc}") from exc
    return graph


def save_graph_json(graph: SocialGraph, path: PathLike) -> None:
    """Serialize a weighted graph to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph)), encoding="utf-8")


def load_graph_json(path: PathLike) -> SocialGraph:
    """Load a weighted graph from a JSON file written by :func:`save_graph_json`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"invalid JSON graph file {path!r}: {exc}") from exc
    return graph_from_dict(payload)
