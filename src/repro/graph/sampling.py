"""Down-sampling large friendship graphs to laptop scale.

The paper's evaluation uses SNAP graphs with up to 1.1M users.  Running the
full protocol on such graphs is a server-scale job, so a common workflow --
and the one this reproduction uses for its synthetic stand-ins -- is to
down-sample the graph to a target size first.  This module provides the
three standard samplers:

* ``random_node_sample`` -- induced subgraph on a uniform node sample; cheap
  but breaks connectivity and flattens the degree distribution.
* ``bfs_sample`` ("snowball") -- breadth-first ball around a seed user; keeps
  local structure intact, biased toward the seed's community.
* ``forest_fire_sample`` -- the Leskovec–Faloutsos sampler: recursively
  "burn" a random fraction of each visited user's friends; the standard
  choice for preserving degree shape and community structure at small scale.

All samplers return induced subgraphs of the input (weights are *not*
copied: re-apply a weight scheme, because degree-normalized weights change
when degrees change).
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import GraphError
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require, require_in_closed_unit_interval, require_positive_int

__all__ = ["random_node_sample", "bfs_sample", "forest_fire_sample"]


def _induced_unweighted_subgraph(graph: SocialGraph, nodes: set) -> SocialGraph:
    """Induced subgraph with weights reset to zero (caller re-applies a scheme)."""
    sample = SocialGraph(name=f"{graph.name}-sample" if graph.name else "sample")
    for node in nodes:
        sample.add_node(node)
    for node in nodes:
        for neighbor in graph.neighbors(node):
            if neighbor in nodes and not sample.has_edge(node, neighbor):
                sample.add_edge(node, neighbor)
    return sample


def _check_target(graph: SocialGraph, target_nodes: int) -> None:
    require_positive_int(target_nodes, "target_nodes")
    if target_nodes > graph.num_nodes:
        raise GraphError(
            f"cannot sample {target_nodes} nodes from a graph with only {graph.num_nodes}"
        )


def random_node_sample(
    graph: SocialGraph, target_nodes: int, rng: RandomSource = None
) -> SocialGraph:
    """Induced subgraph on ``target_nodes`` users chosen uniformly at random."""
    _check_target(graph, target_nodes)
    generator = ensure_rng(rng)
    chosen = set(generator.sample(graph.node_list(), target_nodes))
    return _induced_unweighted_subgraph(graph, chosen)


def bfs_sample(
    graph: SocialGraph,
    target_nodes: int,
    seed_node: NodeId | None = None,
    rng: RandomSource = None,
) -> SocialGraph:
    """Snowball sample: the BFS ball around ``seed_node`` truncated at the target size.

    When no seed is given a uniformly random user with at least one friend
    is used.  If the seed's component is smaller than the target, additional
    BFS runs are started from random unvisited users until the target size
    is reached.
    """
    _check_target(graph, target_nodes)
    generator = ensure_rng(rng)
    if seed_node is not None and not graph.has_node(seed_node):
        raise GraphError(f"seed node {seed_node!r} is not in the graph")

    nodes = graph.node_list()
    visited: set = set()
    order: list = []

    def run_bfs(start: NodeId) -> None:
        queue: deque[NodeId] = deque([start])
        visited.add(start)
        while queue and len(order) < target_nodes:
            current = queue.popleft()
            order.append(current)
            for neighbor in graph.neighbors(current):
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)

    first = seed_node
    if first is None:
        candidates = [node for node in nodes if graph.degree(node) > 0] or nodes
        first = generator.choice(candidates)
    run_bfs(first)
    while len(order) < target_nodes:
        remaining = [node for node in nodes if node not in visited]
        run_bfs(generator.choice(remaining))
    return _induced_unweighted_subgraph(graph, set(order[:target_nodes]))


def forest_fire_sample(
    graph: SocialGraph,
    target_nodes: int,
    forward_probability: float = 0.7,
    rng: RandomSource = None,
) -> SocialGraph:
    """Forest-fire sample (Leskovec & Faloutsos, KDD'06).

    Starting from a random ambassador, each burned user recursively burns a
    geometrically distributed number of its not-yet-burned friends (mean
    ``p/(1-p)`` with ``p = forward_probability``).  Burning restarts from a
    fresh random user whenever the fire dies out before reaching the target
    size.
    """
    _check_target(graph, target_nodes)
    require_in_closed_unit_interval(forward_probability, "forward_probability")
    require(forward_probability < 1.0, "forward_probability must be < 1")
    generator = ensure_rng(rng)
    nodes = graph.node_list()
    burned: set = set()

    def burn_from(start: NodeId) -> None:
        queue: deque[NodeId] = deque([start])
        burned.add(start)
        while queue and len(burned) < target_nodes:
            current = queue.popleft()
            neighbors = [n for n in graph.neighbors(current) if n not in burned]
            if not neighbors:
                continue
            # Geometric number of neighbours to burn, capped by availability.
            count = 0
            success = 1.0 - forward_probability
            while generator.random() > success and count < len(neighbors):
                count += 1
            for neighbor in generator.sample(neighbors, count):
                if len(burned) >= target_nodes:
                    break
                burned.add(neighbor)
                queue.append(neighbor)

    while len(burned) < target_nodes:
        remaining = [node for node in nodes if node not in burned]
        burn_from(generator.choice(remaining))
    return _induced_unweighted_subgraph(graph, burned)
