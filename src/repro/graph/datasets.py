"""Synthetic stand-ins for the paper's SNAP datasets (Table I).

The paper evaluates on four public SNAP graphs:

=========  =========  =========  ============
dataset    nodes      edges      avg. degree
=========  =========  =========  ============
Wiki       7 K        103 K      14.7
HepTh      28 K       353 K      12.6
HepPh      35 K       421 K      12.0
Youtube    1.1 M      6.0 M      5.54
=========  =========  =========  ============

This environment has no network access, so the raw SNAP files cannot be
downloaded.  The experiment harness therefore ships *synthetic stand-ins*:
heavy-tailed random graphs whose average degree matches the corresponding
SNAP graph, generated at a configurable fraction of the original node count
so the full benchmark suite stays laptop-friendly.  The harness accepts any
:class:`~repro.graph.social_graph.SocialGraph`, so the real edge lists can
be substituted via :func:`repro.graph.io.read_snap_graph` when available.

Every stand-in is deterministic given a seed, and is returned with the
paper's ``w(u, v) = 1/|N_v|`` weight convention already applied (pass
``weighted=False`` to get the bare topology).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.graph.generators import (
    barabasi_albert_graph,
    power_law_configuration_graph,
)
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive

__all__ = ["DatasetSpec", "DATASET_NAMES", "dataset_spec", "load_dataset"]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Description of one dataset stand-in.

    Attributes
    ----------
    name:
        Dataset key (``"wiki"``, ``"hepth"``, ``"hepph"``, ``"youtube"``).
    paper_nodes, paper_edges, paper_avg_degree:
        The statistics reported in Table I for the original SNAP graph.
    default_scale:
        Fraction of the original node count used when the caller does not
        request an explicit scale; chosen so every stand-in has a similar,
        laptop-friendly size.
    generator:
        Short description of the synthetic family used for the stand-in.
    description:
        Human-readable provenance of the original dataset.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    paper_avg_degree: float
    default_scale: float
    generator: str
    description: str


_SPECS: dict[str, DatasetSpec] = {
    "wiki": DatasetSpec(
        name="wiki",
        paper_nodes=7_000,
        paper_edges=103_000,
        paper_avg_degree=14.7,
        default_scale=0.2,
        generator="barabasi-albert(m=7)",
        description="Wikipedia who-votes-on-whom network (SNAP Wiki-Vote)",
    ),
    "hepth": DatasetSpec(
        name="hepth",
        paper_nodes=28_000,
        paper_edges=353_000,
        paper_avg_degree=12.6,
        default_scale=0.05,
        generator="barabasi-albert(m=6)",
        description="Arxiv High Energy Physics Theory citation network (SNAP cit-HepTh)",
    ),
    "hepph": DatasetSpec(
        name="hepph",
        paper_nodes=35_000,
        paper_edges=421_000,
        paper_avg_degree=12.0,
        default_scale=0.04,
        generator="power-law-configuration(exponent=2.1, min_degree=5)",
        description="Arxiv High Energy Physics Phenomenology citation network (SNAP cit-HepPh)",
    ),
    "youtube": DatasetSpec(
        name="youtube",
        paper_nodes=1_100_000,
        paper_edges=6_000_000,
        paper_avg_degree=5.54,
        default_scale=0.002,
        generator="power-law-configuration(exponent=2.4, min_degree=2)",
        description="Youtube social network (SNAP com-Youtube)",
    ),
}

#: Dataset keys in the order Table I lists them.
DATASET_NAMES: tuple[str, ...] = ("wiki", "hepth", "hepph", "youtube")


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for a dataset key (case-insensitive)."""
    key = name.strip().lower()
    if key not in _SPECS:
        raise ExperimentError(
            f"unknown dataset {name!r}; available datasets: {', '.join(DATASET_NAMES)}"
        )
    return _SPECS[key]


def _build_topology(spec: DatasetSpec, num_nodes: int, rng: RandomSource) -> SocialGraph:
    """Instantiate the synthetic family selected for a dataset stand-in."""
    generator = ensure_rng(rng)
    if spec.name == "wiki":
        graph = barabasi_albert_graph(num_nodes, 7, rng=generator, name="wiki")
    elif spec.name == "hepth":
        graph = barabasi_albert_graph(num_nodes, 6, rng=generator, name="hepth")
    elif spec.name == "hepph":
        graph = power_law_configuration_graph(
            num_nodes, exponent=2.1, min_degree=5, rng=generator, name="hepph"
        )
    else:  # youtube
        graph = power_law_configuration_graph(
            num_nodes, exponent=2.4, min_degree=2, rng=generator, name="youtube"
        )
    return graph


def load_dataset(
    name: str,
    scale: float | None = None,
    rng: RandomSource = None,
    weighted: bool = True,
) -> SocialGraph:
    """Build the synthetic stand-in for a Table-I dataset.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    scale:
        Fraction of the original node count to generate (``1.0`` recreates
        the full-size stand-in).  Defaults to the spec's ``default_scale``.
    rng:
        Seed or generator controlling the synthetic topology.
    weighted:
        Apply the paper's ``w(u, v) = 1/|N_v|`` weight convention (default).

    Returns
    -------
    SocialGraph
        The stand-in graph, named after the dataset.
    """
    spec = dataset_spec(name)
    effective_scale = spec.default_scale if scale is None else require_positive(scale, "scale")
    num_nodes = max(16, int(round(spec.paper_nodes * effective_scale)))
    graph = _build_topology(spec, num_nodes, rng)
    if weighted:
        apply_degree_normalized_weights(graph)
    return graph
