"""Synthetic friendship-graph generators.

These generators are implemented from scratch (no networkx dependency) and
return unweighted :class:`~repro.graph.social_graph.SocialGraph` instances;
apply a scheme from :mod:`repro.graph.weights` before running the friending
model on them.  They cover the families needed to build laptop-scale
stand-ins for the paper's SNAP datasets (see :mod:`repro.graph.datasets`)
plus a handful of tiny deterministic topologies used heavily by the tests.

All generators label nodes ``0 .. n-1`` and accept a ``rng`` argument (seed,
generator or ``None``) for reproducibility.
"""

from __future__ import annotations

import math

from repro.graph.social_graph import SocialGraph
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require, require_in_closed_unit_interval, require_positive_int

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "power_law_configuration_graph",
    "forest_fire_graph",
    "planted_partition_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "grid_graph",
]


# --------------------------------------------------------------------------- #
# Random-graph families
# --------------------------------------------------------------------------- #


def erdos_renyi_graph(n: int, p: float, rng: RandomSource = None, name: str = "erdos-renyi") -> SocialGraph:
    """Generate a G(n, p) Erdős–Rényi graph.

    Uses geometric edge skipping so the expected running time is
    O(n + m) rather than O(n^2), which matters for the sparse graphs the
    experiments use.
    """
    require_positive_int(n, "n")
    require_in_closed_unit_interval(p, "p")
    generator = ensure_rng(rng)
    graph = SocialGraph(nodes=range(n), name=name)
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        return complete_graph(n, name=name)
    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        draw = generator.random()
        w = w + 1 + int(math.log(1.0 - draw) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def barabasi_albert_graph(n: int, m: int, rng: RandomSource = None, name: str = "barabasi-albert") -> SocialGraph:
    """Generate a Barabási–Albert preferential-attachment graph.

    Each new node attaches to ``m`` existing nodes chosen proportionally to
    their degree, yielding the heavy-tailed degree distribution typical of
    social networks.  Requires ``1 <= m < n``.
    """
    require_positive_int(n, "n")
    require_positive_int(m, "m")
    require(m < n, f"m ({m}) must be smaller than n ({n})")
    generator = ensure_rng(rng)
    graph = SocialGraph(nodes=range(n), name=name)
    # repeated_nodes holds one copy of each endpoint per edge, so sampling
    # uniformly from it is sampling proportionally to degree.
    repeated_nodes: list[int] = []
    # Seed with a star over the first m+1 nodes so every new node can find
    # m distinct targets from the start.
    for target in range(m):
        graph.add_edge(m, target)
        repeated_nodes.extend((m, target))
    for source in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(generator.choice(repeated_nodes))
        for target in targets:
            graph.add_edge(source, target)
            repeated_nodes.extend((source, target))
    return graph


def watts_strogatz_graph(
    n: int, k: int, beta: float, rng: RandomSource = None, name: str = "watts-strogatz"
) -> SocialGraph:
    """Generate a Watts–Strogatz small-world graph.

    Starts from a ring lattice where each node connects to its ``k``
    nearest neighbours (``k`` must be even and smaller than ``n``) and
    rewires each edge with probability ``beta``.
    """
    require_positive_int(n, "n")
    require_positive_int(k, "k")
    require(k % 2 == 0, "k must be even")
    require(k < n, f"k ({k}) must be smaller than n ({n})")
    require_in_closed_unit_interval(beta, "beta")
    generator = ensure_rng(rng)
    graph = SocialGraph(nodes=range(n), name=name)
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(node, (node + offset) % n)
    if beta == 0.0:
        return graph
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            neighbor = (node + offset) % n
            if generator.random() < beta and graph.has_edge(node, neighbor):
                candidates = [c for c in range(n) if c != node and not graph.has_edge(node, c)]
                if not candidates:
                    continue
                graph.remove_edge(node, neighbor)
                graph.add_edge(node, generator.choice(candidates))
    return graph


def power_law_configuration_graph(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: int | None = None,
    rng: RandomSource = None,
    name: str = "power-law-cm",
) -> SocialGraph:
    """Generate a simple graph with an (approximate) power-law degree sequence.

    Degrees are drawn from a discrete power law with the given exponent and
    clamped to ``[min_degree, max_degree]``; stubs are then matched as in
    the configuration model, discarding self-loops and parallel edges (so
    realized degrees can be slightly below their targets, as is standard
    for the "erased" configuration model).
    """
    require_positive_int(n, "n")
    require(exponent > 1.0, "exponent must be > 1")
    require_positive_int(min_degree, "min_degree")
    if max_degree is None:
        max_degree = max(min_degree + 1, int(math.sqrt(n) * 2))
    require(max_degree >= min_degree, "max_degree must be >= min_degree")
    generator = ensure_rng(rng)

    # Inverse-CDF sampling from a truncated discrete power law.
    weights = [k ** (-exponent) for k in range(min_degree, max_degree + 1)]
    total = sum(weights)
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)

    def sample_degree() -> int:
        draw = generator.random()
        for index, bound in enumerate(cumulative):
            if draw <= bound:
                return min_degree + index
        return max_degree

    degrees = [sample_degree() for _ in range(n)]
    if sum(degrees) % 2 == 1:
        degrees[generator.randrange(n)] += 1

    stubs: list[int] = []
    for node, degree in enumerate(degrees):
        stubs.extend([node] * degree)
    generator.shuffle(stubs)

    graph = SocialGraph(nodes=range(n), name=name)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def forest_fire_graph(
    n: int,
    forward_probability: float = 0.35,
    rng: RandomSource = None,
    name: str = "forest-fire",
) -> SocialGraph:
    """Generate an (undirected) forest-fire graph in the style of Leskovec et al.

    Each arriving node picks a random ambassador, links to it, and then
    "burns" through the ambassador's neighbourhood: from each burned node it
    links to a geometrically distributed number of that node's neighbours.
    Forest-fire graphs exhibit the heavy-tailed degrees and community-like
    local density seen in citation networks such as HepTh/HepPh.
    """
    require_positive_int(n, "n")
    require_in_closed_unit_interval(forward_probability, "forward_probability")
    require(forward_probability < 1.0, "forward_probability must be < 1")
    generator = ensure_rng(rng)
    graph = SocialGraph(nodes=range(n), name=name)
    if n == 1:
        return graph
    graph.add_edge(0, 1)
    mean_burn = forward_probability / (1.0 - forward_probability)
    for source in range(2, n):
        ambassador = generator.randrange(source)
        visited = {source}
        frontier = [ambassador]
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            graph.add_edge(source, current)
            neighbors = [x for x in graph.neighbors(current) if x not in visited and x != source]
            if not neighbors:
                continue
            burn_count = _geometric(generator, mean_burn)
            burn_count = min(burn_count, len(neighbors))
            frontier.extend(generator.sample(neighbors, burn_count))
    return graph


def _geometric(generator, mean: float) -> int:
    """Sample the number of neighbours to burn (geometric with the given mean)."""
    if mean <= 0.0:
        return 0
    success = 1.0 / (1.0 + mean)
    count = 0
    while generator.random() > success:
        count += 1
        if count > 10_000:  # safety valve; unreachable for sane parameters
            break
    return count


def planted_partition_graph(
    communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    rng: RandomSource = None,
    name: str = "planted-partition",
) -> SocialGraph:
    """Generate a planted-partition (stochastic block) graph.

    Nodes are split into ``communities`` groups of ``community_size``;
    within-group pairs connect with probability ``p_in`` and across-group
    pairs with probability ``p_out``.  Used by the community-bridging
    example, where the initiator and target sit in different communities.
    """
    require_positive_int(communities, "communities")
    require_positive_int(community_size, "community_size")
    require_in_closed_unit_interval(p_in, "p_in")
    require_in_closed_unit_interval(p_out, "p_out")
    generator = ensure_rng(rng)
    n = communities * community_size
    graph = SocialGraph(nodes=range(n), name=name)
    group = [node // community_size for node in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            probability = p_in if group[u] == group[v] else p_out
            if probability > 0.0 and generator.random() < probability:
                graph.add_edge(u, v)
    return graph


# --------------------------------------------------------------------------- #
# Deterministic topologies (mostly for tests and worked examples)
# --------------------------------------------------------------------------- #


def complete_graph(n: int, name: str = "complete") -> SocialGraph:
    """Generate the complete graph K_n."""
    require_positive_int(n, "n")
    graph = SocialGraph(nodes=range(n), name=name)
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def path_graph(n: int, name: str = "path") -> SocialGraph:
    """Generate the path 0 - 1 - ... - (n-1)."""
    require_positive_int(n, "n")
    graph = SocialGraph(nodes=range(n), name=name)
    for node in range(n - 1):
        graph.add_edge(node, node + 1)
    return graph


def cycle_graph(n: int, name: str = "cycle") -> SocialGraph:
    """Generate the cycle on ``n >= 3`` nodes."""
    require_positive_int(n, "n")
    require(n >= 3, "a cycle needs at least 3 nodes")
    graph = path_graph(n, name=name)
    graph.add_edge(n - 1, 0)
    return graph


def star_graph(leaves: int, name: str = "star") -> SocialGraph:
    """Generate a star with centre 0 and ``leaves`` leaf nodes."""
    require_positive_int(leaves, "leaves")
    graph = SocialGraph(nodes=range(leaves + 1), name=name)
    for leaf in range(1, leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def grid_graph(rows: int, cols: int, name: str = "grid") -> SocialGraph:
    """Generate a rows x cols grid; node ``(r, c)`` is labelled ``r*cols + c``."""
    require_positive_int(rows, "rows")
    require_positive_int(cols, "cols")
    graph = SocialGraph(nodes=range(rows * cols), name=name)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph
