"""Graph traversal primitives: BFS, shortest paths, components, blocks.

These routines underpin two pieces of the reproduction:

* the Shortest-Path (SP) baseline, which repeatedly extracts vertex-disjoint
  shortest paths between the initiator and the target, and
* the ``Vmax`` computation of Lemma 7, which needs the set of nodes lying on
  *some simple path* between the initiator's friend circle and the target.
  That question is answered exactly with a biconnected-component (block-cut
  tree) decomposition: a node lies on a simple x-y path iff its block lies
  on the x-y path of the block-cut tree.

Everything is implemented iteratively (no recursion) so the routines work on
graphs with hundreds of thousands of nodes without hitting Python's
recursion limit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "shortest_path",
    "vertex_disjoint_shortest_paths",
    "connected_component",
    "connected_components",
    "is_connected",
    "biconnected_components",
    "articulation_points",
    "BlockCutTree",
    "block_cut_tree",
    "nodes_on_simple_paths",
]


# --------------------------------------------------------------------------- #
# BFS / shortest paths
# --------------------------------------------------------------------------- #


def _check_node(graph: SocialGraph, node: NodeId) -> None:
    if not graph.has_node(node):
        raise NodeNotFoundError(node)


def bfs_distances(
    graph: SocialGraph,
    sources: NodeId | Iterable[NodeId],
    blocked: frozenset | set | None = None,
) -> dict:
    """Unweighted BFS distances from one or more source nodes.

    ``blocked`` nodes are never traversed (and never appear in the result)
    unless they are themselves sources.  Multi-source BFS is used by the
    SP baseline and by the pair-selection heuristics.
    """
    if isinstance(sources, (str, bytes)) or not isinstance(sources, Iterable):
        sources = [sources]
    source_list = list(sources)
    for source in source_list:
        _check_node(graph, source)
    barrier = set(blocked or ())
    distances: dict[NodeId, int] = {}
    queue: deque[NodeId] = deque()
    for source in source_list:
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    while queue:
        current = queue.popleft()
        next_distance = distances[current] + 1
        for neighbor in graph.neighbors(current):
            if neighbor in distances or neighbor in barrier:
                continue
            distances[neighbor] = next_distance
            queue.append(neighbor)
    return distances


def bfs_tree(
    graph: SocialGraph,
    source: NodeId,
    blocked: frozenset | set | None = None,
) -> dict:
    """BFS predecessor map ``{node: parent}`` from ``source`` (source maps to None)."""
    _check_node(graph, source)
    barrier = set(blocked or ())
    parents: dict[NodeId, NodeId | None] = {source: None}
    queue: deque[NodeId] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor in parents or neighbor in barrier:
                continue
            parents[neighbor] = current
            queue.append(neighbor)
    return parents


def shortest_path(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    blocked: frozenset | set | None = None,
) -> list | None:
    """Return one unweighted shortest path ``[source, ..., target]`` or ``None``.

    ``blocked`` nodes cannot appear as internal nodes of the path (the
    source and target are always allowed).
    """
    _check_node(graph, source)
    _check_node(graph, target)
    if source == target:
        return [source]
    barrier = set(blocked or ())
    barrier.discard(source)
    barrier.discard(target)
    parents: dict[NodeId, NodeId | None] = {source: None}
    queue: deque[NodeId] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor in parents or neighbor in barrier:
                continue
            parents[neighbor] = current
            if neighbor == target:
                path = [target]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def _shortest_path_avoiding(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    blocked: set,
    skip_direct_edge: bool,
) -> list | None:
    """BFS shortest path that avoids blocked internal nodes and, optionally,
    the direct source-target edge (used when that edge was already taken)."""
    parents: dict[NodeId, NodeId | None] = {source: None}
    queue: deque[NodeId] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor in parents:
                continue
            if skip_direct_edge and current == source and neighbor == target:
                continue
            if neighbor in blocked and neighbor != target:
                continue
            parents[neighbor] = current
            if neighbor == target:
                path = [target]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def vertex_disjoint_shortest_paths(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    max_paths: int | None = None,
) -> list[list]:
    """Greedily extract internally vertex-disjoint shortest s-t paths.

    Repeatedly finds a shortest path, records it, blocks its internal nodes
    and repeats, until no path remains or ``max_paths`` have been found.
    This is exactly the path schedule the SP baseline of Sec. IV-A uses
    ("SP will select the next shortest path disjoint from those [that] have
    been selected").  The direct source-target edge, if present, counts as
    one (internal-node-free) path and is used at most once.
    """
    _check_node(graph, source)
    _check_node(graph, target)
    if source == target:
        return [[source]]
    paths: list[list] = []
    used_internal: set[NodeId] = set()
    direct_edge_used = False
    while max_paths is None or len(paths) < max_paths:
        path = _shortest_path_avoiding(graph, source, target, used_internal, direct_edge_used)
        if path is None:
            break
        paths.append(path)
        if len(path) == 2:
            direct_edge_used = True
        else:
            used_internal.update(path[1:-1])
    return paths


# --------------------------------------------------------------------------- #
# Connectivity
# --------------------------------------------------------------------------- #


def connected_component(graph: SocialGraph, node: NodeId) -> frozenset:
    """The set of nodes reachable from ``node`` (including ``node``)."""
    return frozenset(bfs_distances(graph, node))


def connected_components(graph: SocialGraph) -> list[frozenset]:
    """All connected components, largest first."""
    seen: set[NodeId] = set()
    components: list[frozenset] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component = connected_component(graph, node)
        seen.update(component)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: SocialGraph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_nodes == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(connected_component(graph, first)) == graph.num_nodes


# --------------------------------------------------------------------------- #
# Biconnected components / block-cut tree
# --------------------------------------------------------------------------- #


def _biconnected_edge_groups(graph: SocialGraph) -> Iterator[list[tuple]]:
    """Yield the edge set of each biconnected component (iterative Hopcroft–Tarjan)."""
    visited: set[NodeId] = set()
    for start in graph.nodes():
        if start in visited:
            continue
        discovery: dict[NodeId, int] = {start: 0}
        low: dict[NodeId, int] = {start: 0}
        visited.add(start)
        edge_stack: list[tuple] = []
        edge_index: dict[tuple, int] = {}
        stack: list[tuple] = [(start, start, iter(graph.neighbors(start)))]
        while stack:
            grandparent, parent, children = stack[-1]
            advanced = False
            for child in children:
                if child == grandparent:
                    continue
                if child in visited:
                    if discovery[child] <= discovery[parent]:  # back edge
                        low[parent] = min(low[parent], discovery[child])
                        edge_stack.append((parent, child))
                else:
                    low[child] = discovery[child] = len(discovery)
                    visited.add(child)
                    edge_index[(child, parent)] = len(edge_stack)
                    edge_stack.append((parent, child))
                    stack.append((parent, child, iter(graph.neighbors(child))))
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            if len(stack) > 1:
                if low[parent] >= discovery[grandparent]:
                    index = edge_index[(parent, grandparent)]
                    yield edge_stack[index:]
                    del edge_stack[index:]
                low[grandparent] = min(low[parent], low[grandparent])
            elif stack:
                index = edge_index[(parent, grandparent)]
                yield edge_stack[index:]
                del edge_stack[index:]


def biconnected_components(graph: SocialGraph) -> list[frozenset]:
    """Node sets of the biconnected components (blocks) of ``graph``.

    Isolated nodes belong to no block, matching the usual convention.
    Single edges form their own two-node blocks.
    """
    blocks: list[frozenset] = []
    for edge_group in _biconnected_edge_groups(graph):
        nodes: set[NodeId] = set()
        for u, v in edge_group:
            nodes.add(u)
            nodes.add(v)
        blocks.append(frozenset(nodes))
    return blocks


def articulation_points(graph: SocialGraph) -> frozenset:
    """Cut vertices: nodes whose removal disconnects their component."""
    membership: dict[NodeId, int] = {}
    cuts: set[NodeId] = set()
    for block in biconnected_components(graph):
        for node in block:
            membership[node] = membership.get(node, 0) + 1
            if membership[node] > 1:
                cuts.add(node)
    return frozenset(cuts)


@dataclass(frozen=True)
class BlockCutTree:
    """The block-cut tree of a graph.

    Tree nodes are either ``("block", i)`` referring to ``blocks[i]`` or
    ``("cut", v)`` for an articulation point ``v``.  ``adjacency`` maps each
    tree node to its neighbouring tree nodes.
    """

    blocks: tuple[frozenset, ...]
    cut_vertices: frozenset
    adjacency: dict

    def tree_node_of(self, node: NodeId) -> tuple | None:
        """The tree node representing a graph node, or None for isolated nodes."""
        if node in self.cut_vertices:
            return ("cut", node)
        for index, block in enumerate(self.blocks):
            if node in block:
                return ("block", index)
        return None

    def tree_path(self, start: tuple, end: tuple) -> list[tuple] | None:
        """Shortest path between two tree nodes (BFS over the tree), or None."""
        if start == end:
            return [start]
        parents: dict[tuple, tuple | None] = {start: None}
        queue: deque[tuple] = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self.adjacency.get(current, ()):
                if neighbor in parents:
                    continue
                parents[neighbor] = current
                if neighbor == end:
                    path = [end]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbor)
        return None


def block_cut_tree(graph: SocialGraph) -> BlockCutTree:
    """Build the block-cut tree of ``graph``."""
    blocks = tuple(biconnected_components(graph))
    cuts = articulation_points(graph)
    adjacency: dict[tuple, set] = {}
    for index, block in enumerate(blocks):
        block_node = ("block", index)
        adjacency.setdefault(block_node, set())
        for node in block:
            if node in cuts:
                cut_node = ("cut", node)
                adjacency.setdefault(cut_node, set())
                adjacency[block_node].add(cut_node)
                adjacency[cut_node].add(block_node)
    return BlockCutTree(blocks=blocks, cut_vertices=cuts, adjacency=adjacency)


def nodes_on_simple_paths(graph: SocialGraph, source: NodeId, target: NodeId) -> frozenset:
    """All nodes lying on at least one simple path from ``source`` to ``target``.

    Uses the block-cut tree characterization: a node lies on a simple
    source-target path iff it belongs to a block on the block-cut-tree path
    between the source's and target's tree nodes.  Returns the empty set
    when source and target are disconnected; returns ``{source}`` when they
    coincide.  Both endpoints are included in the result when a path exists.
    """
    _check_node(graph, source)
    _check_node(graph, target)
    if source == target:
        return frozenset({source})
    component = connected_component(graph, source)
    if target not in component:
        return frozenset()
    tree = block_cut_tree(graph.subgraph(component))
    start = tree.tree_node_of(source)
    end = tree.tree_node_of(target)
    if start is None or end is None:
        return frozenset()
    path = tree.tree_path(start, end)
    if path is None:
        return frozenset()
    result: set[NodeId] = set()
    for tree_node in path:
        kind, payload = tree_node
        if kind == "block":
            result.update(tree.blocks[payload])
        else:
            result.add(payload)
    return frozenset(result)
