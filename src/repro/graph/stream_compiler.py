"""Streaming edge-list compiler: edge file -> on-disk CSR snapshot, bounded RAM.

:func:`compile_edge_list` turns a SNAP-style edge list into a snapshot
directory that :meth:`~repro.graph.compiled.CompiledGraph.open` maps back,
**without ever materializing a** :class:`~repro.graph.social_graph.SocialGraph`
adjacency dict.  That is the piece that unlocks million-node graphs: the
dict representation costs hundreds of bytes per edge, while this compiler's
working set is O(n) small integer columns (the id table, degrees and
scatter cursors -- about 40 bytes per node) plus one bounded edge chunk,
with every O(m) column written straight into memory-mapped ``.npy`` files.

The compiler makes two passes over the edge stream:

1. **Count.** Interns node ids in first-appearance order (vectorized, so it
   matches ``SocialGraph.add_edge`` insertion order exactly), filters
   self-loops and (optionally) duplicate friendships, and accumulates
   in-degrees.  Between the passes the prefix sum of the degrees becomes
   ``indptr``, and ``cum_weights``/``totals`` are synthesized analytically
   -- both supported weight schemes assign every in-edge of a node the same
   share, so each node's running sum is a cumulative sum known from its
   degree alone.
2. **Scatter.** Replays the stream and writes each edge's two CSR entries
   (``v``'s row gets parent ``u`` and vice versa) at per-node cursors, in
   chronological order per row -- the same order a dict-built graph's
   ``in_weights`` iteration produces.

The resulting snapshot is **bit-identical** -- same column bytes, same
:meth:`~repro.graph.compiled.CompiledGraph.csr_digest` -- to compiling the
same edge list through ``read_snap_graph`` + weight application +
``compile_graph`` + ``save``; the test suite asserts this equivalence, and
it is what lets spill tags and matrix fingerprints agree across the two
compilation routes.  Alias columns are built by the shared
:func:`~repro.graph.compiled.build_alias_tables` and ``meta.json`` is
written last, so an interrupted compile leaves an unopenable directory
rather than a plausible-but-wrong snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.exceptions import GraphFormatError, SnapshotError, SnapshotFormatError
from repro.graph.compiled import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    _write_snapshot_meta,
    build_alias_tables,
    compute_csr_digest,
)

try:  # the on-disk .npy columns require numpy (same bound as CompiledGraph.save)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = ["compile_edge_list", "StreamCompileResult", "WEIGHT_SCHEMES"]

#: Weight schemes the compiler can synthesize without seeing the graph:
#: both assign every in-edge of a node an equal share, so the cumulative
#: column is a closed-form function of the node's degree.
#: ``degree`` mirrors :func:`~repro.graph.weights.apply_degree_normalized_weights`
#: (share ``1/deg``); ``uniform`` mirrors
#: :func:`~repro.graph.weights.apply_uniform_weights` with ``normalize=True``
#: (share ``w``, clamped to ``1/deg`` when ``w * deg > 1``).
WEIGHT_SCHEMES = ("degree", "uniform")

#: Edges per processing chunk (both passes); bounds transient memory at a
#: few hundred MB per million chunked edges worst case.
DEFAULT_CHUNK_EDGES = 1 << 20

_SCATTER_BATCH = 1 << 20


@dataclass(frozen=True)
class StreamCompileResult:
    """Summary of a streaming compilation, returned by :func:`compile_edge_list`.

    ``digest`` is the snapshot's CSR digest (identical to what
    ``CompiledGraph.open(directory).csr_digest()`` reports);
    ``self_loops_skipped`` / ``duplicates_skipped`` count dropped input
    lines, mirroring ``read_edge_list`` semantics.
    """

    directory: Path
    num_nodes: int
    num_edges: int
    digest: str
    self_loops_skipped: int
    duplicates_skipped: int


def _iter_file_chunks(path: Path, chunk_edges: int):
    """Yield ``(u_array, v_array)`` int64 chunks parsed from an edge-list file.

    Parsing mirrors :func:`~repro.graph.io.read_edge_list` exactly --
    blank and ``#`` comment lines skipped, whitespace-delimited, extra
    tokens ignored, short lines rejected -- except that node ids must be
    integers (the on-disk format v1 stores an int64 ``nodes`` column).
    """
    us: list[int] = []
    vs: list[int] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        raise GraphFormatError(f"cannot read edge list {path}: {error}") from None
    with handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}: line {number}: expected 'u v', got {stripped!r}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
            except ValueError:
                raise GraphFormatError(
                    f"{path}: line {number}: node ids must be integers for "
                    f"streaming compilation, got {stripped!r}"
                ) from None
            us.append(u)
            vs.append(v)
            if len(us) >= chunk_edges:
                yield _as_id_array(us, path), _as_id_array(vs, path)
                us, vs = [], []
    if us:
        yield _as_id_array(us, path), _as_id_array(vs, path)


def _as_id_array(values: list, source) -> "object":
    try:
        return _np.asarray(values, dtype=_np.int64)
    except OverflowError:
        raise GraphFormatError(
            f"{source}: node ids must fit in a signed 64-bit integer"
        ) from None


def _iter_source_chunks(source, chunk_edges: int):
    """Normalize an edge source into ``(u_array, v_array)`` int64 chunks.

    ``source`` is either a path to an edge-list file (re-read on each
    pass) or a zero-argument callable returning an iterable of edges --
    each item either a ``(u, v)`` pair of ints or a pre-chunked
    ``(u_array, v_array)`` pair of equal-length integer arrays.  A
    callable source is invoked once per pass and must replay the identical
    stream (e.g. a deterministic generator); the compiler's two passes
    otherwise disagree and the scatter cursors catch it.
    """
    if not callable(source):
        yield from _iter_file_chunks(Path(source), chunk_edges)
        return
    us: list[int] = []
    vs: list[int] = []
    for item in source():
        u, v = item
        if isinstance(u, _np.ndarray) or isinstance(v, _np.ndarray):
            if us:
                yield _as_id_array(us, "<edge stream>"), _as_id_array(vs, "<edge stream>")
                us, vs = [], []
            u_array = _np.asarray(u, dtype=_np.int64)
            v_array = _np.asarray(v, dtype=_np.int64)
            if u_array.shape != v_array.shape or u_array.ndim != 1:
                raise GraphFormatError(
                    "<edge stream>: chunked edge sources must yield equal-length "
                    "1-D (u, v) array pairs"
                )
            yield u_array, v_array
            continue
        us.append(int(u))
        vs.append(int(v))
        if len(us) >= chunk_edges:
            yield _as_id_array(us, "<edge stream>"), _as_id_array(vs, "<edge stream>")
            us, vs = [], []
    if us:
        yield _as_id_array(us, "<edge stream>"), _as_id_array(vs, "<edge stream>")


class _Interner:
    """Vectorized id -> dense-index table preserving first-appearance order.

    Keeps two parallel sorted columns (ids, dense index of each id) for
    O(log n) batch lookups via ``searchsorted``, plus the ids in dense
    order for the ``nodes`` column -- about 24 bytes per node, the
    dominant resident cost of a streaming compile.
    """

    __slots__ = ("sorted_ids", "sorted_index", "order_chunks", "count")

    def __init__(self) -> None:
        self.sorted_ids = _np.empty(0, dtype=_np.int64)
        self.sorted_index = _np.empty(0, dtype=_np.int64)
        self.order_chunks: list = []
        self.count = 0

    def intern(self, flat) -> None:
        """Intern every id in ``flat`` (first appearance wins the next index)."""
        uniq, first_pos = _np.unique(flat, return_index=True)
        if self.count:
            pos = _np.searchsorted(self.sorted_ids, uniq)
            clipped = _np.minimum(pos, self.sorted_ids.size - 1)
            known = self.sorted_ids[clipped] == uniq
            known &= pos < self.sorted_ids.size
        else:
            known = _np.zeros(uniq.size, dtype=bool)
        fresh_ids = uniq[~known]
        if fresh_ids.size == 0:
            return
        order = _np.argsort(first_pos[~known], kind="stable")
        fresh_ordered = fresh_ids[order]
        dense = _np.arange(self.count, self.count + fresh_ordered.size, dtype=_np.int64)
        merged_ids = _np.concatenate([self.sorted_ids, fresh_ordered])
        merged_index = _np.concatenate([self.sorted_index, dense])
        sorter = _np.argsort(merged_ids, kind="stable")
        self.sorted_ids = merged_ids[sorter]
        self.sorted_index = merged_index[sorter]
        self.order_chunks.append(fresh_ordered)
        self.count += fresh_ordered.size

    def map(self, values):
        """Dense indices of ``values``; rejects ids never interned.

        An unknown id here means the source yielded an edge in the scatter
        pass that the counting pass never saw -- a non-replayable stream --
        so the error is raised eagerly instead of scattering garbage.
        """
        values = _np.asarray(values, dtype=_np.int64)
        if values.size == 0:
            return values
        pos = _np.searchsorted(self.sorted_ids, values)
        clipped = _np.minimum(pos, max(0, self.sorted_ids.size - 1))
        if self.sorted_ids.size == 0 or not _np.array_equal(
            self.sorted_ids[clipped], values
        ):
            raise SnapshotFormatError(
                "edge source did not replay identically between the counting "
                "and scatter passes (unknown node id in the second pass)"
            )
        return self.sorted_index[clipped]

    def iter_ids(self) -> Iterator[int]:
        """All ids as Python ints, in dense (first-appearance) order."""
        for chunk in self.order_chunks:
            yield from chunk.tolist()


class _EdgeFilter:
    """Shared self-loop + duplicate filtering for both passes.

    The duplicate set is rebuilt per pass (same stream, same verdicts) and
    keys undirected pairs of *dense* indices packed into one int64, which
    is why the interner caps n below 2^31.
    """

    __slots__ = ("interner", "dedup", "seen", "self_loops", "duplicates")

    def __init__(self, interner: _Interner, dedup: bool) -> None:
        self.interner = interner
        self.dedup = dedup
        self.seen: set = set()
        self.self_loops = 0
        self.duplicates = 0

    def accept(self, us, vs, *, intern: bool):
        """Filter one chunk; returns dense ``(a, b)`` index arrays of kept edges."""
        keep = us != vs
        self.self_loops += int(us.size - int(keep.sum()))
        us = us[keep]
        vs = vs[keep]
        if intern:
            flat = _np.empty(2 * us.size, dtype=_np.int64)
            flat[0::2] = us
            flat[1::2] = vs
            self.interner.intern(flat)
            if self.interner.count >= 1 << 31:  # pragma: no cover - 2B nodes
                raise SnapshotFormatError(
                    "streaming compiler supports at most 2^31 distinct nodes"
                )
        a = self.interner.map(us)
        b = self.interner.map(vs)
        if not self.dedup:
            return a, b
        lo = _np.minimum(a, b)
        hi = _np.maximum(a, b)
        keys = (lo << _np.int64(32)) | hi
        mask = _np.ones(keys.size, dtype=bool)
        seen = self.seen
        for i, key in enumerate(keys.tolist()):
            if key in seen:
                mask[i] = False
            else:
                seen.add(key)
        self.duplicates += int(keys.size - int(mask.sum()))
        return a[mask], b[mask]


def _edge_share(degree: int, weights: str, uniform_weight: float) -> float:
    """The per-in-edge weight for a node of the given degree -- exactly the
    float the dict-based weight appliers would store."""
    if weights == "degree":
        return 1.0 / degree
    value = uniform_weight
    if uniform_weight * degree > 1.0:
        value = 1.0 / degree
    return value


def _open_output(directory: Path, name: str, dtype, shape):
    from numpy.lib.format import open_memmap

    try:
        return open_memmap(directory / f"{name}.npy", mode="w+", dtype=dtype, shape=shape)
    except OSError as error:
        raise SnapshotError(
            f"cannot write snapshot column {directory / (name + '.npy')}: {error}"
        ) from None


def compile_edge_list(
    source,
    out_dir,
    *,
    weights: str = "degree",
    uniform_weight: float = 0.1,
    name: "str | None" = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    dedup: bool = True,
) -> StreamCompileResult:
    """Compile an edge list into an on-disk snapshot directory, streaming.

    ``source`` is an edge-list file path (SNAP format, integer ids) or a
    replayable zero-argument callable yielding edges -- see
    :func:`_iter_source_chunks` for the accepted shapes.  ``weights``
    selects one of :data:`WEIGHT_SCHEMES`; ``dedup=False`` skips the
    O(m)-memory duplicate-edge set for inputs known to be duplicate-free
    (every duplicate would otherwise corrupt degrees and the scatter).
    The finished directory opens via ``CompiledGraph.open(out_dir)`` and
    is bit-identical to the in-memory compile-and-save route for the same
    input; returns a :class:`StreamCompileResult` carrying the digest.
    """
    if _np is None:
        raise SnapshotError(
            f"compiling snapshot {out_dir}: the streaming compiler writes .npy "
            "columns and requires numpy, which is not installed"
        )
    if weights not in WEIGHT_SCHEMES:
        raise SnapshotFormatError(
            f"unknown weight scheme {weights!r}; expected one of {WEIGHT_SCHEMES}"
        )
    if chunk_edges <= 0:
        raise SnapshotFormatError("chunk_edges must be positive")
    directory = Path(out_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise SnapshotError(f"cannot create snapshot directory {directory}: {error}") from None
    stale_meta = directory / "meta.json"
    if stale_meta.exists():
        stale_meta.unlink()  # a partially rewritten directory must not open

    if name is None:
        name = Path(source).stem if not callable(source) else "stream"

    # ---- pass 1: intern ids, count degrees ---------------------------- #
    interner = _Interner()
    edge_filter = _EdgeFilter(interner, dedup)
    degrees = _np.empty(0, dtype=_np.int64)
    num_edges = 0
    for us, vs in _iter_source_chunks(source, chunk_edges):
        a, b = edge_filter.accept(us, vs, intern=True)
        if interner.count > degrees.size:
            degrees = _np.concatenate(
                [degrees, _np.zeros(interner.count - degrees.size, dtype=_np.int64)]
            )
        if a.size:
            counts = _np.bincount(_np.concatenate([a, b]), minlength=interner.count)
            degrees[: counts.size] += counts
        num_edges += int(a.size)

    n = interner.count
    entries = int(degrees.sum())

    indptr = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(degrees, out=indptr[1:])

    nodes_column = (
        _np.concatenate(interner.order_chunks)
        if interner.order_chunks
        else _np.empty(0, dtype=_np.int64)
    )
    contiguous = bool(n == 0 or _np.array_equal(nodes_column, _np.arange(n, dtype=_np.int64)))
    try:
        _np.save(directory / "nodes.npy", nodes_column)
        _np.save(directory / "indptr.npy", indptr)
    except OSError as error:
        raise SnapshotError(
            f"cannot write snapshot column under {directory}: {error}"
        ) from None

    # ---- analytic cum_weights / totals (equal share per in-edge) ------ #
    cum_weights = _open_output(directory, "cum_weights", _np.float64, (entries,))
    totals = _np.zeros(n, dtype=_np.float64)
    if n:
        by_degree = _np.argsort(degrees, kind="stable")
        sorted_degrees = degrees[by_degree]
        starts = _np.flatnonzero(
            _np.concatenate([[True], sorted_degrees[1:] != sorted_degrees[:-1]])
        )
        bounds = _np.append(starts, n)
        for g in range(starts.size):
            degree = int(sorted_degrees[starts[g]])
            if degree == 0:
                continue
            group = by_degree[bounds[g] : bounds[g + 1]]
            share = _edge_share(degree, weights, uniform_weight)
            pattern = _np.cumsum(_np.full(degree, share, dtype=_np.float64))
            totals[group] = pattern[-1]
            rows_per_batch = max(1, _SCATTER_BATCH // degree)
            for lo in range(0, group.size, rows_per_batch):
                rows = group[lo : lo + rows_per_batch]
                positions = indptr[rows][:, None] + _np.arange(degree, dtype=_np.int64)
                cum_weights[positions.ravel()] = _np.broadcast_to(
                    pattern, (rows.size, degree)
                ).ravel()
    try:
        _np.save(directory / "totals.npy", totals)
    except OSError as error:
        raise SnapshotError(
            f"cannot write snapshot column under {directory}: {error}"
        ) from None

    # ---- pass 2: scatter parents in chronological per-row order ------- #
    parents = _open_output(directory, "parents", _np.int64, (entries,))
    cursors = indptr[:-1].copy()
    edge_filter = _EdgeFilter(interner, dedup)
    for us, vs in _iter_source_chunks(source, chunk_edges):
        a, b = edge_filter.accept(us, vs, intern=False)
        if not a.size:
            continue
        targets = _np.empty(2 * a.size, dtype=_np.int64)
        sources = _np.empty(2 * a.size, dtype=_np.int64)
        targets[0::2] = b  # v's row receives parent u ...
        sources[0::2] = a
        targets[1::2] = a  # ... and u's row receives parent v
        sources[1::2] = b
        order = _np.argsort(targets, kind="stable")
        targets = targets[order]
        sources = sources[order]
        flags = _np.empty(targets.size, dtype=bool)
        flags[0] = True
        _np.not_equal(targets[1:], targets[:-1], out=flags[1:])
        starts = _np.flatnonzero(flags)
        sizes = _np.diff(_np.append(starts, targets.size))
        within = _np.arange(targets.size, dtype=_np.int64) - _np.repeat(starts, sizes)
        rows = targets[starts]
        if _np.any(cursors[rows] + sizes > indptr[rows + 1]):
            # More in-edges for some row than the counting pass allotted:
            # the source is not replaying the same stream.  Caught before
            # the scatter so no write can land in a neighbouring row.
            raise SnapshotFormatError(
                f"snapshot {directory}: edge source did not replay identically "
                "between the counting and scatter passes"
            )
        parents[cursors[targets] + within] = sources
        _np.add.at(cursors, rows, sizes)
    if not _np.array_equal(cursors, indptr[1:]):
        raise SnapshotFormatError(
            f"snapshot {directory}: edge source did not replay identically "
            "between the counting and scatter passes"
        )

    # ---- alias columns + digest + metadata ---------------------------- #
    alias_prob = _open_output(directory, "alias_prob", _np.float64, (entries,))
    alias_index = _open_output(directory, "alias_index", _np.int64, (entries,))
    build_alias_tables(indptr, cum_weights, totals, alias_prob, alias_index)
    for column in (cum_weights, parents, alias_prob, alias_index):
        column.flush()

    digest = compute_csr_digest(interner.iter_ids(), indptr, parents, cum_weights, count=n)
    meta = {
        "format": SNAPSHOT_FORMAT,
        "format_version": SNAPSHOT_VERSION,
        "digest": digest,
        "num_nodes": n,
        "num_edges": num_edges,
        "weights": weights,
        "name": name,
        "contiguous_ids": contiguous,
    }
    _write_snapshot_meta(directory, meta)
    return StreamCompileResult(
        directory=directory,
        num_nodes=n,
        num_edges=num_edges,
        digest=digest,
        self_loops_skipped=edge_filter.self_loops,
        duplicates_skipped=edge_filter.duplicates,
    )
