"""Descriptive statistics over friendship graphs (Table I of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import connected_components

__all__ = ["GraphStats", "compute_stats", "degree_histogram", "average_degree"]


@dataclass(frozen=True, slots=True)
class GraphStats:
    """Summary statistics of a friendship graph.

    Mirrors the columns of Table I (nodes, edges, average degree) and adds
    a few extra fields that help sanity-check the synthetic dataset
    stand-ins against their targets.
    """

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int
    min_degree: int
    density: float
    num_components: int
    largest_component_size: int

    def as_row(self) -> dict:
        """Return the Table-I style row for reporting."""
        return {
            "dataset": self.name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "avg_degree": round(self.avg_degree, 2),
        }


def average_degree(graph: SocialGraph) -> float:
    """The average number of friends per user, ``2m / n``."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes


def degree_histogram(graph: SocialGraph) -> Mapping[int, int]:
    """Return ``{degree: number of nodes with that degree}``."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def compute_stats(graph: SocialGraph, name: str | None = None) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    n = graph.num_nodes
    m = graph.num_edges
    degrees = [graph.degree(node) for node in graph.nodes()] or [0]
    components = connected_components(graph)
    largest = max((len(component) for component in components), default=0)
    density = 0.0
    if n > 1:
        density = 2.0 * m / (n * (n - 1))
    return GraphStats(
        name=name if name is not None else graph.name,
        num_nodes=n,
        num_edges=m,
        avg_degree=average_degree(graph),
        max_degree=max(degrees),
        min_degree=min(degrees),
        density=density,
        num_components=len(components),
        largest_component_size=largest,
    )
