"""Social-graph substrate: data structure, weights, I/O, generators, metrics.

The central type is :class:`~repro.graph.social_graph.SocialGraph`, an
undirected friendship graph that carries a familiarity weight ``w(u, v)``
for every ordered pair of friends, matching the model of Sec. II-A of the
paper.  Everything else in the package produces, transforms or inspects
these graphs.
"""

from repro.graph.social_graph import SocialGraph
from repro.graph.compiled import (
    CompiledGraph,
    compile_graph,
    compute_csr_digest,
    read_snapshot_meta,
)
from repro.graph.stream_compiler import StreamCompileResult, compile_edge_list
from repro.graph.weights import (
    apply_degree_normalized_weights,
    apply_explicit_weights,
    apply_random_weights,
    apply_uniform_weights,
    validate_weights,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    power_law_configuration_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graph.datasets import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    load_dataset,
)
from repro.graph.io import (
    read_edge_list,
    read_snap_graph,
    write_edge_list,
    graph_to_dict,
    graph_from_dict,
)
from repro.graph.metrics import GraphStats, compute_stats, degree_histogram
from repro.graph.sampling import bfs_sample, forest_fire_sample, random_node_sample
from repro.graph.traversal import (
    bfs_distances,
    biconnected_components,
    block_cut_tree,
    connected_component,
    connected_components,
    shortest_path,
    vertex_disjoint_shortest_paths,
)

__all__ = [
    "SocialGraph",
    "CompiledGraph",
    "compile_graph",
    "compute_csr_digest",
    "read_snapshot_meta",
    "compile_edge_list",
    "StreamCompileResult",
    "apply_degree_normalized_weights",
    "apply_uniform_weights",
    "apply_random_weights",
    "apply_explicit_weights",
    "validate_weights",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "power_law_configuration_graph",
    "forest_fire_graph",
    "planted_partition_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "grid_graph",
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_spec",
    "load_dataset",
    "read_edge_list",
    "read_snap_graph",
    "write_edge_list",
    "graph_to_dict",
    "graph_from_dict",
    "GraphStats",
    "compute_stats",
    "degree_histogram",
    "random_node_sample",
    "bfs_sample",
    "forest_fire_sample",
    "bfs_distances",
    "shortest_path",
    "vertex_disjoint_shortest_paths",
    "connected_component",
    "connected_components",
    "biconnected_components",
    "block_cut_tree",
]
