"""Familiarity-weight schemes for the linear-threshold friending model.

The model requires, for every user ``v``, that the familiarity weights of
v's friends sum to at most 1.  The paper's experiments (Sec. IV, following
Kempe et al.) use the degree-normalized convention ``w(u, v) = 1/|N_v|``.
This module provides that scheme plus a few alternatives used by the
ablation benchmarks, all operating in place on a :class:`SocialGraph`.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import WeightError
from repro.graph.social_graph import SocialGraph
from repro.types import EdgeTuple
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_in_closed_unit_interval

__all__ = [
    "apply_degree_normalized_weights",
    "apply_uniform_weights",
    "apply_random_weights",
    "apply_explicit_weights",
    "validate_weights",
]


def apply_degree_normalized_weights(graph: SocialGraph) -> SocialGraph:
    """Set ``w(u, v) = 1 / |N_v|`` for every ordered friend pair (in place).

    This is the convention used throughout the paper's evaluation and in
    the influence-maximization literature it builds on.  Incoming weights
    of every node sum to exactly 1 (for non-isolated nodes), so the graph
    is trivially normalized.  Returns the same graph for chaining.
    """
    for v in graph.nodes():
        degree = graph.degree(v)
        if degree == 0:
            continue
        share = 1.0 / degree
        for u in graph.neighbors(v):
            graph.set_weight(u, v, share)
    return graph


def apply_uniform_weights(graph: SocialGraph, weight: float = 0.1, normalize: bool = True) -> SocialGraph:
    """Set every directional weight to the same constant (in place).

    When ``normalize`` is true (the default) and a node's incoming weights
    would exceed 1, that node's weights are scaled down proportionally so
    they sum to exactly 1, keeping the graph valid for the threshold model.
    With ``normalize=False`` the caller is responsible for validity (useful
    for reproducing the paper's illustrative Example 1 where weights are
    0.1 and degrees are small).
    """
    require_in_closed_unit_interval(weight, "weight")
    for v in graph.nodes():
        degree = graph.degree(v)
        if degree == 0:
            continue
        value = weight
        total = weight * degree
        if normalize and total > 1.0:
            value = 1.0 / degree
        for u in graph.neighbors(v):
            graph.set_weight(u, v, value)
    return graph


def apply_random_weights(graph: SocialGraph, rng: RandomSource = None) -> SocialGraph:
    """Draw random weights and normalize each node's incoming sum to 1 (in place).

    Each incoming weight of node ``v`` is drawn uniformly from ``(0, 1)``
    and the vector is rescaled to sum to exactly 1, producing a valid but
    heterogeneous familiarity profile.  Used by the weight-scheme ablation.
    """
    generator = ensure_rng(rng)
    for v in graph.nodes():
        neighbors = list(graph.neighbors(v))
        if not neighbors:
            continue
        draws = [generator.random() + 1e-12 for _ in neighbors]
        total = sum(draws)
        for u, draw in zip(neighbors, draws):
            graph.set_weight(u, v, draw / total)
    return graph


def apply_explicit_weights(graph: SocialGraph, weights: Mapping[EdgeTuple, float]) -> SocialGraph:
    """Set weights from an explicit ``{(u, v): w(u, v)}`` mapping (in place).

    Every key must reference an existing friendship.  Pairs not present in
    the mapping keep their current weight.  The result is validated.
    """
    for (u, v), value in weights.items():
        graph.set_weight(u, v, value)
    graph.validate()
    return graph


def validate_weights(graph: SocialGraph, require_positive: bool = True) -> None:
    """Validate that ``graph`` satisfies the friending-model weight constraints.

    Thin wrapper over :meth:`SocialGraph.validate` that defaults to the
    strict check (all friend weights strictly positive), matching the
    paper's ``w(u, v) ∈ (0, 1]`` requirement.
    """
    graph.validate(require_positive_weights=require_positive)


def assert_degree_normalized(graph: SocialGraph, tolerance: float = 1e-9) -> None:
    """Raise :class:`WeightError` unless the graph uses ``w(u, v) = 1/|N_v|``."""
    for v in graph.nodes():
        degree = graph.degree(v)
        if degree == 0:
            continue
        expected = 1.0 / degree
        for u in graph.neighbors(v):
            if abs(graph.weight(u, v) - expected) > tolerance:
                raise WeightError(
                    f"w({u!r}, {v!r}) = {graph.weight(u, v)} differs from 1/|N_v| = {expected}"
                )
