"""Frozen CSR snapshot of a :class:`SocialGraph` for allocation-free sampling.

Every quantity the RAF pipeline computes -- ``pmax`` (Alg. 2), the ``l``
reverse-sampled realizations (Alg. 3) and the Monte Carlo evaluation of
``f(I)`` -- boils down to millions of independent friend selections
(Def. 1).  Doing those selections against the mutable adjacency-dict
representation costs a mapping view plus an O(degree) linear scan per step.

:class:`CompiledGraph` freezes the graph once into contiguous arrays:

* node ids are interned to dense indices ``0..n-1`` (insertion order, so
  compiled sampling visits neighbours in exactly the same order as the
  dict-based code and stays bit-compatible with it for a fixed seed);
* ``indptr``/``parents`` form a CSR layout of each node's in-neighbours;
* ``cum_weights`` holds the *running* left-to-right sum of each node's
  incoming weights, so a friend selection is a single binary search of the
  node's slice with a uniform draw;
* ``totals`` holds each node's total incoming weight -- the complement
  ``1 - totals[i]`` is the precomputed probability that the node selects
  nobody (the stop-probability tail of Def. 1);
* :meth:`CompiledGraph.alias_tables` lazily builds per-node **alias tables**
  (Vose's method) as two flat columns aligned entry-for-entry with the CSR
  in-edge layout -- see :func:`build_alias_tables` for the contract.

Snapshots are cached on the source graph and invalidated by its mutation
counter, so repeated calls to :func:`compile_graph` are free until the graph
actually changes.  The sampling engines in :mod:`repro.diffusion.engine`
consume these arrays directly.

The out-of-core snapshot tier (DESIGN.md §8)
--------------------------------------------

A compiled snapshot can also live *on disk*: :meth:`CompiledGraph.save`
writes the columns as little-endian ``.npy`` files plus a ``meta.json``
into a snapshot directory, and :meth:`CompiledGraph.open` maps them back
with ``numpy.memmap`` views -- the graph then pages its columns from the
file system on demand instead of holding them in RAM, which is what lets
million-node graphs be sampled on laptop-sized memory.  A mapped snapshot
is a drop-in :class:`CompiledGraph`: same dtypes, same neighbour order,
same :meth:`csr_digest`, and therefore *bit-identical* sampled paths from
every engine for the same seed.  Large graphs are compiled straight to
disk -- without ever building a :class:`SocialGraph` -- by the streaming
compiler in :mod:`repro.graph.stream_compiler`.
"""

from __future__ import annotations

import hashlib
import json
import operator
import os
from array import array
from bisect import bisect_right
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.exceptions import (
    NodeNotFoundError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
)
from repro.graph.social_graph import WEIGHT_SUM_TOLERANCE, SocialGraph
from repro.types import NodeId

try:  # optional dependency: only the on-disk snapshot tier needs numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "CompiledGraph",
    "compile_graph",
    "build_alias_tables",
    "compute_csr_digest",
    "read_snapshot_meta",
    "reverse_reachable",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_COLUMNS",
]

#: The ``format`` marker every snapshot ``meta.json`` must carry.
SNAPSHOT_FORMAT = "repro-csr-snapshot"

#: On-disk format version this release reads and writes.  Bumped on any
#: change to the column set, dtypes, digest material or meta fields; open
#: rejects other versions (see DESIGN.md §8 for the compatibility rules).
SNAPSHOT_VERSION = 1

#: Column files of a snapshot directory, in their canonical (digest) order.
#: ``nodes``/``indptr``/``parents``/``alias_index`` are little-endian int64;
#: ``cum_weights``/``totals``/``alias_prob`` are little-endian float64.
SNAPSHOT_COLUMNS = (
    "nodes",
    "indptr",
    "parents",
    "cum_weights",
    "totals",
    "alias_prob",
    "alias_index",
)

_COLUMN_DTYPES = {
    "nodes": "int64",
    "indptr": "int64",
    "parents": "int64",
    "cum_weights": "float64",
    "totals": "float64",
    "alias_prob": "float64",
    "alias_index": "int64",
}

#: Hex characters kept of the SHA-256 CSR digest (96 bits -- collision-safe
#: for fingerprinting, short enough for file names and log lines).
_DIGEST_HEX = 24

#: Bytes / entries per chunk when streaming column bytes (digest, verify).
_STREAM_CHUNK = 1 << 18


class _NodeIds(tuple):
    """Interned node ids of an in-memory snapshot.

    A plain tuple -- same ``repr`` (the digest material), same indexing --
    that is additionally *callable*, returning an iterator, so a
    :class:`CompiledGraph` satisfies the read-only half of the
    :class:`SocialGraph` interface (``graph.nodes()``) as well as the
    array-style access (``graph.nodes[i]``) the sampling kernels use.
    """

    __slots__ = ()

    def __call__(self) -> Iterator:
        """Iterate over the node ids (``SocialGraph.nodes()`` compatibility)."""
        return iter(self)


class _MappedNodeIds:
    """Lazy node-id sequence over the memory-mapped ``nodes`` column.

    Behaves like the interned tuple of an in-memory snapshot -- indexing
    returns plain Python ints (so sampled paths, pool keys and JSON records
    carry identical types and ``repr`` bytes whichever backend produced
    them) -- but only ever keeps a bounded window of ids resident.
    """

    __slots__ = ("_ids",)

    _CHUNK = 1 << 16

    def __init__(self, ids) -> None:
        self._ids = ids

    def __len__(self) -> int:
        return int(self._ids.shape[0])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self._ids[index].tolist())
        return int(self._ids[index])

    def __iter__(self) -> Iterator[int]:
        ids = self._ids
        for lo in range(0, len(self), self._CHUNK):
            yield from ids[lo : lo + self._CHUNK].tolist()

    def __call__(self) -> Iterator[int]:
        """Iterate over the node ids (``SocialGraph.nodes()`` compatibility)."""
        return iter(self)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<mapped node ids n={len(self)}>"


def _digest_nodes(update: Callable[[bytes], None], nodes, count: int) -> None:
    """Feed exactly ``repr(tuple(nodes))`` into ``update``, streamed.

    The node-id tuple ``repr`` is the historical first component of the CSR
    digest; streaming it keeps digest computation O(chunk) in memory for
    mapped snapshots instead of materializing a million-entry tuple.
    """
    if count == 0:
        update(b"()")
        return
    parts: list[str] = ["("]
    size = 1
    first = True
    for node in nodes:
        text = repr(node) if first else ", " + repr(node)
        first = False
        parts.append(text)
        size += len(text)
        if size >= _STREAM_CHUNK:
            update("".join(parts).encode("utf-8"))
            parts, size = [], 0
    parts.append(",)" if count == 1 else ")")
    update("".join(parts).encode("utf-8"))


def _digest_column_bytes(update: Callable[[bytes], None], column) -> None:
    """Feed a column's raw little-endian bytes into ``update``, chunk-wise."""
    length = len(column)
    for lo in range(0, length, _STREAM_CHUNK):
        update(column[lo : lo + _STREAM_CHUNK].tobytes())
    if length == 0:
        update(b"")


def compute_csr_digest(nodes, indptr, parents, cum_weights, count: int | None = None) -> str:
    """SHA-256 digest (truncated to 24 hex chars) of a CSR snapshot.

    The digest material is ``repr(tuple(node ids))`` followed by the raw
    little-endian bytes of ``indptr``, ``parents`` and ``cum_weights`` --
    byte-for-byte the material the sample pool has always hashed, so
    digests computed here agree with every previously written spill tag.
    It covers the interned ids and the full weighted adjacency, so any
    change that could alter a sampled path changes the digest; the alias
    columns are a pure function of these arrays and need no separate
    coverage.  Works on stdlib arrays and memory-mapped columns alike
    (columns are streamed in bounded chunks).
    """
    digest = hashlib.sha256()
    _digest_nodes(digest.update, nodes, len(nodes) if count is None else count)
    for column in (indptr, parents, cum_weights):
        _digest_column_bytes(digest.update, column)
    return digest.hexdigest()[:_DIGEST_HEX]


def build_alias_tables(indptr, cum_weights, totals, alias_prob, alias_index) -> None:
    """Fill per-node Vose alias columns aligned to a CSR in-edge layout.

    For a node ``v`` with in-degree ``d`` and CSR slice ``[lo, hi)``, an
    O(1) friend selection conditional on the walk *not* stopping (the
    caller handles the stop tail by comparing its uniform draw against
    ``totals[v]`` first) is::

        u = draw / totals[v]          # uniform on [0, 1) given no stop
        k = min(int(u * d), d - 1)    # the uniform cell
        if (u * d) - k < alias_prob[lo + k]:
            parent = parents[lo + k]
        else:
            parent = parents[lo + alias_index[lo + k]]

    ``alias_index`` entries are *node-local* (0-based within the node's
    slice).  The construction is a pure function of
    ``indptr``/``cum_weights``/``totals`` with a fixed floating-point
    evaluation order, so the produced columns are bit-identical whichever
    buffer types are passed -- stdlib ``array`` columns of an in-memory
    snapshot or the memory-mapped ``.npy`` columns the streaming compiler
    writes -- and any digest covering the CSR arrays fingerprints the
    tables too.  Nodes with zero total weight get the identity table as a
    benign placeholder (they are unreachable conditional on "no stop").
    """
    num_nodes = len(indptr) - 1
    for v in range(num_nodes):
        lo = int(indptr[v])
        hi = int(indptr[v + 1])
        degree = hi - lo
        if degree == 0:
            continue
        total = float(totals[v])
        if total <= 0.0:
            for k in range(degree):
                alias_prob[lo + k] = 1.0
                alias_index[lo + k] = k
            continue
        # Vose's method over the normalized weights w_k / total.  The
        # segment is materialized as Python floats so the arithmetic below
        # runs identically for array- and memmap-backed columns.
        segment = cum_weights[lo:hi]
        cum = segment.tolist()
        previous = 0.0
        scaled = []
        for value in cum:
            scaled.append((value - previous) * degree / total)
            previous = value
        small = [k for k in range(degree) if scaled[k] < 1.0]
        large = [k for k in range(degree) if scaled[k] >= 1.0]
        while small and large:
            lesser = small.pop()
            greater = large.pop()
            alias_prob[lo + lesser] = scaled[lesser]
            alias_index[lo + lesser] = greater
            scaled[greater] -= 1.0 - scaled[lesser]
            if scaled[greater] < 1.0:
                small.append(greater)
            else:
                large.append(greater)
        # Float leftovers on either worklist carry probability ~1.
        for k in small + large:
            alias_prob[lo + k] = 1.0
            alias_index[lo + k] = k


def read_snapshot_meta(path) -> dict:
    """Read and validate a snapshot directory's ``meta.json`` (columns untouched).

    Cheap (one small JSON file), so callers that only need the recorded
    CSR digest -- e.g. the matrix runner binding a snapshot into its
    protocol fingerprint -- can get it without mapping any column.  Raises
    :class:`~repro.exceptions.SnapshotError` /
    :class:`~repro.exceptions.SnapshotFormatError` /
    :class:`~repro.exceptions.SnapshotVersionError` with the offending path
    named, per the DESIGN.md §8 rejection rules.
    """
    directory = Path(path)
    meta_path = directory / "meta.json"
    if not meta_path.is_file():
        if not directory.is_dir():
            raise SnapshotError(f"snapshot directory {directory} does not exist")
        raise SnapshotFormatError(
            f"{directory} is not a compiled-graph snapshot: missing {meta_path.name}"
        )
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(
            f"unreadable snapshot metadata {meta_path}: {error}"
        ) from None
    if not isinstance(meta, dict) or meta.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"{meta_path} does not describe a {SNAPSHOT_FORMAT!r} snapshot"
        )
    version = meta.get("format_version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot {directory} uses on-disk format version {version!r}; this "
            f"release reads version {SNAPSHOT_VERSION} only -- recompile the edge "
            "list with `repro compile-graph`"
        )
    expected = (
        ("digest", str),
        ("num_nodes", int),
        ("num_edges", int),
        ("weights", str),
        ("name", str),
        ("contiguous_ids", bool),
    )
    for key, kind in expected:
        value = meta.get(key)
        if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
            raise SnapshotFormatError(
                f"snapshot metadata {meta_path} is missing or mistypes the "
                f"required field {key!r}"
            )
    if meta["num_nodes"] < 0 or meta["num_edges"] < 0:
        raise SnapshotFormatError(
            f"snapshot metadata {meta_path} declares negative node/edge counts"
        )
    return meta


def _require_numpy(action: str, path) -> None:
    if _np is None:
        raise SnapshotError(
            f"{action} snapshot {path}: the on-disk .npy column format requires "
            "numpy, which is not installed (pip install repro-active-friending[numpy])"
        )


def _load_column(directory: Path, name: str, expected_length: int | None, mmap: bool):
    """Map (or load) one ``.npy`` column, validating dtype/endianness/shape."""
    path = directory / f"{name}.npy"
    if not path.is_file():
        raise SnapshotFormatError(f"snapshot {directory} is missing column file {path.name}")
    try:
        column = _np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    except (OSError, ValueError) as error:
        raise SnapshotFormatError(f"snapshot column {path} cannot be read: {error}") from None
    expected_dtype = _np.dtype(_COLUMN_DTYPES[name]).newbyteorder("<")
    if column.dtype.str != expected_dtype.str:
        raise SnapshotFormatError(
            f"snapshot column {path} has dtype {column.dtype.str!r}, expected "
            f"little-endian {expected_dtype.str!r}"
        )
    if column.ndim != 1:
        raise SnapshotFormatError(
            f"snapshot column {path} has shape {column.shape}, expected a flat column"
        )
    if expected_length is not None and column.shape[0] != expected_length:
        raise SnapshotFormatError(
            f"snapshot column {path} has {column.shape[0]} entries, expected "
            f"{expected_length}"
        )
    return column


class CompiledGraph:
    """Immutable CSR view of a :class:`SocialGraph` (in RAM or memory-mapped).

    The public array attributes (``nodes``, ``indptr``, ``parents``,
    ``cum_weights``, ``totals``) are exposed for the sampling engines and
    must be treated as read-only; mutate the source graph and recompile
    instead.  For an in-memory snapshot they are stdlib ``array`` columns;
    for a snapshot opened with :meth:`open` they are read-only
    ``numpy.memmap`` views with the same dtypes and the same element
    values, so both backends produce bit-identical samples for the same
    seed (the contract every engine test asserts).

    A :class:`CompiledGraph` also implements the *read-only* subset of the
    :class:`SocialGraph` interface the pipeline consumes (``has_node``,
    ``has_edge``, ``neighbors``, ``neighbor_set``, ``node_list``, callable
    ``nodes``, ``degree``, ``weight``, ``is_normalized``), so problems,
    screening and the query service accept a mapped snapshot wherever they
    accept a graph.
    """

    __slots__ = (
        "name",
        "nodes",
        "indptr",
        "parents",
        "cum_weights",
        "totals",
        "_index",
        "_num_edges",
        "_alias",
        "_digest",
        "_directory",
        "_mmap",
        "_nodes_column",
        "_contiguous",
        "_lookup",
        "graph_version",
    )

    def __init__(self, graph: SocialGraph) -> None:
        """Freeze ``graph`` into in-memory CSR columns (insertion order)."""
        self.name = graph.name
        self.nodes = _NodeIds(graph.nodes())
        self._index: "dict | None" = {node: i for i, node in enumerate(self.nodes)}
        indptr = array("q", [0])
        parents = array("q")
        cum_weights = array("d")
        totals = array("d")
        index = self._index
        for v in self.nodes:
            running = 0.0
            for u, weight in graph.in_weights(v).items():
                running += weight
                parents.append(index[u])
                cum_weights.append(running)
            totals.append(running)
            indptr.append(len(parents))
        self.indptr = indptr
        self.parents = parents
        self.cum_weights = cum_weights
        self.totals = totals
        self._num_edges = graph.num_edges
        self._alias = None  # (alias_prob, alias_index), built lazily
        self._digest = None  # computed lazily by csr_digest()
        self._directory = None
        self._mmap = False
        self._nodes_column = None
        self._contiguous = False
        self._lookup = None
        # The source graph's mutation counter at freeze time; set by
        # compile_graph() (None for snapshots built any other way).  The
        # sample pool uses it to slice the graph's mutation log between two
        # snapshots for delta-scoped invalidation.
        self.graph_version: "int | None" = None

    # ------------------------------------------------------------------ #
    # The on-disk snapshot tier
    # ------------------------------------------------------------------ #

    @property
    def is_mapped(self) -> bool:
        """Whether the columns are memory-mapped ``.npy`` files (vs in RAM)."""
        return self._directory is not None

    @property
    def snapshot_path(self) -> "Path | None":
        """The snapshot directory backing a mapped graph (``None`` in RAM)."""
        return self._directory

    def save(self, path, *, weights: str = "unspecified") -> Path:
        """Write this snapshot as an on-disk directory (DESIGN.md §8).

        Writes the seven little-endian ``.npy`` columns (including the
        alias tables, built here if not yet cached) and then ``meta.json``
        *last* -- a crashed or interrupted save leaves no ``meta.json`` and
        is therefore never openable as a snapshot.  ``weights`` is a
        free-form label of the weight scheme recorded in the metadata
        (``repro compile-graph`` records its ``--weights`` choice).  A
        graph re-opened from the directory via :meth:`open` has the same
        :meth:`csr_digest` and yields bit-identical samples.  Node ids
        must be plain Python ints (the format-v1 ``nodes`` column is
        int64); anything else raises
        :class:`~repro.exceptions.SnapshotFormatError`.
        """
        directory = Path(path)
        _require_numpy("writing", directory)
        if any(type(node) is not int for node in self.nodes):
            raise SnapshotFormatError(
                f"snapshot {directory}: node ids must be plain integers to be "
                "stored in the int64 nodes column (on-disk format v1)"
            )
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise SnapshotError(
                f"cannot create snapshot directory {directory}: {error}"
            ) from None
        ids = _np.fromiter(self.nodes, dtype=_np.int64, count=len(self.nodes))
        contiguous = bool(ids.size == 0 or _np.array_equal(ids, _np.arange(ids.size)))
        alias_prob, alias_index = self.alias_tables()
        columns = {
            "nodes": ids,
            "indptr": _np.asarray(self.indptr, dtype=_np.int64),
            "parents": _np.asarray(self.parents, dtype=_np.int64),
            "cum_weights": _np.asarray(self.cum_weights, dtype=_np.float64),
            "totals": _np.asarray(self.totals, dtype=_np.float64),
            "alias_prob": _np.asarray(alias_prob, dtype=_np.float64),
            "alias_index": _np.asarray(alias_index, dtype=_np.int64),
        }
        try:
            for name in SNAPSHOT_COLUMNS:
                _np.save(directory / f"{name}.npy", columns[name])
        except OSError as error:
            raise SnapshotError(
                f"cannot write snapshot column under {directory}: {error}"
            ) from None
        meta = {
            "format": SNAPSHOT_FORMAT,
            "format_version": SNAPSHOT_VERSION,
            "digest": self.csr_digest(),
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "weights": weights,
            "name": self.name,
            "contiguous_ids": contiguous,
        }
        _write_snapshot_meta(directory, meta)
        return directory

    @classmethod
    def open(cls, path, *, mmap: bool = True, verify: bool = False) -> "CompiledGraph":
        """Open an on-disk snapshot directory as a :class:`CompiledGraph`.

        With ``mmap=True`` (the default) the columns are read-only
        ``numpy.memmap`` views paged in on demand -- opening a million-node
        snapshot costs a few file headers, not gigabytes of RAM.  The
        recorded CSR digest is adopted from ``meta.json`` (O(1)); pass
        ``verify=True`` to re-hash the column bytes against it
        (:meth:`verify_integrity`).  Every failure mode raises a typed
        :class:`~repro.exceptions.SnapshotError` subclass naming the
        offending path: missing/garbled files and dtype, shape or CSR
        inconsistencies raise ``SnapshotFormatError``, a foreign
        ``format_version`` raises ``SnapshotVersionError``, and a digest
        mismatch under ``verify`` raises ``SnapshotIntegrityError``.
        """
        directory = Path(path)
        _require_numpy("opening", directory)
        meta = read_snapshot_meta(directory)
        n = meta["num_nodes"]
        nodes_column = _load_column(directory, "nodes", n, mmap)
        indptr = _load_column(directory, "indptr", n + 1, mmap)
        if n >= 0 and (int(indptr[0]) != 0 or not bool((_np.diff(indptr) >= 0).all())):
            raise SnapshotFormatError(
                f"snapshot column {directory / 'indptr.npy'} is not a monotone "
                "CSR offset array starting at 0"
            )
        entries = int(indptr[-1])
        if entries != 2 * meta["num_edges"]:
            raise SnapshotFormatError(
                f"snapshot {directory}: indptr declares {entries} in-edge entries "
                f"but meta.json records {meta['num_edges']} friendships "
                f"(expected {2 * meta['num_edges']} entries)"
            )
        parents = _load_column(directory, "parents", entries, mmap)
        cum_weights = _load_column(directory, "cum_weights", entries, mmap)
        totals = _load_column(directory, "totals", n, mmap)
        alias_prob = _load_column(directory, "alias_prob", entries, mmap)
        alias_index = _load_column(directory, "alias_index", entries, mmap)

        compiled = object.__new__(cls)
        compiled.name = meta["name"]
        compiled.nodes = _MappedNodeIds(nodes_column)
        compiled.indptr = indptr
        compiled.parents = parents
        compiled.cum_weights = cum_weights
        compiled.totals = totals
        compiled._index = None
        compiled._num_edges = meta["num_edges"]
        compiled._alias = (alias_prob, alias_index)
        compiled._digest = meta["digest"]
        compiled._directory = directory
        compiled._mmap = mmap
        compiled._nodes_column = nodes_column
        compiled._contiguous = meta["contiguous_ids"]
        compiled._lookup = None
        compiled.graph_version = None
        if verify:
            compiled.verify_integrity()
        return compiled

    def reopen(self) -> None:
        """Re-map a mapped snapshot's columns from disk (no-op in RAM).

        :class:`~repro.parallel.engine.ParallelEngine` workers call this
        after fork so each worker holds its *own* read-only file mappings
        opened by path, instead of relying on mappings inherited from the
        parent -- per-worker RSS stays flat (page-cache pages are shared by
        the OS) and a worker outliving its parent keeps a valid view.
        The re-opened columns must carry the same digest; a snapshot that
        changed on disk raises
        :class:`~repro.exceptions.SnapshotIntegrityError`.
        """
        if self._directory is None:
            return
        fresh = type(self).open(self._directory, mmap=self._mmap)
        if fresh._digest != self._digest:
            raise SnapshotIntegrityError(
                f"snapshot {self._directory} changed on disk while in use "
                f"(digest {fresh._digest} != {self._digest})"
            )
        self.nodes = fresh.nodes
        self.indptr = fresh.indptr
        self.parents = fresh.parents
        self.cum_weights = fresh.cum_weights
        self.totals = fresh.totals
        self._alias = fresh._alias
        self._nodes_column = fresh._nodes_column
        self._lookup = None

    def csr_digest(self) -> str:
        """Digest of the snapshot's interned ids and weighted adjacency.

        24 hex chars of SHA-256 over ``repr(tuple(nodes))`` + the raw
        ``indptr``/``parents``/``cum_weights`` bytes
        (:func:`compute_csr_digest`) -- the fingerprint the sample pool
        keys its spill tags on and the matrix runner binds into protocol
        fingerprints.  Computed once and cached for in-memory snapshots;
        mapped snapshots return the digest recorded at compile time
        (O(1) -- use :meth:`verify_integrity` to re-hash the bytes).
        """
        if self._digest is None:
            self._digest = compute_csr_digest(
                self.nodes, self.indptr, self.parents, self.cum_weights
            )
        return self._digest

    def verify_integrity(self) -> str:
        """Re-hash the column bytes and check them against the known digest.

        Returns the digest on success.  For a mapped snapshot this streams
        the on-disk bytes (bounded memory) and raises
        :class:`~repro.exceptions.SnapshotIntegrityError` -- naming the
        snapshot directory -- if the columns no longer match the digest
        ``meta.json`` recorded, or if the recorded ``contiguous_ids`` flag
        misdescribes the ids.
        """
        recomputed = compute_csr_digest(self.nodes, self.indptr, self.parents, self.cum_weights)
        if self._digest is None:
            self._digest = recomputed
        elif recomputed != self._digest:
            raise SnapshotIntegrityError(
                f"snapshot {self._directory or '<in-memory>'} failed integrity "
                f"verification: column bytes hash to {recomputed}, metadata "
                f"records {self._digest}"
            )
        if self._directory is not None:
            ids = self._nodes_column
            contiguous = bool(ids.size == 0 or _np.array_equal(ids, _np.arange(ids.size)))
            if contiguous != self._contiguous:
                raise SnapshotIntegrityError(
                    f"snapshot {self._directory} failed integrity verification: "
                    "meta.json misdeclares contiguous_ids"
                )
        return recomputed

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """The number of users ``n`` (alias of :attr:`num_nodes`)."""
        return len(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        """Whether ``node`` is a user of the network."""
        return self._position(node) is not None

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        label = f" {self.name!r}" if self.name else ""
        mapped = f" mapped={str(self._directory)!r}" if self._directory is not None else ""
        return f"<CompiledGraph{label} n={self.num_nodes} m={self.num_edges}{mapped}>"

    @property
    def num_nodes(self) -> int:
        """The number of users ``n``."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """The number of friendships ``m`` (each stored twice in the CSR)."""
        return self._num_edges

    def _ensure_lookup(self):
        """The (sorted ids, argsort) lookup of a mapped snapshot, built lazily.

        O(n log n) once, O(n) resident (two int64 columns) -- the only
        per-node RAM a mapped snapshot ever materializes, and only when the
        ids are not the contiguous ``0..n-1`` fast path.
        """
        if self._lookup is None:
            ids = self._nodes_column
            sorter = _np.argsort(ids, kind="stable")
            self._lookup = (ids[sorter], sorter)
        return self._lookup

    def _position(self, node) -> "int | None":
        """Dense index of ``node``, or ``None`` when unknown."""
        if self._index is not None:
            return self._index.get(node)
        try:
            key = operator.index(node)
        except TypeError:
            return None
        n = len(self.nodes)
        if self._contiguous:
            return key if 0 <= key < n else None
        sorted_ids, sorter = self._ensure_lookup()
        try:
            pos = int(_np.searchsorted(sorted_ids, key))
        except (OverflowError, TypeError):  # pragma: no cover - exotic ints
            return None
        if pos < n and int(sorted_ids[pos]) == key:
            return int(sorter[pos])
        return None

    def index_of(self, node: NodeId) -> int:
        """Dense index of ``node``; raises :class:`NodeNotFoundError` if unknown."""
        position = self._position(node)
        if position is None:
            raise NodeNotFoundError(node)
        return position

    def node_at(self, index: int) -> NodeId:
        """The node id interned at ``index``."""
        return self.nodes[index]

    def indices_of(self, nodes: Iterable[NodeId]) -> frozenset:
        """Dense indices of the given nodes, silently skipping unknown ids.

        Unknown members of a stop set can never be reached by a walk, so
        dropping them preserves the dict-based sampling semantics exactly.
        """
        if self._index is not None:
            index = self._index
            return frozenset(index[node] for node in nodes if node in index)
        positions = (self._position(node) for node in nodes)
        return frozenset(position for position in positions if position is not None)

    # ------------------------------------------------------------------ #
    # Weighted structure (round-trips the source graph)
    # ------------------------------------------------------------------ #

    def degree(self, node: NodeId) -> int:
        """The number of current friends of ``node``."""
        i = self.index_of(node)
        return int(self.indptr[i + 1] - self.indptr[i])

    def total_in_weight(self, node: NodeId) -> float:
        """``sum_u w(u, node)`` (the model requires this to be <= 1)."""
        return float(self.totals[self.index_of(node)])

    def stop_probability(self, node: NodeId) -> float:
        """The precomputed tail probability that ``node`` selects nobody."""
        return max(0.0, 1.0 - self.total_in_weight(node))

    def in_weights(self, node: NodeId) -> dict:
        """``{u: w(u, node)}`` reconstructed from the CSR arrays."""
        i = self.index_of(node)
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        weights: dict = {}
        previous = 0.0
        for j in range(lo, hi):
            value = float(self.cum_weights[j])
            weights[self.nodes[self.parents[j]]] = value - previous
            previous = value
        return weights

    def weight(self, u: NodeId, v: NodeId) -> float:
        """``w(u, v)``: v's familiarity with u (0 for non-friends)."""
        self.index_of(u)
        return self.in_weights(v).get(u, 0.0)

    def edges(self) -> Iterator[tuple]:
        """Iterate over each friendship exactly once (arbitrary orientation)."""
        seen: set[int] = set()
        for v in range(self.num_nodes):
            for j in range(int(self.indptr[v]), int(self.indptr[v + 1])):
                u = int(self.parents[j])
                if u not in seen:
                    yield (self.nodes[v], self.nodes[u])
            seen.add(v)

    # ------------------------------------------------------------------ #
    # Read-only SocialGraph interface (problems, screening, service)
    # ------------------------------------------------------------------ #

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is a user of the network."""
        return self._position(node) is not None

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether ``u`` and ``v`` are currently friends."""
        iu = self._position(u)
        iv = self._position(v)
        if iu is None or iv is None:
            return False
        lo, hi = int(self.indptr[iv]), int(self.indptr[iv + 1])
        return iu in self.parents[lo:hi]

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over the current friends ``N_v`` of ``node``.

        Friendship is symmetric and both directions are stored, so a
        node's in-neighbour slice *is* its friend set -- in the same
        insertion order the source graph would report.
        """
        i = self.index_of(node)
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        nodes = self.nodes
        parents = self.parents
        return (nodes[parents[j]] for j in range(lo, hi))

    def neighbor_set(self, node: NodeId) -> frozenset:
        """The current friends ``N_v`` of ``node`` as a frozenset."""
        return frozenset(self.neighbors(node))

    def node_list(self) -> list:
        """All users as a list (insertion order)."""
        return list(self.nodes)

    def is_normalized(self) -> bool:
        """Whether every node's incoming weights sum to at most 1.

        A compiled snapshot originates from a validated graph (or from the
        streaming compiler's normalized weight schemes), so this reduces to
        checking the precomputed ``totals`` column against the model bound.
        """
        if len(self.totals) == 0:
            return True
        if hasattr(self.totals, "max"):  # numpy-backed mapped column
            largest = float(self.totals.max())
        else:
            largest = max(self.totals)
        return largest <= 1.0 + WEIGHT_SUM_TOLERANCE

    # ------------------------------------------------------------------ #
    # Sampling primitive
    # ------------------------------------------------------------------ #

    def select_parent(self, node_index: int, draw: float) -> int:
        """Index of the friend selected by ``node_index`` for a uniform ``draw``.

        Returns ``-1`` when the draw falls into the stop-probability tail
        (the node selects nobody).  This is the allocation-free binary-search
        equivalent of the dict-based linear scan: it returns the first
        neighbour whose running weight sum exceeds ``draw``.  Identical for
        in-memory and mapped snapshots: the running sums are the same
        float64 values wherever the column lives.
        """
        lo = int(self.indptr[node_index])
        hi = int(self.indptr[node_index + 1])
        j = bisect_right(self.cum_weights, draw, lo, hi)
        return int(self.parents[j]) if j < hi else -1

    def alias_tables(self) -> tuple:
        """Per-node Vose alias tables, flat and aligned to the CSR layout.

        Returns ``(alias_prob, alias_index)``, each of length
        ``len(self.parents)`` -- see :func:`build_alias_tables` for the
        lookup recipe and the bit-identity contract.  Built once per
        in-memory snapshot (O(n + m)) and cached; mapped snapshots return
        the precomputed on-disk columns directly, so the alias engine
        stays out-of-core.
        """
        if self._alias is not None:
            return self._alias
        alias_prob = array("d", bytes(8 * len(self.parents)))
        alias_index = array("q", bytes(8 * len(self.parents)))
        build_alias_tables(self.indptr, self.cum_weights, self.totals, alias_prob, alias_index)
        self._alias = (alias_prob, alias_index)
        return self._alias


def _write_snapshot_meta(directory: Path, meta: dict) -> None:
    """Write ``meta.json`` atomically (tmp + rename), completing a snapshot."""
    meta_path = directory / "meta.json"
    tmp_path = directory / "meta.json.tmp"
    try:
        tmp_path.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp_path, meta_path)
    except OSError as error:
        raise SnapshotError(f"cannot write snapshot metadata {meta_path}: {error}") from None


def compile_graph(graph: "SocialGraph | CompiledGraph") -> CompiledGraph:
    """Return the (cached) CSR snapshot of ``graph``.

    The snapshot is stored on the graph keyed by its mutation counter, so
    compiling is O(1) until the graph changes and O(n + m) after.  A
    :class:`CompiledGraph` -- including a mapped on-disk snapshot -- passes
    through unchanged (it is already frozen), so every call site that
    compiles its input accepts either representation.
    """
    if isinstance(graph, CompiledGraph):
        return graph
    cached = graph._compiled_cache
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    compiled = CompiledGraph(graph)
    compiled.graph_version = graph.version
    graph._compiled_cache = (graph.version, compiled)
    return compiled


def reverse_reachable(
    compiled: CompiledGraph,
    sources: Iterable[NodeId],
    *,
    max_hops: int = 64,
    max_nodes: int = 4096,
) -> "frozenset | None":
    """Nodes whose reverse-sampling walks could visit any of ``sources``.

    BFS over ``compiled`` from the ``sources`` against the direction of a
    backward walk: a walk positioned at ``a`` steps to in-neighbour ``b``
    exactly when ``w(b, a) > 0``, so a node ``a`` is *affected* by a change
    at ``b`` when there is a chain of positive-weight walk steps from ``a``
    to ``b``.  The returned frozenset (of node *ids*, sources included)
    over-approximates the affected set: a key whose target is outside it
    provably draws byte-identical paths before and after the change, which
    is the retention contract of the sample pool (DESIGN.md §10).

    Unknown source ids are skipped: a node absent from this snapshot cannot
    have been visited by any walk drawn on it.  Returns ``None`` when the
    frontier is still growing after ``max_hops`` levels or the visited set
    exceeds ``max_nodes`` — callers must then fall back to assuming every
    node is affected (full flush).
    """
    indptr = compiled.indptr
    parents = compiled.parents
    cum_weights = compiled.cum_weights
    visited = {
        position
        for position in (compiled._position(node) for node in sources)
        if position is not None
    }
    if len(visited) > max_nodes:
        return None
    frontier = list(visited)
    for _ in range(max_hops):
        if not frontier:
            break
        next_frontier: list[int] = []
        # Walk steps follow stored in-edges, so the nodes that can step
        # *into* ``b`` are exactly the nodes ``a`` whose in-row lists ``b``
        # with positive weight.  Friendship is symmetric: those ``a`` are
        # ``b``'s own CSR parents, filtered by ``w(b, a) > 0`` read from
        # ``a``'s row (entry j weighs cum[j] - cum[j-1]).
        for b in frontier:
            for k in range(indptr[b], indptr[b + 1]):
                a = int(parents[k])
                if a in visited:
                    continue
                lo = int(indptr[a])
                hi = int(indptr[a + 1])
                previous = 0.0  # cum_weights restarts at each row
                steps_into_b = False
                for j in range(lo, hi):
                    current = float(cum_weights[j])
                    if int(parents[j]) == b:
                        steps_into_b = current - previous > 0.0
                        break
                    previous = current
                if steps_into_b:
                    visited.add(a)
                    if len(visited) > max_nodes:
                        return None
                    next_frontier.append(a)
        frontier = next_frontier
    if frontier:
        return None
    node_at = compiled.nodes
    return frozenset(node_at[i] for i in sorted(visited))
