"""Frozen CSR snapshot of a :class:`SocialGraph` for allocation-free sampling.

Every quantity the RAF pipeline computes -- ``pmax`` (Alg. 2), the ``l``
reverse-sampled realizations (Alg. 3) and the Monte Carlo evaluation of
``f(I)`` -- boils down to millions of independent friend selections
(Def. 1).  Doing those selections against the mutable adjacency-dict
representation costs a mapping view plus an O(degree) linear scan per step.

:class:`CompiledGraph` freezes the graph once into contiguous arrays:

* node ids are interned to dense indices ``0..n-1`` (insertion order, so
  compiled sampling visits neighbours in exactly the same order as the
  dict-based code and stays bit-compatible with it for a fixed seed);
* ``indptr``/``parents`` form a CSR layout of each node's in-neighbours;
* ``cum_weights`` holds the *running* left-to-right sum of each node's
  incoming weights, so a friend selection is a single binary search of the
  node's slice with a uniform draw;
* ``totals`` holds each node's total incoming weight -- the complement
  ``1 - totals[i]`` is the precomputed probability that the node selects
  nobody (the stop-probability tail of Def. 1).

Snapshots are cached on the source graph and invalidated by its mutation
counter, so repeated calls to :func:`compile_graph` are free until the graph
actually changes.  The sampling engines in :mod:`repro.diffusion.engine`
consume these arrays directly.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Iterable, Iterator

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId

__all__ = ["CompiledGraph", "compile_graph"]


class CompiledGraph:
    """Immutable CSR view of a :class:`SocialGraph`.

    The public array attributes (``nodes``, ``indptr``, ``parents``,
    ``cum_weights``, ``totals``) are exposed for the sampling engines and
    must be treated as read-only; mutate the source graph and recompile
    instead.
    """

    __slots__ = ("name", "nodes", "indptr", "parents", "cum_weights", "totals", "_index", "_num_edges")

    def __init__(self, graph: SocialGraph) -> None:
        self.name = graph.name
        self.nodes: tuple = tuple(graph.nodes())
        self._index: dict = {node: i for i, node in enumerate(self.nodes)}
        indptr = array("q", [0])
        parents = array("q")
        cum_weights = array("d")
        totals = array("d")
        index = self._index
        for v in self.nodes:
            running = 0.0
            for u, weight in graph.in_weights(v).items():
                running += weight
                parents.append(index[u])
                cum_weights.append(running)
            totals.append(running)
            indptr.append(len(parents))
        self.indptr = indptr
        self.parents = parents
        self.cum_weights = cum_weights
        self.totals = totals
        self._num_edges = graph.num_edges

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        label = f" {self.name!r}" if self.name else ""
        return f"<CompiledGraph{label} n={self.num_nodes} m={self.num_edges}>"

    @property
    def num_nodes(self) -> int:
        """The number of users ``n``."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """The number of friendships ``m``."""
        return self._num_edges

    def index_of(self, node: NodeId) -> int:
        """Dense index of ``node``; raises :class:`NodeNotFoundError` if unknown."""
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_at(self, index: int) -> NodeId:
        """The node id interned at ``index``."""
        return self.nodes[index]

    def indices_of(self, nodes: Iterable[NodeId]) -> frozenset:
        """Dense indices of the given nodes, silently skipping unknown ids.

        Unknown members of a stop set can never be reached by a walk, so
        dropping them preserves the dict-based sampling semantics exactly.
        """
        index = self._index
        return frozenset(index[node] for node in nodes if node in index)

    # ------------------------------------------------------------------ #
    # Weighted structure (round-trips the source graph)
    # ------------------------------------------------------------------ #

    def degree(self, node: NodeId) -> int:
        """The number of current friends of ``node``."""
        i = self.index_of(node)
        return self.indptr[i + 1] - self.indptr[i]

    def total_in_weight(self, node: NodeId) -> float:
        """``sum_u w(u, node)`` (the model requires this to be <= 1)."""
        return self.totals[self.index_of(node)]

    def stop_probability(self, node: NodeId) -> float:
        """The precomputed tail probability that ``node`` selects nobody."""
        return max(0.0, 1.0 - self.total_in_weight(node))

    def in_weights(self, node: NodeId) -> dict:
        """``{u: w(u, node)}`` reconstructed from the CSR arrays."""
        i = self.index_of(node)
        lo, hi = self.indptr[i], self.indptr[i + 1]
        weights: dict = {}
        previous = 0.0
        for j in range(lo, hi):
            weights[self.nodes[self.parents[j]]] = self.cum_weights[j] - previous
            previous = self.cum_weights[j]
        return weights

    def weight(self, u: NodeId, v: NodeId) -> float:
        """``w(u, v)``: v's familiarity with u (0 for non-friends)."""
        self.index_of(u)
        return self.in_weights(v).get(u, 0.0)

    def edges(self) -> Iterator[tuple]:
        """Iterate over each friendship exactly once (arbitrary orientation)."""
        seen: set[int] = set()
        for v in range(self.num_nodes):
            for j in range(self.indptr[v], self.indptr[v + 1]):
                u = self.parents[j]
                if u not in seen:
                    yield (self.nodes[v], self.nodes[u])
            seen.add(v)

    # ------------------------------------------------------------------ #
    # Sampling primitive
    # ------------------------------------------------------------------ #

    def select_parent(self, node_index: int, draw: float) -> int:
        """Index of the friend selected by ``node_index`` for a uniform ``draw``.

        Returns ``-1`` when the draw falls into the stop-probability tail
        (the node selects nobody).  This is the allocation-free binary-search
        equivalent of the dict-based linear scan: it returns the first
        neighbour whose running weight sum exceeds ``draw``.
        """
        lo = self.indptr[node_index]
        hi = self.indptr[node_index + 1]
        j = bisect_right(self.cum_weights, draw, lo, hi)
        return self.parents[j] if j < hi else -1


def compile_graph(graph: SocialGraph) -> CompiledGraph:
    """Return the (cached) CSR snapshot of ``graph``.

    The snapshot is stored on the graph keyed by its mutation counter, so
    compiling is O(1) until the graph changes and O(n + m) after.
    """
    cached = graph._compiled_cache
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    compiled = CompiledGraph(graph)
    graph._compiled_cache = (graph.version, compiled)
    return compiled
