"""Frozen CSR snapshot of a :class:`SocialGraph` for allocation-free sampling.

Every quantity the RAF pipeline computes -- ``pmax`` (Alg. 2), the ``l``
reverse-sampled realizations (Alg. 3) and the Monte Carlo evaluation of
``f(I)`` -- boils down to millions of independent friend selections
(Def. 1).  Doing those selections against the mutable adjacency-dict
representation costs a mapping view plus an O(degree) linear scan per step.

:class:`CompiledGraph` freezes the graph once into contiguous arrays:

* node ids are interned to dense indices ``0..n-1`` (insertion order, so
  compiled sampling visits neighbours in exactly the same order as the
  dict-based code and stays bit-compatible with it for a fixed seed);
* ``indptr``/``parents`` form a CSR layout of each node's in-neighbours;
* ``cum_weights`` holds the *running* left-to-right sum of each node's
  incoming weights, so a friend selection is a single binary search of the
  node's slice with a uniform draw;
* ``totals`` holds each node's total incoming weight -- the complement
  ``1 - totals[i]`` is the precomputed probability that the node selects
  nobody (the stop-probability tail of Def. 1);
* :meth:`CompiledGraph.alias_tables` lazily builds per-node **alias tables**
  (Vose's method) as two flat columns aligned entry-for-entry with the CSR
  in-edge layout: ``alias_prob[j]`` is the probability of keeping entry
  ``j``'s own neighbour, ``alias_index[j]`` the node-local entry to fall
  through to otherwise.  With them a friend selection is O(1) -- one
  multiply, one floor, two gathers -- instead of an O(log degree) binary
  search.  The tables are a pure function of the CSR arrays (any digest of
  ``cum_weights`` also fingerprints them), built once per snapshot on first
  request and cached on it.

Snapshots are cached on the source graph and invalidated by its mutation
counter, so repeated calls to :func:`compile_graph` are free until the graph
actually changes.  The sampling engines in :mod:`repro.diffusion.engine`
consume these arrays directly.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Iterable, Iterator

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId

__all__ = ["CompiledGraph", "compile_graph"]


class CompiledGraph:
    """Immutable CSR view of a :class:`SocialGraph`.

    The public array attributes (``nodes``, ``indptr``, ``parents``,
    ``cum_weights``, ``totals``) are exposed for the sampling engines and
    must be treated as read-only; mutate the source graph and recompile
    instead.
    """

    __slots__ = (
        "name",
        "nodes",
        "indptr",
        "parents",
        "cum_weights",
        "totals",
        "_index",
        "_num_edges",
        "_alias",
    )

    def __init__(self, graph: SocialGraph) -> None:
        self.name = graph.name
        self.nodes: tuple = tuple(graph.nodes())
        self._index: dict = {node: i for i, node in enumerate(self.nodes)}
        indptr = array("q", [0])
        parents = array("q")
        cum_weights = array("d")
        totals = array("d")
        index = self._index
        for v in self.nodes:
            running = 0.0
            for u, weight in graph.in_weights(v).items():
                running += weight
                parents.append(index[u])
                cum_weights.append(running)
            totals.append(running)
            indptr.append(len(parents))
        self.indptr = indptr
        self.parents = parents
        self.cum_weights = cum_weights
        self.totals = totals
        self._num_edges = graph.num_edges
        self._alias = None  # (alias_prob, alias_index), built lazily

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        label = f" {self.name!r}" if self.name else ""
        return f"<CompiledGraph{label} n={self.num_nodes} m={self.num_edges}>"

    @property
    def num_nodes(self) -> int:
        """The number of users ``n``."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """The number of friendships ``m``."""
        return self._num_edges

    def index_of(self, node: NodeId) -> int:
        """Dense index of ``node``; raises :class:`NodeNotFoundError` if unknown."""
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_at(self, index: int) -> NodeId:
        """The node id interned at ``index``."""
        return self.nodes[index]

    def indices_of(self, nodes: Iterable[NodeId]) -> frozenset:
        """Dense indices of the given nodes, silently skipping unknown ids.

        Unknown members of a stop set can never be reached by a walk, so
        dropping them preserves the dict-based sampling semantics exactly.
        """
        index = self._index
        return frozenset(index[node] for node in nodes if node in index)

    # ------------------------------------------------------------------ #
    # Weighted structure (round-trips the source graph)
    # ------------------------------------------------------------------ #

    def degree(self, node: NodeId) -> int:
        """The number of current friends of ``node``."""
        i = self.index_of(node)
        return self.indptr[i + 1] - self.indptr[i]

    def total_in_weight(self, node: NodeId) -> float:
        """``sum_u w(u, node)`` (the model requires this to be <= 1)."""
        return self.totals[self.index_of(node)]

    def stop_probability(self, node: NodeId) -> float:
        """The precomputed tail probability that ``node`` selects nobody."""
        return max(0.0, 1.0 - self.total_in_weight(node))

    def in_weights(self, node: NodeId) -> dict:
        """``{u: w(u, node)}`` reconstructed from the CSR arrays."""
        i = self.index_of(node)
        lo, hi = self.indptr[i], self.indptr[i + 1]
        weights: dict = {}
        previous = 0.0
        for j in range(lo, hi):
            weights[self.nodes[self.parents[j]]] = self.cum_weights[j] - previous
            previous = self.cum_weights[j]
        return weights

    def weight(self, u: NodeId, v: NodeId) -> float:
        """``w(u, v)``: v's familiarity with u (0 for non-friends)."""
        self.index_of(u)
        return self.in_weights(v).get(u, 0.0)

    def edges(self) -> Iterator[tuple]:
        """Iterate over each friendship exactly once (arbitrary orientation)."""
        seen: set[int] = set()
        for v in range(self.num_nodes):
            for j in range(self.indptr[v], self.indptr[v + 1]):
                u = self.parents[j]
                if u not in seen:
                    yield (self.nodes[v], self.nodes[u])
            seen.add(v)

    # ------------------------------------------------------------------ #
    # Sampling primitive
    # ------------------------------------------------------------------ #

    def select_parent(self, node_index: int, draw: float) -> int:
        """Index of the friend selected by ``node_index`` for a uniform ``draw``.

        Returns ``-1`` when the draw falls into the stop-probability tail
        (the node selects nobody).  This is the allocation-free binary-search
        equivalent of the dict-based linear scan: it returns the first
        neighbour whose running weight sum exceeds ``draw``.
        """
        lo = self.indptr[node_index]
        hi = self.indptr[node_index + 1]
        j = bisect_right(self.cum_weights, draw, lo, hi)
        return self.parents[j] if j < hi else -1

    def alias_tables(self) -> tuple:
        """Per-node Vose alias tables, flat and aligned to the CSR layout.

        Returns ``(alias_prob, alias_index)``, each of length
        ``len(self.parents)``.  For a node ``v`` with in-degree ``d`` and
        CSR slice ``[lo, hi)``, an O(1) friend selection conditional on the
        walk *not* stopping (the caller handles the stop tail by comparing
        its uniform draw against ``totals[v]`` first) is::

            u = draw / totals[v]          # uniform on [0, 1) given no stop
            k = min(int(u * d), d - 1)    # the uniform cell
            if (u * d) - k < alias_prob[lo + k]:
                parent = parents[lo + k]
            else:
                parent = parents[lo + alias_index[lo + k]]

        ``alias_index`` entries are *node-local* (0-based within the node's
        slice), so the columns stay meaningful under the CSR alignment.
        The tables are built once per snapshot (O(n + m)) and cached; they
        are a pure function of ``indptr``/``cum_weights``/``totals``, so
        any digest covering those columns fingerprints the tables too.
        """
        if self._alias is not None:
            return self._alias
        alias_prob = array("d", bytes(8 * len(self.parents)))
        alias_index = array("q", bytes(8 * len(self.parents)))
        indptr = self.indptr
        cum_weights = self.cum_weights
        totals = self.totals
        for v in range(self.num_nodes):
            lo, hi = indptr[v], indptr[v + 1]
            degree = hi - lo
            if degree == 0:
                continue
            total = totals[v]
            if total <= 0.0:
                # Unreachable conditional on "no stop" (the stop tail is the
                # whole unit interval); keep the identity table as a benign
                # placeholder so lookups stay in range.
                for k in range(degree):
                    alias_prob[lo + k] = 1.0
                    alias_index[lo + k] = k
                continue
            # Vose's method over the normalized weights w_k / total.
            previous = 0.0
            scaled = []
            for j in range(lo, hi):
                weight = cum_weights[j] - previous
                previous = cum_weights[j]
                scaled.append(weight * degree / total)
            small = [k for k in range(degree) if scaled[k] < 1.0]
            large = [k for k in range(degree) if scaled[k] >= 1.0]
            while small and large:
                lesser = small.pop()
                greater = large.pop()
                alias_prob[lo + lesser] = scaled[lesser]
                alias_index[lo + lesser] = greater
                scaled[greater] -= 1.0 - scaled[lesser]
                if scaled[greater] < 1.0:
                    small.append(greater)
                else:
                    large.append(greater)
            # Float leftovers on either worklist carry probability ~1.
            for k in small + large:
                alias_prob[lo + k] = 1.0
                alias_index[lo + k] = k
        self._alias = (alias_prob, alias_index)
        return self._alias


def compile_graph(graph: SocialGraph) -> CompiledGraph:
    """Return the (cached) CSR snapshot of ``graph``.

    The snapshot is stored on the graph keyed by its mutation counter, so
    compiling is O(1) until the graph changes and O(n + m) after.
    """
    cached = graph._compiled_cache
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    compiled = CompiledGraph(graph)
    graph._compiled_cache = (graph.version, compiled)
    return compiled
