"""The Realization-based Active Friending (RAF) algorithm (Algorithms 2-4).

The end-to-end pipeline of :func:`run_raf`:

1. Solve Equation System 1 for ``(ε0, ε1, β)``
   (:func:`repro.core.parameters.solve_parameters`).
2. Estimate ``pmax`` with the Dagum et al. stopping rule over the type
   indicator of reverse-sampled realizations (Alg. 2,
   :func:`estimate_pmax`).
3. Choose the realization count ``l`` according to the configured policy
   (Eq. 16 or a practical substitute).
4. Sample ``l`` backward traces, keep the type-1 ones, and solve the MSC
   instance with target ``⌈β·|B¹|⌉`` using the Chlamtáč subroutine
   (Alg. 3, :func:`run_sampling_framework`).

The defaults in :class:`RAFConfig` favour the practical settings justified
in Sec. IV-E of the paper (and discussed in DESIGN.md); the theory-faithful
settings remain available through the config knobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import (
    ParameterCoupling,
    SamplePolicy,
    realization_count,
    solve_parameters,
)
from repro.core.problem import ActiveFriendingProblem
from repro.core.result import RAFResult
from repro.diffusion.engine import (
    SamplingEngine,
    create_engine,
    require_engine_name,
    resolve_engine,
)
from repro.estimation.stopping_rule import stopping_rule_estimate_batched
from repro.exceptions import AlgorithmError, EstimationError
from repro.graph.social_graph import SocialGraph
from repro.parallel.engine import (
    ParallelEngine,
    collect_type1,
    maybe_parallel,
    resolve_worker_count,
    sample_type1_indicators,
)
from repro.pool.sample_pool import STREAM_PMAX, STREAM_REALIZATIONS, SamplePool
from repro.setcover.hypergraph import SetSystem
from repro.setcover.msc import minimum_subset_cover
from repro.setcover.mpu import chlamtac_ratio_bound
from repro.types import NodeId
from repro.utils.rng import RandomSource, derive_rng, derive_seed, ensure_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import require, require_positive, require_positive_int

__all__ = ["RAFConfig", "PmaxEstimate", "estimate_pmax", "run_sampling_framework", "run_raf"]


@dataclass(frozen=True, slots=True)
class RAFConfig:
    """Tunable knobs of the RAF algorithm.

    Attributes
    ----------
    epsilon:
        The slack ``ε`` of Theorem 1 (must satisfy ``0 < ε < α``).
    confidence_n:
        The confidence parameter ``N``; the failure probability of the
        guarantees is ``2/N``.  The paper's experiments use ``N = 100000``.
    coupling:
        How the accuracy budget splits between ``ε0`` and ``ε1``
        (:class:`ParameterCoupling`); defaults to the numerically sensible
        BALANCED rule.
    sample_policy:
        How the realization count ``l`` is chosen (:class:`SamplePolicy`).
    fixed_realizations:
        The realization count used when ``sample_policy`` is FIXED.
    min_realizations, max_realizations:
        Clamp range for the PRACTICAL policy.
    pmax_epsilon:
        Relative error requested from the stopping-rule ``pmax`` estimate.
        ``None`` uses the solved ``ε0`` (theory-faithful but typically far
        too expensive); the default of 0.1 matches what the evaluation
        needs.
    pmax_max_samples:
        Cap on realizations spent estimating ``pmax``.  If the stopping
        rule does not terminate within the cap the estimate falls back to
        the plain sample mean over the consumed realizations (recorded in
        the result), and the run fails only if not a single type-1
        realization was seen.
    msc_solver:
        Which MSC solver to use (see :data:`repro.setcover.msc.MSC_SOLVERS`).
    engine:
        Name of the reverse-sampling backend used for every randomized step
        (``"python"``, ``"numpy"`` or ``"auto"``; see
        :mod:`repro.diffusion.engine`).  The default pure-Python engine is
        bit-compatible with pre-engine releases for a fixed seed.
    workers:
        Sampling worker processes (a positive integer or ``"auto"`` for the
        CPU count; see :mod:`repro.parallel.engine`).  ``None`` (default)
        keeps the historical single-stream path.  Any explicit count --
        including 1 -- selects the chunked deterministic fan-out, whose
        results are identical for every worker count under a fixed seed.
    pool:
        When true, the run draws every reverse sample through a shared
        :class:`~repro.pool.SamplePool` (seeded from the run's base
        generator via ``derive_seed(rng, "raf-pool")``), so repeated runs
        against the same pool -- e.g. query traffic for one (source,
        target) pair -- reuse cached samples instead of re-drawing them.
        Pooled runs are deterministic per seed and identical whether the
        pool is warm or cold, but follow the pool's labeled streams rather
        than the historical caller-rng stream (DESIGN.md §4).
    pool_budget:
        Optional cap on the total paths the pool keeps cached (least
        recently used keys are evicted first).
    """

    epsilon: float = 0.01
    confidence_n: float = 100_000.0
    coupling: ParameterCoupling | str = ParameterCoupling.BALANCED
    sample_policy: SamplePolicy | str = SamplePolicy.PRACTICAL
    fixed_realizations: int | None = None
    min_realizations: int = 1_000
    max_realizations: int = 50_000
    pmax_epsilon: float | None = 0.1
    pmax_max_samples: int = 500_000
    msc_solver: str = "chlamtac"
    engine: str = "python"
    workers: int | str | None = None
    pool: bool = False
    pool_budget: int | None = None

    def __post_init__(self) -> None:
        require_positive(self.epsilon, "epsilon")
        require_positive(self.confidence_n, "confidence_n")
        require_positive_int(self.pmax_max_samples, "pmax_max_samples")
        if self.pmax_epsilon is not None:
            require_positive(self.pmax_epsilon, "pmax_epsilon")
            require(self.pmax_epsilon <= 1.0, "pmax_epsilon must be at most 1")
        if self.fixed_realizations is not None:
            require_positive_int(self.fixed_realizations, "fixed_realizations")
        if self.pool_budget is not None:
            require_positive_int(self.pool_budget, "pool_budget")
        require_engine_name(self.engine)
        resolve_worker_count(self.workers)


@dataclass(frozen=True, slots=True)
class PmaxEstimate:
    """Outcome of the ``pmax`` estimation step (Alg. 2).

    ``method`` is ``"stopping-rule"`` when the Dagum et al. rule terminated
    within its sample cap and ``"sample-mean"`` when the capped fallback was
    used instead.
    """

    value: float
    num_samples: int
    method: str


def estimate_pmax(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    epsilon: float = 0.1,
    confidence_n: float = 100_000.0,
    max_samples: int = 500_000,
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
) -> PmaxEstimate:
    """Estimate ``pmax`` as the probability that a random realization is type-1.

    Runs the stopping rule of Alg. 2 over the type indicator ``y(ĝ)`` of
    reverse-sampled realizations, drawn from the sampling ``engine`` in
    geometrically growing batches (the rule still stops at exactly the same
    sample as a one-at-a-time run over the same stream).  ``workers``
    optionally fans the batches out over a worker pool
    (:func:`repro.parallel.engine.maybe_parallel`); the merged stream -- and
    so the estimate and the consumed sample count -- is identical for every
    worker count under a fixed seed.  If the rule does not terminate within
    ``max_samples`` (which happens when ``pmax`` is very small), the plain
    sample mean over the consumed realizations is returned instead; an
    :class:`AlgorithmError` is raised only if no type-1 realization was
    observed at all, since then there is no evidence the pair can ever be
    connected.

    With a ``pool`` (:class:`~repro.pool.SamplePool`), samples come from the
    pool's canonical per-key stream instead of the caller's ``rng``: the
    cached prefix *warm-starts* the stopping rule (no re-draw for samples an
    earlier query -- a screen, a previous estimate -- already paid for) and
    only the missing tail is drawn fresh.  Warm and cold pools return
    bit-identical estimates; the ``engine``/``workers``/``rng`` arguments
    are ignored in pool mode (the pool owns both engine and streams).
    """
    require_positive_int(max_samples, "max_samples")
    generator = ensure_rng(rng)
    source_friends = graph.neighbor_set(source)
    observed = {"count": 0, "successes": 0}

    if pool is not None:
        resolve_engine(graph, pool.engine)  # fail loudly on a foreign-graph pool
        reader = pool.reader(target, source_friends, stream=STREAM_PMAX)

        def warm_values():
            # The cached prefix, yielded lazily in bounded segments: the
            # stopping rule typically halts long before a large cache is
            # exhausted, so nothing past the halting sample is copied or
            # even read.  The rule consumes every yielded value (it only
            # abandons the iterator when it halts or raises), so the
            # reader's cursor stays aligned with the consumed stream and
            # draw_batch continues exactly where the warm prefix ended.
            # Indicators are read straight off the pool's columns -- no
            # path objects are materialized for the warm prefix either.
            while True:
                segment = min(reader.cached_remaining(), 4096)
                if segment <= 0:
                    return
                for value in reader.take_type1_bytes(segment):
                    observed["count"] += 1
                    observed["successes"] += value
                    yield value

        warm = warm_values()

        def draw_batch(size: int) -> bytes:
            values = reader.take_type1_bytes(size)
            observed["count"] += len(values)
            observed["successes"] += sum(values)
            return values

    else:
        warm = None
        resolved = maybe_parallel(resolve_engine(graph, engine), workers)

        def draw_batch(size: int) -> bytes:
            # One 0/1 byte per realization: with a parallel engine the type
            # indicators are computed worker-side and only these bytes cross
            # the process boundary.
            values = sample_type1_indicators(resolved, target, source_friends, size, rng=generator)
            observed["count"] += len(values)
            observed["successes"] += sum(values)
            return values

    try:
        result = stopping_rule_estimate_batched(
            draw_batch,
            epsilon=epsilon,
            delta=1.0 / confidence_n,
            max_samples=max_samples,
            warm_start=warm,
        )
        return PmaxEstimate(value=result.estimate, num_samples=result.num_samples, method="stopping-rule")
    except EstimationError:
        if observed["successes"] == 0:
            raise AlgorithmError(
                f"no type-1 realization observed in {observed['count']} samples; "
                "pmax for this (source, target) pair appears to be (near) zero"
            ) from None
        return PmaxEstimate(
            value=observed["successes"] / observed["count"],
            num_samples=observed["count"],
            method="sample-mean",
        )


def run_sampling_framework(
    problem: ActiveFriendingProblem,
    beta: float,
    num_realizations: int,
    msc_solver: str = "chlamtac",
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
) -> tuple[frozenset, dict]:
    """Algorithm 3: sample realizations and cover a ``β`` fraction of them.

    The ``l`` backward traces are drawn from the sampling ``engine`` in
    bounded batches over the problem's compiled graph (``workers`` fans the
    batches over a worker pool without changing the sampled realizations);
    only the type-1 traces are retained for the MSC instance.  Returns the
    invitation set together with a diagnostics dict holding the sampled
    counts (``num_type1``, ``cover_target``, ``covered_weight``).

    With a ``pool``, the ``l`` traces are the first ``l`` samples of the
    pool's realization stream for this (target, N_s) key -- cached traces
    are reused, only the missing tail is drawn, and the sampled set is the
    same whether the pool is warm or cold (``engine``/``workers``/``rng``
    are ignored in pool mode).

    Raises
    ------
    AlgorithmError
        If no type-1 realization was sampled (the MSC instance would be
        empty); increase ``num_realizations`` or check that the pair is
        connectable at all.
    """
    require_positive(beta, "beta")
    require(beta <= 1.0, "beta must be at most 1")
    require_positive_int(num_realizations, "num_realizations")
    generator = ensure_rng(rng)
    source_friends = problem.source_friends

    if pool is not None:
        resolve_engine(problem.compiled, pool.engine)
        # Order-preserving columnar filter: on batch-backed pools the
        # type-0 traces are skipped at the column level and never become
        # objects (identical to filtering pool.paths, minus the cost).
        paths = pool.type1_paths(
            problem.target, source_friends, num_realizations, stream=STREAM_REALIZATIONS
        )
        num_type1 = len(paths)
    else:
        resolved = maybe_parallel(resolve_engine(problem.compiled, engine), workers)
        paths, num_type1 = collect_type1(
            resolved, problem.target, source_friends, num_realizations, rng=generator
        )
    if num_type1 == 0:
        raise AlgorithmError(
            f"none of the {num_realizations} sampled realizations was type-1; "
            "the target appears unreachable from the initiator's circle"
        )

    system = SetSystem.from_target_paths(paths)
    cover_target = max(1, math.ceil(beta * num_type1))  # ⌈β·|B¹_l|⌉
    cover = minimum_subset_cover(system, cover_target, solver=msc_solver)
    diagnostics = {
        "num_realizations": num_realizations,
        "num_type1": num_type1,
        "cover_target": cover_target,
        "covered_weight": cover.covered_weight,
        "msc_solver": cover.solver,
    }
    return cover.cover, diagnostics


def run_raf(
    problem: ActiveFriendingProblem,
    config: RAFConfig | None = None,
    rng: RandomSource = None,
    pool: "SamplePool | None" = None,
    service=None,
) -> RAFResult:
    """Algorithm 4: the full RAF pipeline.

    Parameters
    ----------
    problem:
        The Minimum Active Friending instance (graph, initiator, target,
        ``α``).
    config:
        Algorithm knobs; ``None`` uses the practical defaults.
    rng:
        Seed or generator; the pmax-estimation and sampling steps receive
        independent streams derived from it.
    pool:
        Optional shared :class:`~repro.pool.SamplePool` serving this run's
        reverse samples.  Passing a long-lived pool across calls is how a
        query server amortizes sampling over repeated (source, target)
        traffic; with ``pool=None`` and ``config.pool`` set, a run-private
        pool is created (seeded via ``derive_seed(rng, "raf-pool")``).
    service:
        Optional :class:`~repro.service.QueryService` execution backend
        (mutually exclusive with ``pool``).  The run draws every reverse
        sample from the service's shared pool, and the pmax step is
        submitted *through* the service, so concurrent runs for the same
        pair coalesce onto one stopping-rule execution.  Results are
        byte-identical to a run against a standalone pool with the
        service's seed; ``config.engine``/``config.workers``/``config.pool``
        are ignored (the service owns the engine).

    Returns
    -------
    RAFResult
        The invitation set together with all intermediate quantities needed
        by the evaluation (``p*max``, ``l``, ``|B¹|``, coverage, the solved
        parameters and the ``2√|B¹|`` bound of Lemma 5).
    """
    config = config or RAFConfig()
    if service is not None and pool is not None:
        raise AlgorithmError(
            "pass either a pool or a service, not both: a service brings its own pool"
        )
    if service is not None and service.graph is not problem.graph:
        raise AlgorithmError(
            "the service was built on a different graph than this problem; "
            "every query a service answers runs against its own graph"
        )
    base_rng = ensure_rng(rng)
    pmax_rng = derive_rng(base_rng, "raf-pmax")
    sampling_rng = derive_rng(base_rng, "raf-sampling")

    stopwatch = Stopwatch().start()

    # One engine over one compiled snapshot drives every randomized step;
    # with config.workers set, one shared worker pool drains all of them.
    # A service supplies (and keeps owning) both the engine and the pool.
    if service is not None:
        pool = service.pool
        engine = pool.engine
    else:
        engine = maybe_parallel(create_engine(problem.compiled, config.engine), config.workers)
        if pool is None and config.pool:
            pool = SamplePool(
                engine, seed=derive_seed(base_rng, "raf-pool"), budget=config.pool_budget
            )

    # Step 1: parameters (Eq. 17 / Equation System 1).
    parameters = solve_parameters(
        alpha=problem.alpha,
        epsilon=config.epsilon,
        num_nodes=problem.num_nodes,
        coupling=config.coupling,
    )

    try:
        # Step 2: estimate pmax (Alg. 2).  Submitted through the service
        # when one is given, so identical concurrent runs coalesce.
        pmax_epsilon = (
            config.pmax_epsilon if config.pmax_epsilon is not None else parameters.epsilon_zero
        )
        if service is not None:
            pmax = service.estimate_pmax(
                problem.source,
                problem.target,
                epsilon=pmax_epsilon,
                confidence_n=config.confidence_n,
                max_samples=config.pmax_max_samples,
            )
        else:
            pmax = estimate_pmax(
                problem.graph,
                problem.source,
                problem.target,
                epsilon=pmax_epsilon,
                confidence_n=config.confidence_n,
                max_samples=config.pmax_max_samples,
                rng=pmax_rng,
                engine=engine,
                pool=pool,
            )

        # Step 3: choose the realization count l.
        num_realizations = realization_count(
            parameters,
            pmax_estimate=pmax.value,
            confidence_n=config.confidence_n,
            policy=config.sample_policy,
            fixed=config.fixed_realizations,
            min_realizations=config.min_realizations,
            max_realizations=config.max_realizations,
        )

        # Step 4: sampling framework + MSC (Alg. 3).  A service's pool is
        # shared with concurrent query executions, so it is consumed under
        # the service's execution lock.
        if service is not None:
            with service.locked_pool() as locked:
                invitation, diagnostics = run_sampling_framework(
                    problem,
                    beta=parameters.beta,
                    num_realizations=num_realizations,
                    msc_solver=config.msc_solver,
                    rng=sampling_rng,
                    engine=engine,
                    pool=locked,
                )
        else:
            invitation, diagnostics = run_sampling_framework(
                problem,
                beta=parameters.beta,
                num_realizations=num_realizations,
                msc_solver=config.msc_solver,
                rng=sampling_rng,
                engine=engine,
                pool=pool,
            )
    finally:
        # Only tear down an engine this run created; a service keeps its
        # worker pool warm across queries.
        if service is None and isinstance(engine, ParallelEngine):
            engine.close()

    elapsed = stopwatch.stop()
    return RAFResult(
        invitation=invitation,
        pmax_estimate=pmax.value,
        pmax_samples=pmax.num_samples,
        num_realizations=diagnostics["num_realizations"],
        num_type1=diagnostics["num_type1"],
        cover_target=diagnostics["cover_target"],
        covered_weight=diagnostics["covered_weight"],
        parameters=parameters,
        approx_ratio_bound=chlamtac_ratio_bound(max(diagnostics["num_type1"], 1)),
        msc_solver=diagnostics["msc_solver"],
        elapsed_seconds=elapsed,
    )
