"""The Minimum Active Friending problem instance (Problem 1).

Given a weighted friendship graph, an initiator ``s``, a target ``t`` and a
ratio ``α ∈ (0, 1]``, find the smallest invitation set ``I`` such that the
acceptance probability satisfies ``f(I) ≥ α · pmax``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ProblemDefinitionError
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.validation import require_in_open_closed_unit_interval

__all__ = ["ActiveFriendingProblem"]


@dataclass(frozen=True)
class ActiveFriendingProblem:
    """A Minimum Active Friending instance.

    Attributes
    ----------
    graph:
        The friendship graph with normalized familiarity weights.
    source:
        The initiator ``s`` who wants to friend the target.
    target:
        The target user ``t``.
    alpha:
        The required fraction of the maximum acceptance probability,
        ``α ∈ (0, 1]``.

    Raises
    ------
    ProblemDefinitionError
        If the instance is ill-formed: unknown users, ``s == t``, the two
        users are already friends, ``α`` outside ``(0, 1]``, or the graph's
        weights violate the threshold-model normalization.
    """

    graph: SocialGraph
    source: NodeId
    target: NodeId
    alpha: float = 0.1

    def __post_init__(self) -> None:
        if not self.graph.has_node(self.source):
            raise ProblemDefinitionError(f"initiator {self.source!r} is not in the graph")
        if not self.graph.has_node(self.target):
            raise ProblemDefinitionError(f"target {self.target!r} is not in the graph")
        if self.source == self.target:
            raise ProblemDefinitionError("the initiator and the target must be distinct users")
        if self.graph.has_edge(self.source, self.target):
            raise ProblemDefinitionError(
                f"{self.source!r} and {self.target!r} are already friends; "
                "active friending only applies to non-friend pairs"
            )
        try:
            require_in_open_closed_unit_interval(self.alpha, "alpha")
        except ValueError as exc:
            raise ProblemDefinitionError(str(exc)) from exc
        if not self.graph.is_normalized():
            raise ProblemDefinitionError(
                "the graph's familiarity weights are not normalized (some node's incoming "
                "weights exceed 1); apply a scheme from repro.graph.weights first"
            )

    @property
    def compiled(self) -> CompiledGraph:
        """The frozen CSR snapshot of the graph used by the sampling engines.

        Built once per (graph, version) and cached on the graph, so every
        estimator and sampler working on this problem shares one snapshot.
        """
        return compile_graph(self.graph)

    def sampling_engine(self, engine: "str | None" = None):
        """A sampling engine over this problem's compiled graph.

        ``engine`` is a backend name accepted by
        :func:`repro.diffusion.engine.create_engine`; ``None`` selects the
        default pure-Python backend.
        """
        from repro.diffusion.engine import create_engine

        return create_engine(self.compiled, engine or "python")

    @property
    def source_friends(self) -> frozenset:
        """The initiator's current circle ``N_s`` (the process starts from it)."""
        return self.graph.neighbor_set(self.source)

    @property
    def num_nodes(self) -> int:
        """The number of users ``n`` in the network."""
        return self.graph.num_nodes

    def with_alpha(self, alpha: float) -> "ActiveFriendingProblem":
        """Return a copy of the problem with a different ratio ``α``."""
        return ActiveFriendingProblem(self.graph, self.source, self.target, alpha)

    def candidate_nodes(self) -> frozenset:
        """Users that could meaningfully receive an invitation.

        Invitations to the initiator itself or to its existing friends are
        pointless (existing friends are already in the circle), so
        algorithms restrict their choices to the remaining users.  The
        target is always a candidate -- it must be invited for the process
        to succeed.
        """
        excluded = set(self.source_friends)
        excluded.add(self.source)
        return frozenset(node for node in self.graph.nodes() if node not in excluded)
