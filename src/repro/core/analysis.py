"""Diagnostics: checking a RAF run against its theoretical guarantees.

Theorem 1 promises two things about the RAF output with probability
``1 − 2/N``: the acceptance probability reaches ``(α − ε)·pmax`` and the
invitation set is within ``2√|B¹|`` of the optimal size.  Neither quantity
is observable directly (``pmax`` and the optimum are unknown), so this
module assembles the best *empirical* report a user can get:

* the achieved probability is re-estimated by simulating Process 1,
* ``pmax`` is re-estimated by simulating with every useful node invited
  (``Vmax``), and
* the optimal size is lower-bounded by 1 and upper-bounded by ``|Vmax|``.

The report is what the example scripts and the experiment harness print
when asked "did this run actually deliver what the theorem says?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import ActiveFriendingProblem
from repro.core.result import RAFResult
from repro.core.vmax import compute_vmax
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.utils.rng import RandomSource, derive_rng, ensure_rng
from repro.utils.validation import require_positive_int

__all__ = ["GuaranteeReport", "evaluate_guarantees"]


@dataclass(frozen=True, slots=True)
class GuaranteeReport:
    """Empirical check of the Theorem 1 guarantees for one RAF run.

    Attributes
    ----------
    achieved_probability:
        Simulated ``f(I*)``.
    pmax_simulated:
        Simulated ``f(Vmax)`` (equals ``pmax`` by Lemma 7), the reference
        the guarantee is measured against.
    required_probability:
        ``(α − ε) · pmax_simulated``.
    probability_guarantee_met:
        Whether the achieved probability reaches the requirement (within
        the Monte Carlo tolerance).
    invitation_size, vmax_size:
        ``|I*|`` and ``|Vmax|`` (the latter upper-bounds any optimal size).
    size_bound:
        The Lemma 5 bound ``2√|B¹|`` on ``|I*| / |Iα|``.
    monte_carlo_tolerance:
        The slack used when declaring the probability guarantee met
        (three standard errors of the estimates involved).
    """

    achieved_probability: float
    pmax_simulated: float
    required_probability: float
    probability_guarantee_met: bool
    invitation_size: int
    vmax_size: int
    size_bound: float
    monte_carlo_tolerance: float

    @property
    def achieved_fraction(self) -> float:
        """``f(I*) / pmax`` as simulated (0 when pmax is 0)."""
        if self.pmax_simulated <= 0.0:
            return 0.0
        return self.achieved_probability / self.pmax_simulated

    def as_rows(self) -> list[dict]:
        """The report as table rows for the text reporters."""
        return [
            {"quantity": "f(I*) simulated", "value": self.achieved_probability},
            {"quantity": "pmax simulated (f(Vmax))", "value": self.pmax_simulated},
            {"quantity": "(alpha - eps) * pmax", "value": self.required_probability},
            {"quantity": "guarantee met", "value": self.probability_guarantee_met},
            {"quantity": "|I*|", "value": self.invitation_size},
            {"quantity": "|Vmax|", "value": self.vmax_size},
            {"quantity": "size bound 2*sqrt(|B1|)", "value": self.size_bound},
        ]


def evaluate_guarantees(
    problem: ActiveFriendingProblem,
    result: RAFResult,
    epsilon: float,
    num_samples: int = 2000,
    rng: RandomSource = None,
) -> GuaranteeReport:
    """Simulate the quantities behind Theorem 1 for a finished RAF run.

    Parameters
    ----------
    problem:
        The instance that was solved.
    result:
        The RAF output to audit.
    epsilon:
        The ``ε`` the run was configured with (the guarantee is
        ``(α − ε)·pmax``).
    num_samples:
        Process-1 simulations per probability estimate.
    """
    require_positive_int(num_samples, "num_samples")
    generator = ensure_rng(rng)
    graph = problem.graph

    achieved = estimate_acceptance_probability(
        graph, problem.source, problem.target, result.invitation,
        num_samples=num_samples, rng=derive_rng(generator, "achieved"),
    )
    vmax = compute_vmax(graph, problem.source, problem.target)
    pmax = estimate_acceptance_probability(
        graph, problem.source, problem.target, vmax,
        num_samples=num_samples, rng=derive_rng(generator, "pmax"),
    )

    required = max(0.0, (problem.alpha - epsilon)) * pmax.probability
    tolerance = 3.0 * (achieved.std_error + pmax.std_error)
    met = achieved.probability >= required - tolerance
    return GuaranteeReport(
        achieved_probability=achieved.probability,
        pmax_simulated=pmax.probability,
        required_probability=required,
        probability_guarantee_met=met,
        invitation_size=result.size,
        vmax_size=len(vmax),
        size_bound=result.approx_ratio_bound,
        monte_carlo_tolerance=tolerance,
    )
