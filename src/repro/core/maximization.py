"""The maximum active friending variant (extension).

The paper studies the *minimization* problem (smallest invitation set
reaching ``α·pmax``).  The prior line of work (Yang et al. KDD'13, Yuan et
al.) studies the dual *maximization* problem: given an invitation budget
``k``, maximize the acceptance probability.  The realization machinery built
for RAF solves this variant almost for free -- sample backward traces,
then choose at most ``k`` nodes covering as much trace weight as possible
(:mod:`repro.setcover.budgeted`) -- so the library ships it as an
extension.  It is used by the extension benchmark and provides a RIS-style
counterpart to the simulation-greedy baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import InvitationResult
from repro.diffusion.engine import SamplingEngine, resolve_engine
from repro.exceptions import AlgorithmError, ProblemDefinitionError
from repro.graph.social_graph import SocialGraph
from repro.parallel.engine import collect_type1, maybe_parallel
from repro.pool.sample_pool import STREAM_REALIZATIONS, SamplePool
from repro.setcover.budgeted import budgeted_trace_cover
from repro.setcover.hypergraph import SetSystem
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive_int

__all__ = ["MaxFriendingResult", "maximize_acceptance_probability"]


@dataclass(frozen=True, slots=True)
class MaxFriendingResult:
    """Output of the budgeted (maximum) active friending solver.

    Attributes
    ----------
    invitation:
        The recommended invitation set (at most ``budget`` users).
    budget:
        The invitation budget that was given.
    num_realizations, num_type1:
        Sampling statistics of the run.
    covered_weight:
        How many sampled type-1 traces the invitation covers; the ratio
        ``covered_weight / num_type1`` estimates ``f(I)/pmax``.
    """

    invitation: frozenset
    budget: int
    num_realizations: int
    num_type1: int
    covered_weight: int

    @property
    def size(self) -> int:
        """Number of invited users."""
        return len(self.invitation)

    @property
    def estimated_fraction_of_pmax(self) -> float:
        """Sample estimate of the achieved fraction of ``pmax``."""
        if self.num_type1 == 0:
            return 0.0
        return self.covered_weight / self.num_type1

    def as_invitation_result(self) -> InvitationResult:
        """Downcast to the generic result shape used by the baselines."""
        return InvitationResult(
            invitation=self.invitation,
            algorithm="MaxRAF",
            metadata={
                "budget": self.budget,
                "num_realizations": self.num_realizations,
                "num_type1": self.num_type1,
                "covered_weight": self.covered_weight,
                "estimated_fraction_of_pmax": self.estimated_fraction_of_pmax,
            },
        )


def maximize_acceptance_probability(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    budget: int,
    num_realizations: int = 5000,
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
) -> MaxFriendingResult:
    """Choose at most ``budget`` users to invite so the target is most likely to accept.

    Samples ``num_realizations`` backward traces (exactly as RAF does --
    ``workers`` fans them over a pool without changing the seeded result)
    and greedily covers as much trace weight as the budget allows.  With a
    ``pool`` (:class:`~repro.pool.SamplePool`) the traces are the pool's
    canonical realization stream for this (target, N_s) key: evaluating
    several budgets against one pool re-draws nothing, and the result is
    identical whether the pool is warm or cold
    (``engine``/``workers``/``rng`` are ignored in pool mode).

    Raises
    ------
    ProblemDefinitionError
        If the pair is invalid (same user, already friends, unknown users,
        or unnormalized weights).
    AlgorithmError
        If no type-1 trace was sampled (the pair looks unreachable).
    """
    require_positive_int(budget, "budget")
    require_positive_int(num_realizations, "num_realizations")
    if not graph.has_node(source) or not graph.has_node(target):
        raise ProblemDefinitionError("both users must be members of the network")
    if source == target:
        raise ProblemDefinitionError("the initiator and the target must be distinct users")
    if graph.has_edge(source, target):
        raise ProblemDefinitionError("the users are already friends")
    if not graph.is_normalized():
        raise ProblemDefinitionError(
            "the graph's familiarity weights are not normalized; apply a weight scheme first"
        )

    generator = ensure_rng(rng)
    source_friends = graph.neighbor_set(source)
    if pool is not None:
        resolve_engine(graph, pool.engine)
        # Order-preserving columnar filter (see run_sampling_framework):
        # type-0 traces are skipped at the column level on batch-backed
        # pools and never become objects.
        paths = pool.type1_paths(
            target, source_friends, num_realizations, stream=STREAM_REALIZATIONS
        )
        num_type1 = len(paths)
    else:
        resolved = maybe_parallel(resolve_engine(graph, engine), workers)
        paths, num_type1 = collect_type1(
            resolved, target, source_friends, num_realizations, rng=generator
        )
    if num_type1 == 0:
        raise AlgorithmError(
            f"none of the {num_realizations} sampled realizations was type-1; "
            "the target appears unreachable from the initiator's circle"
        )

    system = SetSystem.from_target_paths(paths)
    cover = budgeted_trace_cover(system, budget)
    return MaxFriendingResult(
        invitation=cover.cover,
        budget=budget,
        num_realizations=num_realizations,
        num_type1=num_type1,
        covered_weight=cover.covered_weight,
    )
