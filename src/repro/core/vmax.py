"""The ``α = 1`` special case: computing ``Vmax`` (Lemma 7).

``Vmax`` is the set of users that lie on some path from the initiator's
circle ``{s} ∪ N_s`` to the target while staying outside ``{s} ∪ N_s``.
Lemma 7 shows it is the unique minimum invitation set achieving the maximum
acceptance probability ``pmax``, and Sec. IV-D compares its size against
the RAF solutions (Table II).

A node qualifies iff it appears in the backward trace ``t(g)`` of some
type-1 realization, which is equivalent to lying on a *simple* path from a
node adjacent to ``N_s`` to the target inside the graph with ``{s} ∪ N_s``
removed.  That simple-path membership question is answered exactly with the
block-cut-tree routine in :mod:`repro.graph.traversal`, using a virtual
super-source attached to every entry point.
"""

from __future__ import annotations

from repro.exceptions import ProblemDefinitionError
from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import nodes_on_simple_paths
from repro.types import NodeId

__all__ = ["compute_vmax", "pmax_upper_invitation"]


class _VirtualSource:
    """A sentinel node distinct from every real user (used as a super-source)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return "<virtual-source>"


def compute_vmax(graph: SocialGraph, source: NodeId, target: NodeId) -> frozenset:
    """Compute ``Vmax`` for the pair ``(source, target)``.

    Returns the empty set when the target cannot be reached at all (every
    realization is type-0, so ``pmax = 0`` and no invitation set helps).

    Raises
    ------
    ProblemDefinitionError
        If the two users coincide or are already friends (the active
        friending problem is not defined for such pairs).
    """
    if source == target:
        raise ProblemDefinitionError("the initiator and the target must be distinct users")
    if graph.has_edge(source, target):
        raise ProblemDefinitionError(
            f"{source!r} and {target!r} are already friends; Vmax is undefined"
        )
    source_friends = graph.neighbor_set(source)
    removed = set(source_friends)
    removed.add(source)

    # Work in the graph with {s} ∪ N_s removed; entry points are the nodes
    # that have at least one friend inside N_s.
    interior = graph.without_nodes(removed)
    entry_points = [
        node
        for node in interior.nodes()
        if any(friend in source_friends for friend in graph.neighbors(node))
    ]
    if not entry_points or not interior.has_node(target):
        return frozenset()

    augmented = interior.copy()
    virtual = _VirtualSource()
    augmented.add_node(virtual)
    for node in entry_points:
        augmented.add_edge(virtual, node)

    on_paths = nodes_on_simple_paths(augmented, virtual, target)
    return frozenset(node for node in on_paths if node is not virtual)


def pmax_upper_invitation(graph: SocialGraph, source: NodeId, target: NodeId) -> frozenset:
    """Alias of :func:`compute_vmax`: the minimum invitation set achieving ``pmax``.

    Provided under a task-oriented name for the public API; Lemma 7 shows
    the set is unique, so "the" minimum invitation set is well defined.
    """
    return compute_vmax(graph, source, target)
