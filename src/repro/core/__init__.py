"""The paper's primary contribution: the RAF algorithm and its supporting pieces.

* :mod:`repro.core.problem` -- the Minimum Active Friending problem instance
  (Problem 1).
* :mod:`repro.core.parameters` -- Equation System 1 / Eq. (17): solving for
  ``ε0``, ``ε1`` and ``β``, plus the realization-count policies.
* :mod:`repro.core.vmax` -- the ``α = 1`` special case (Lemma 7).
* :mod:`repro.core.raf` -- Algorithms 2-4: pmax estimation, the sampling +
  MSC framework, and the full RAF algorithm.
* :mod:`repro.core.result` -- result objects shared with the baselines.
"""

from repro.core.problem import ActiveFriendingProblem
from repro.core.parameters import (
    ParameterCoupling,
    RAFParameters,
    SamplePolicy,
    realization_count,
    solve_parameters,
)
from repro.core.vmax import compute_vmax, pmax_upper_invitation
from repro.core.result import InvitationResult, RAFResult
from repro.core.raf import RAFConfig, estimate_pmax, run_raf, run_sampling_framework
from repro.core.maximization import MaxFriendingResult, maximize_acceptance_probability
from repro.core.analysis import GuaranteeReport, evaluate_guarantees

__all__ = [
    "MaxFriendingResult",
    "maximize_acceptance_probability",
    "GuaranteeReport",
    "evaluate_guarantees",
    "ActiveFriendingProblem",
    "RAFParameters",
    "ParameterCoupling",
    "SamplePolicy",
    "solve_parameters",
    "realization_count",
    "compute_vmax",
    "pmax_upper_invitation",
    "InvitationResult",
    "RAFResult",
    "RAFConfig",
    "run_raf",
    "estimate_pmax",
    "run_sampling_framework",
]
