"""Result objects returned by the invitation-set algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.parameters import RAFParameters

__all__ = ["InvitationResult", "RAFResult"]


@dataclass(frozen=True)
class InvitationResult:
    """A generic invitation-set recommendation.

    All algorithms (RAF and the baselines) produce at least this much:
    which users to invite, which algorithm produced the recommendation, and
    a free-form metadata mapping with algorithm-specific diagnostics.
    """

    invitation: frozenset
    algorithm: str
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of invited users."""
        return len(self.invitation)

    def __contains__(self, node: object) -> bool:
        return node in self.invitation


@dataclass(frozen=True)
class RAFResult:
    """The full output of the RAF algorithm (Alg. 4).

    Attributes
    ----------
    invitation:
        The recommended invitation set ``I*``.
    pmax_estimate:
        The stopping-rule estimate ``p*max`` of the maximum acceptance
        probability (Alg. 2).
    pmax_samples:
        Number of realizations consumed by the pmax estimation step.
    num_realizations:
        The number ``l`` of realizations sampled by the framework (Alg. 3).
    num_type1:
        How many of them were type-1 (``|B¹_l|``).
    cover_target:
        The MSC requirement ``p = ⌈β·|B¹_l|⌉``.
    covered_weight:
        How many sampled type-1 realizations the output actually covers
        (``F(B_l, I*)``); always at least ``cover_target``.
    parameters:
        The solved ``(ε0, ε1, β)`` triple.
    approx_ratio_bound:
        The theoretical size bound ``2√|B¹_l|`` from Lemma 5.
    msc_solver:
        The MSC solver that produced the invitation set.
    elapsed_seconds:
        Wall-clock time of the full run.
    """

    invitation: frozenset
    pmax_estimate: float
    pmax_samples: int
    num_realizations: int
    num_type1: int
    cover_target: int
    covered_weight: int
    parameters: RAFParameters
    approx_ratio_bound: float
    msc_solver: str
    elapsed_seconds: float

    @property
    def size(self) -> int:
        """Number of invited users."""
        return len(self.invitation)

    @property
    def algorithm(self) -> str:
        """Algorithm identifier (mirrors :class:`InvitationResult`)."""
        return "RAF"

    @property
    def coverage_fraction(self) -> float:
        """Fraction of sampled type-1 realizations covered by the output.

        This is the sample estimate of ``f(I*)/pmax``; Lemma 4 guarantees
        the true ratio is at least ``(α − ε)`` with high probability.
        """
        if self.num_type1 == 0:
            return 0.0
        return self.covered_weight / self.num_type1

    def as_invitation_result(self) -> InvitationResult:
        """Downcast to the generic result shape used by the baselines."""
        return InvitationResult(
            invitation=self.invitation,
            algorithm=self.algorithm,
            metadata={
                "pmax_estimate": self.pmax_estimate,
                "num_realizations": self.num_realizations,
                "num_type1": self.num_type1,
                "cover_target": self.cover_target,
                "covered_weight": self.covered_weight,
                "coverage_fraction": self.coverage_fraction,
                "approx_ratio_bound": self.approx_ratio_bound,
                "msc_solver": self.msc_solver,
                "elapsed_seconds": self.elapsed_seconds,
            },
        )

    def __contains__(self, node: object) -> bool:
        return node in self.invitation
