"""Equation System 1 / Eq. (17): choosing ``ε0``, ``ε1``, ``β`` and ``l``.

The RAF analysis needs three coupled parameters:

* ``ε0`` -- relative error of the ``pmax`` estimate (Eq. 10),
* ``ε1`` -- uniform deviation allowed between ``F(B_l, I)/l`` and ``f(I)``
  (Eq. 11),
* ``β``  -- the fraction of the sampled type-1 realizations the MSC step
  must cover (Eq. 12),

subject to ``β(1 − ε1(1+ε0)) − ε1(1+ε0) = α − ε`` (Eq. 13) so that the
returned invitation set is guaranteed to reach ``(α − ε)·pmax``.

Writing ``x = ε1(1+ε0)``, Eqs. (12)-(13) reduce to the single scalar
equation ``(α − x)(1 − x)/(1 + x) − x = α − ε`` whose left side decreases
from ``α`` (at ``x = 0``) to below ``α − ε``, so the root is found by
bisection.  The split of ``x`` back into ``ε0`` and ``ε1`` is governed by a
*coupling* rule:

* ``PAPER`` -- the paper's choice ``ε0 = n·ε1`` (Eq. 17), which balances the
  asymptotic running times of the estimation and sampling steps but drives
  ``ε0`` above 1 for realistic ``n`` (making Eq. 16 vacuous -- see
  DESIGN.md);
* ``BALANCED`` -- ``ε0 = ε1``, the numerically sensible default.

The realization count ``l`` is then chosen by a :class:`SamplePolicy`:
``THEORETICAL`` evaluates Eq. (16) verbatim, ``PRACTICAL`` drops the
``2^n`` union-bound term (keeping the Chernoff machinery) and clamps to a
configurable range, and ``FIXED`` lets the caller dictate ``l`` directly --
which is what the paper's own experiments effectively do (Sec. IV-E shows
performance saturating far below the theoretical prescription).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.exceptions import ParameterSolverError
from repro.estimation.bounds import theoretical_realization_count
from repro.utils.validation import require, require_positive, require_positive_int

__all__ = [
    "ParameterCoupling",
    "SamplePolicy",
    "RAFParameters",
    "solve_parameters",
    "realization_count",
]


class ParameterCoupling(str, enum.Enum):
    """How the combined accuracy budget splits between ``ε0`` and ``ε1``."""

    #: The paper's Eq. (17) choice ``ε0 = n·ε1``.
    PAPER = "paper"
    #: The numerically practical choice ``ε0 = ε1``.
    BALANCED = "balanced"


class SamplePolicy(str, enum.Enum):
    """How the number of sampled realizations ``l`` is determined."""

    #: Eq. (16) verbatim (requires ``ε0 < 1``; astronomically conservative).
    THEORETICAL = "theoretical"
    #: Chernoff-based count without the 2^n union bound, clamped to a range.
    PRACTICAL = "practical"
    #: A caller-specified constant.
    FIXED = "fixed"


@dataclass(frozen=True, slots=True)
class RAFParameters:
    """The solved parameter triple plus the inputs that produced it."""

    alpha: float
    epsilon: float
    num_nodes: int
    coupling: ParameterCoupling
    epsilon_zero: float
    epsilon_one: float
    beta: float

    @property
    def x(self) -> float:
        """The combined deviation ``x = ε1(1+ε0)`` used in the scalar equation."""
        return self.epsilon_one * (1.0 + self.epsilon_zero)

    def residual(self) -> float:
        """How far Eq. (13) is from holding exactly (should be ~0)."""
        return self.beta * (1.0 - self.x) - self.x - (self.alpha - self.epsilon)


def _guarantee_gap(alpha: float, x: float) -> float:
    """Left side of Eq. (13) expressed through ``x`` (decreasing in ``x``)."""
    beta = (alpha - x) / (1.0 + x)
    return beta * (1.0 - x) - x


def solve_parameters(
    alpha: float,
    epsilon: float,
    num_nodes: int,
    coupling: ParameterCoupling | str = ParameterCoupling.BALANCED,
    tolerance: float = 1e-12,
) -> RAFParameters:
    """Solve Equation System 1 for ``ε0``, ``ε1`` and ``β``.

    Parameters
    ----------
    alpha:
        The problem's target ratio ``α ∈ (0, 1]``.
    epsilon:
        The allowed slack ``ε`` with ``0 < ε < α``; the output invitation
        set is guaranteed (w.h.p.) to reach ``(α − ε)·pmax``.
    num_nodes:
        The number of users ``n`` (only used by the PAPER coupling).
    coupling:
        How to split the combined budget between ``ε0`` and ``ε1``.

    Raises
    ------
    ParameterSolverError
        If ``epsilon`` does not satisfy ``0 < ε < α``.
    """
    require_positive(alpha, "alpha")
    require(alpha <= 1.0, "alpha must be at most 1")
    require_positive_int(num_nodes, "num_nodes")
    coupling = ParameterCoupling(coupling)
    if not 0.0 < epsilon < alpha:
        raise ParameterSolverError(
            f"epsilon must satisfy 0 < epsilon < alpha, got epsilon={epsilon}, alpha={alpha}"
        )

    # Bisection on x in (0, alpha): _guarantee_gap(alpha, 0) = alpha > alpha - epsilon
    # and _guarantee_gap(alpha, alpha) = -alpha < alpha - epsilon.
    target = alpha - epsilon
    low, high = 0.0, alpha
    for _ in range(200):
        mid = (low + high) / 2.0
        if _guarantee_gap(alpha, mid) > target:
            low = mid
        else:
            high = mid
        if high - low < tolerance:
            break
    x = (low + high) / 2.0

    if coupling is ParameterCoupling.PAPER:
        # epsilon0 = n * epsilon1  =>  n*eps1^2 + eps1 - x = 0.
        epsilon_one = (-1.0 + math.sqrt(1.0 + 4.0 * num_nodes * x)) / (2.0 * num_nodes)
        epsilon_zero = num_nodes * epsilon_one
    else:
        # epsilon0 = epsilon1  =>  eps1^2 + eps1 - x = 0.
        epsilon_one = (-1.0 + math.sqrt(1.0 + 4.0 * x)) / 2.0
        epsilon_zero = epsilon_one

    beta = (alpha - x) / (1.0 + x)
    if beta <= 0.0:
        raise ParameterSolverError(
            f"solved beta = {beta} is not positive (alpha={alpha}, epsilon={epsilon})"
        )
    return RAFParameters(
        alpha=alpha,
        epsilon=epsilon,
        num_nodes=num_nodes,
        coupling=coupling,
        epsilon_zero=epsilon_zero,
        epsilon_one=epsilon_one,
        beta=beta,
    )


def realization_count(
    parameters: RAFParameters,
    pmax_estimate: float,
    confidence_n: float,
    policy: SamplePolicy | str = SamplePolicy.PRACTICAL,
    fixed: int | None = None,
    min_realizations: int = 1_000,
    max_realizations: int = 50_000,
) -> int:
    """Determine the number of realizations ``l`` for the sampling framework.

    ``THEORETICAL`` evaluates Eq. (16) exactly (and therefore requires the
    solved ``ε0`` to be below 1 -- use the BALANCED coupling).  ``PRACTICAL``
    keeps the same Chernoff form but replaces the ``n·ln 2`` union-bound
    term with ``ln n`` and clamps the result to
    ``[min_realizations, max_realizations]``; the clamp is deliberate and
    mirrors the empirical observation of Sec. IV-E that performance
    saturates orders of magnitude below the worst-case prescription.
    ``FIXED`` returns the caller-supplied count unchanged.
    """
    policy = SamplePolicy(policy)
    require_positive(confidence_n, "confidence_n")
    if policy is SamplePolicy.FIXED:
        if fixed is None:
            raise ParameterSolverError("SamplePolicy.FIXED requires the 'fixed' realization count")
        return require_positive_int(fixed, "fixed")
    require_positive(pmax_estimate, "pmax_estimate")
    if policy is SamplePolicy.THEORETICAL:
        if parameters.epsilon_zero >= 1.0:
            raise ParameterSolverError(
                "Eq. (16) requires epsilon0 < 1; the PAPER coupling yields "
                f"epsilon0 = {parameters.epsilon_zero:.3f} for n = {parameters.num_nodes}. "
                "Use the BALANCED coupling or the PRACTICAL policy."
            )
        return theoretical_realization_count(
            num_nodes=parameters.num_nodes,
            confidence_n=confidence_n,
            epsilon_one=parameters.epsilon_one,
            epsilon_zero=parameters.epsilon_zero,
            pmax_estimate=pmax_estimate,
        )
    # PRACTICAL: Chernoff count with a ln(n) rather than n*ln(2) union term.
    require_positive_int(min_realizations, "min_realizations")
    require_positive_int(max_realizations, "max_realizations")
    require(
        min_realizations <= max_realizations,
        "min_realizations must not exceed max_realizations",
    )
    epsilon_one = parameters.epsilon_one
    effective = max(epsilon_one, 1e-6)
    log_term = math.log(2.0) + math.log(confidence_n) + math.log(max(parameters.num_nodes, 2))
    raw = log_term * (2.0 + effective) / (effective**2 * pmax_estimate)
    return int(min(max(math.ceil(raw), min_realizations), max_realizations))
