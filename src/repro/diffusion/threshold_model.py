"""Process 1: the linear-threshold friending process.

Each user ``v`` draws a threshold ``θ_v ~ U[0, 1]``.  Starting from the
initiator's current friends ``C_0 = N_s``, the process repeatedly admits any
*invited* user whose friends inside the current circle carry total
familiarity weight at least the user's threshold:

    C_{i+1} = C_i ∪ (Φ(C_i) ∩ I),   Φ(C) = {u ∉ C : Σ_{v∈C} w(v, u) ≥ θ_u}

and stops when no invited user can be added or the target joins.  The
acceptance probability ``f(I)`` is the probability (over the thresholds)
that the target ends up in the final circle.

The implementation below is incremental: instead of recomputing
``Σ_{v∈C} w(v, u)`` from scratch each round, it maintains the accumulated
influence of every frontier user and only pushes updates along the edges of
newly admitted members, so a full simulation costs O(m) in the worst case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng

__all__ = [
    "FriendingOutcome",
    "sample_thresholds",
    "run_threshold_process",
    "simulate_friending",
]


@dataclass(frozen=True, slots=True)
class FriendingOutcome:
    """The result of one friending-process simulation.

    Attributes
    ----------
    success:
        Whether the target joined the initiator's friend circle.
    final_friends:
        The final circle ``C_∞(I)`` (initial friends plus everyone who
        accepted during the process).
    new_friends:
        The users who accepted an invitation during this run
        (``C_∞(I) \\ N_s``).
    rounds:
        How many rounds the process ran before terminating.
    """

    success: bool
    final_friends: frozenset
    new_friends: frozenset
    rounds: int


def sample_thresholds(graph: SocialGraph, rng: RandomSource = None) -> dict:
    """Draw a uniform-[0, 1] threshold for every user (the model of Sec. II-A)."""
    generator = ensure_rng(rng)
    return {node: generator.random() for node in graph.nodes()}


def run_threshold_process(
    graph: SocialGraph,
    source: NodeId,
    invitation: Iterable[NodeId],
    thresholds: Mapping[NodeId, float],
    target: NodeId | None = None,
) -> FriendingOutcome:
    """Run Process 1 with explicit thresholds (deterministic given them).

    Parameters
    ----------
    graph:
        The friendship graph with familiarity weights.
    source:
        The initiator ``s``; the process starts from its friend circle.
    invitation:
        The invitation set ``I``: only these users can join the circle.
    thresholds:
        The realized thresholds ``θ_v`` for every user that might be asked
        to accept; missing users are treated as having threshold > 1 (never
        accept), which is convenient for partial maps in tests.
    target:
        When given, the process additionally stops as soon as the target
        joins (matching the paper's termination rule) and ``success``
        reflects membership of the target.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if target is not None and not graph.has_node(target):
        raise NodeNotFoundError(target)

    initial = graph.neighbor_set(source)
    invited = frozenset(invitation)
    circle: set[NodeId] = set(initial)
    # accumulated[u] = Σ_{v ∈ circle} w(v, u) for users u not yet in the circle.
    accumulated: dict[NodeId, float] = {}

    def push_influence(members: Iterable[NodeId]) -> set:
        """Propagate the influence of newly added members; return new acceptors."""
        acceptors: set[NodeId] = set()
        for member in members:
            for neighbor in graph.neighbors(member):
                if neighbor in circle:
                    continue
                accumulated[neighbor] = accumulated.get(neighbor, 0.0) + graph.weight(
                    member, neighbor
                )
                if neighbor in invited and accumulated[neighbor] >= thresholds.get(neighbor, 2.0):
                    acceptors.add(neighbor)
        return acceptors

    rounds = 0
    newly_added = set(initial)
    success = target is not None and target in circle
    while newly_added and not success:
        acceptors = push_influence(newly_added)
        acceptors -= circle
        if not acceptors:
            break
        rounds += 1
        circle.update(acceptors)
        for node in acceptors:
            accumulated.pop(node, None)
        newly_added = acceptors
        if target is not None and target in circle:
            success = True

    final = frozenset(circle)
    return FriendingOutcome(
        success=(target in final) if target is not None else False,
        final_friends=final,
        new_friends=frozenset(final - initial),
        rounds=rounds,
    )


def simulate_friending(
    graph: SocialGraph,
    source: NodeId,
    invitation: Iterable[NodeId],
    target: NodeId | None = None,
    rng: RandomSource = None,
) -> FriendingOutcome:
    """Run one random simulation of Process 1 (thresholds drawn uniformly)."""
    thresholds = sample_thresholds(graph, rng)
    return run_threshold_process(graph, source, invitation, thresholds, target=target)
