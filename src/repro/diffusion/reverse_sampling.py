"""Lazy reverse sampling of the backward trace ``t(ĝ)`` (Remark 3).

The RAF algorithm only ever needs the traced set ``t(g)`` of a random
realization, never the full realization.  Following the reverse-sampling
idea of Borgs et al., :func:`sample_target_path` draws the friend choice
``g(v)`` lazily, only for the users actually encountered while walking
backwards from the target, so one sample costs time proportional to the
length of the traced path (worst case O(m), typically far less).

The lazily generated marginal matches Def. 1 exactly: each visited user
independently selects friend ``u`` with probability ``w(u, v)`` and nobody
with the leftover probability, and the walk stops under the same three
conditions as Algorithm 1.

These functions are thin convenience wrappers over the batch engines of
:mod:`repro.diffusion.engine`: the walk itself runs on the compiled CSR
snapshot (cached on the graph), replacing the historical per-step dict scan
with an allocation-free binary search while consuming the random stream
identically -- the same seed yields the same paths it always did.  Code on
a hot path should hold a :class:`~repro.diffusion.engine.SamplingEngine`
and call ``sample_paths`` directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.diffusion.engine import TargetPath, default_engine
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_non_negative_int

__all__ = ["TargetPath", "sample_target_path", "sample_target_paths"]


def sample_target_path(
    graph: SocialGraph,
    target: NodeId,
    source_friends: Iterable[NodeId],
    rng: RandomSource = None,
) -> TargetPath:
    """Sample one backward trace ``t(ĝ)`` of a random realization.

    Parameters
    ----------
    graph:
        The weighted friendship graph (must be normalized).
    target:
        The target user ``t``.
    source_friends:
        The initiator's current circle ``N_s``; reaching it terminates the
        walk with a type-1 result.
    rng:
        Seed or generator.
    """
    return default_engine(graph).sample_path(target, source_friends, rng=rng)


def sample_target_paths(
    graph: SocialGraph,
    target: NodeId,
    source_friends: Iterable[NodeId],
    count: int,
    rng: RandomSource = None,
) -> Iterator[TargetPath]:
    """Yield ``count`` independent backward traces (a generator, lazily evaluated).

    One path is drawn per ``next()``, so a shared ``rng`` advances exactly
    one path's worth of draws per consumed element (the historical stream
    contract for partial consumption).  Batch consumers should call
    ``engine.sample_paths`` directly instead, which amortizes per-path
    overhead.
    """
    require_non_negative_int(count, "count")
    generator = ensure_rng(rng)
    engine = default_engine(graph)
    stop_set = frozenset(source_friends)
    for _ in range(count):
        yield engine.sample_path(target, stop_set, rng=generator)
