"""Lazy reverse sampling of the backward trace ``t(ĝ)`` (Remark 3).

The RAF algorithm only ever needs the traced set ``t(g)`` of a random
realization, never the full realization.  Following the reverse-sampling
idea of Borgs et al., :func:`sample_target_path` draws the friend choice
``g(v)`` lazily, only for the users actually encountered while walking
backwards from the target, so one sample costs time proportional to the
length of the traced path (worst case O(m), typically far less).

The lazily generated marginal matches Def. 1 exactly: each visited user
independently selects friend ``u`` with probability ``w(u, v)`` and nobody
with the leftover probability, and the walk stops under the same three
conditions as Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng

__all__ = ["TargetPath", "sample_target_path", "sample_target_paths"]


@dataclass(frozen=True, slots=True)
class TargetPath:
    """One sampled backward trace ``t(ĝ)``.

    Attributes
    ----------
    nodes:
        The traced users (always contains the target).  For a type-0
        realization these are the users visited before the walk died; they
        are retained for diagnostics but can never be covered.
    is_type1:
        Whether the walk reached the initiator's friend circle, i.e.
        whether ℵ0 ∉ t(g) (Definition 2).  Only type-1 paths can contribute
        to the acceptance probability.
    anchor:
        For a type-1 path, the friend of the initiator that the walk
        reached (the ``u* ∈ N_s`` of Alg. 1, *not* part of ``t(g)``);
        ``None`` for type-0 paths.
    """

    nodes: frozenset
    is_type1: bool
    anchor: NodeId | None = None

    def covered_by(self, invitation: Iterable[NodeId]) -> bool:
        """Whether an invitation set covers this realization (Lemma 2).

        A type-0 path is never covered; a type-1 path is covered iff every
        traced user received an invitation.
        """
        if not self.is_type1:
            return False
        invited = invitation if isinstance(invitation, (set, frozenset)) else frozenset(invitation)
        return self.nodes <= invited

    def __len__(self) -> int:
        return len(self.nodes)


def _select_friend(graph: SocialGraph, node: NodeId, generator) -> NodeId | None:
    """Sample the single friend selected by ``node`` (Def. 1), or None."""
    draw = generator.random()
    cumulative = 0.0
    for friend, weight in graph.in_weights(node).items():
        cumulative += weight
        if draw < cumulative:
            return friend
    return None


def sample_target_path(
    graph: SocialGraph,
    target: NodeId,
    source_friends: Iterable[NodeId],
    rng: RandomSource = None,
) -> TargetPath:
    """Sample one backward trace ``t(ĝ)`` of a random realization.

    Parameters
    ----------
    graph:
        The weighted friendship graph (must be normalized).
    target:
        The target user ``t``.
    source_friends:
        The initiator's current circle ``N_s``; reaching it terminates the
        walk with a type-1 result.
    rng:
        Seed or generator.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    generator = ensure_rng(rng)
    stop_set = source_friends if isinstance(source_friends, (set, frozenset)) else frozenset(source_friends)

    traced: set[NodeId] = {target}
    current = target
    while True:
        parent = _select_friend(graph, current, generator)
        if parent is None:
            return TargetPath(nodes=frozenset(traced), is_type1=False)
        if parent in traced:
            return TargetPath(nodes=frozenset(traced), is_type1=False)
        if parent in stop_set:
            return TargetPath(nodes=frozenset(traced), is_type1=True, anchor=parent)
        traced.add(parent)
        current = parent


def sample_target_paths(
    graph: SocialGraph,
    target: NodeId,
    source_friends: Iterable[NodeId],
    count: int,
    rng: RandomSource = None,
) -> Iterator[TargetPath]:
    """Yield ``count`` independent backward traces (a generator, lazily evaluated)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    generator = ensure_rng(rng)
    stop_set = frozenset(source_friends)
    for _ in range(count):
        yield sample_target_path(graph, target, stop_set, rng=generator)
