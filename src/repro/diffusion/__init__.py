"""Friending-process machinery: the LT model, realizations, reverse sampling.

This package implements the stochastic substrate of the paper:

* Process 1 -- the linear-threshold friending process driven by random
  thresholds (:mod:`repro.diffusion.threshold_model`), plus Monte Carlo
  estimation of the acceptance probability ``f(I)``
  (:mod:`repro.diffusion.friending_process`).
* Definition 1 / Process 2 -- realizations, the live-edge derandomization of
  the process (:mod:`repro.diffusion.realization`).
* Algorithm 1 -- the backward trace ``t(g)`` and its lazy, reverse-sampling
  implementation (:mod:`repro.diffusion.reverse_sampling`), the workhorse of
  the RAF algorithm.
* The batch sampling engines (:mod:`repro.diffusion.engine`) that run the
  reverse walks on the compiled CSR snapshot -- a pure-Python backend plus
  an optional numpy-vectorized one, selected by name -- and the columnar
  :class:`~repro.diffusion.path_batch.PathBatch` representation
  (:mod:`repro.diffusion.path_batch`) the vectorized backend emits
  natively.
* An independent-cascade variant (:mod:`repro.diffusion.cascade_model`) used
  for the discussion of the Yang et al. line of work (extension; not needed
  by RAF itself).
"""

from repro.diffusion.path_batch import PathBatch, PathStore
from repro.diffusion.engine import (
    ENGINE_NAMES,
    NumpyAliasEngine,
    NumpyEngine,
    PythonEngine,
    SamplingEngine,
    available_engines,
    create_engine,
    default_engine,
    numpy_available,
)
from repro.diffusion.threshold_model import (
    FriendingOutcome,
    run_threshold_process,
    sample_thresholds,
    simulate_friending,
)
from repro.diffusion.friending_process import (
    AcceptanceEstimate,
    estimate_acceptance_probability,
    estimate_pmax_fixed_samples,
)
from repro.diffusion.realization import (
    Realization,
    forward_process,
    sample_realization,
    trace_target_path,
)
from repro.diffusion.reverse_sampling import TargetPath, sample_target_path, sample_target_paths
from repro.diffusion.cascade_model import simulate_cascade_friending, estimate_cascade_probability

__all__ = [
    "FriendingOutcome",
    "simulate_friending",
    "run_threshold_process",
    "sample_thresholds",
    "AcceptanceEstimate",
    "estimate_acceptance_probability",
    "estimate_pmax_fixed_samples",
    "Realization",
    "sample_realization",
    "forward_process",
    "trace_target_path",
    "TargetPath",
    "PathBatch",
    "PathStore",
    "sample_target_path",
    "sample_target_paths",
    "SamplingEngine",
    "PythonEngine",
    "NumpyAliasEngine",
    "NumpyEngine",
    "ENGINE_NAMES",
    "available_engines",
    "create_engine",
    "default_engine",
    "numpy_available",
    "simulate_cascade_friending",
    "estimate_cascade_probability",
]
