"""Columnar (CSR-of-paths) batches of reverse-sampled target paths.

Everything the RAF pipeline does with randomness reduces to drawing
backward traces ``t(ĝ)`` (Remark 3), and every estimator above the engine
consumes *functions of* those traces: the type indicator ``y(ĝ)`` for
``pmax`` (Alg. 2 / Corollary 2), the Lemma-2 covered-trace indicator for
``f(I)``, and the type-1 node sets for the MSC instance (Alg. 3).  Holding
each trace as a Python :class:`TargetPath` (a ``frozenset`` per sample)
makes the *object materialization* the dominant cost of the vectorized
sampling backend — the per-path ``frozenset`` construction outweighs the
``searchsorted`` step that actually samples.

:class:`PathBatch` keeps a whole batch in flat columns instead:

* ``offsets``/``node_indices`` — a CSR layout of the traced node sets,
  path ``i`` owning the dense node indices
  ``node_indices[offsets[i]:offsets[i+1]]`` (the
  :class:`~repro.graph.compiled.CompiledGraph` interning; the target is
  always the first entry);
* ``is_type1`` — one flag per path (whether the walk reached ``N_s``);
* ``anchor_indices`` — the dense index of the type-1 anchor ``u* ∈ N_s``
  (``-1`` for type-0 paths).

Batches are produced natively by the vectorized engine
(:meth:`repro.diffusion.engine.NumpyEngine.sample_path_batch`), travel
between worker processes as packed array buffers (pickling drops the graph
reference so only the columns cross the process boundary), are stored
per-key by the sample pool (:class:`PathStore`), and are spilled to disk
as ``.npz`` array blobs.  Indicator reductions (:meth:`PathBatch.
type1_bytes`, :meth:`PathBatch.covered_bytes`) run directly on the columns
— no per-path objects are ever created on those paths.  Full back-compat
is kept through *lazy views*: :meth:`PathBatch.path`, iteration and
:meth:`PathBatch.to_paths` materialize bit-identical :class:`TargetPath`
objects on demand.

The module degrades cleanly without numpy: columns fall back to stdlib
``array``/``bytearray`` storage with loop-based reductions, and only the
``.npz`` persistence requires numpy.  See DESIGN.md §6 for the layout and
the draw-compatibility contract.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.types import NodeId

try:  # optional dependency: vectorized reductions and .npz persistence only
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.compiled import CompiledGraph

__all__ = ["TargetPath", "PathBatch", "PathStore"]


@dataclass(frozen=True, slots=True)
class TargetPath:
    """One sampled backward trace ``t(ĝ)``.

    Attributes
    ----------
    nodes:
        The traced users (always contains the target).  For a type-0
        realization these are the users visited before the walk died; they
        are retained for diagnostics but can never be covered.
    is_type1:
        Whether the walk reached the initiator's friend circle, i.e.
        whether ℵ0 ∉ t(g) (Definition 2).  Only type-1 paths can contribute
        to the acceptance probability.
    anchor:
        For a type-1 path, the friend of the initiator that the walk
        reached (the ``u* ∈ N_s`` of Alg. 1, *not* part of ``t(g)``);
        ``None`` for type-0 paths.
    """

    nodes: frozenset
    is_type1: bool
    anchor: NodeId | None = None

    def covered_by(self, invitation: Iterable[NodeId]) -> bool:
        """Whether an invitation set covers this realization (Lemma 2).

        A type-0 path is never covered; a type-1 path is covered iff every
        traced user received an invitation.
        """
        if not self.is_type1:
            return False
        invited = invitation if isinstance(invitation, (set, frozenset)) else frozenset(invitation)
        return self.nodes <= invited

    def __len__(self) -> int:
        return len(self.nodes)


def _tolist(column) -> list:
    """Plain-list view of a column regardless of its backing storage."""
    if isinstance(column, (bytes, bytearray)):
        return list(column)
    return column.tolist()


def _is_ndarray(column) -> bool:
    return _np is not None and isinstance(column, _np.ndarray)


def _invitation_mask(graph, invitation: Iterable[NodeId]):
    """Dense boolean membership mask of an invitation over ``graph``'s interning."""
    invited = graph.indices_of(invitation)
    mask = _np.zeros(len(graph), dtype=bool)
    if invited:
        mask[_np.fromiter(invited, dtype=_np.int64, count=len(invited))] = True
    return mask


class PathBatch:
    """A batch of backward traces held as flat columns (see module docstring).

    The column attributes are read-only by convention; batches are
    append-never (grow a :class:`PathStore` instead).  ``graph`` is the
    :class:`~repro.graph.compiled.CompiledGraph` whose dense interning the
    ``node_indices``/``anchor_indices`` columns refer to; it is dropped
    when the batch is pickled (the columns alone cross process
    boundaries) and re-attached by the receiver via :meth:`attach`.
    """

    # __weakref__ lets the shared-memory transport (repro.parallel.shm) tie
    # a segment's lifetime to the batch viewing it via weakref.finalize.
    __slots__ = ("offsets", "node_indices", "is_type1", "anchor_indices", "graph", "__weakref__")

    def __init__(self, offsets, node_indices, is_type1, anchor_indices, graph=None) -> None:
        self.offsets = offsets
        self.node_indices = node_indices
        self.is_type1 = is_type1
        self.anchor_indices = anchor_indices
        self.graph = graph

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, graph=None) -> "PathBatch":
        """A batch of zero paths."""
        if _np is not None:
            return cls(
                _np.zeros(1, dtype=_np.int64),
                _np.empty(0, dtype=_np.int64),
                _np.empty(0, dtype=bool),
                _np.empty(0, dtype=_np.int64),
                graph,
            )
        return cls(array("q", [0]), array("q"), bytearray(), array("q"), graph)

    @classmethod
    def from_paths(cls, paths: Sequence[TargetPath], graph: "CompiledGraph") -> "PathBatch":
        """Columnarize already-materialized :class:`TargetPath` objects.

        The generic adapter for object-path engines; the vectorized engine
        produces batches natively without ever building the objects.
        """
        index = graph.index_of
        offsets = array("q", [0])
        node_indices = array("q")
        is_type1 = bytearray()
        anchor_indices = array("q")
        for path in paths:
            node_indices.extend(index(node) for node in path.nodes)
            offsets.append(len(node_indices))
            is_type1.append(1 if path.is_type1 else 0)
            anchor_indices.append(index(path.anchor) if path.is_type1 else -1)
        if _np is None:
            return cls(offsets, node_indices, is_type1, anchor_indices, graph)
        return cls(
            _np.asarray(offsets, dtype=_np.int64),
            _np.asarray(node_indices, dtype=_np.int64),
            _np.frombuffer(bytes(is_type1), dtype=_np.uint8).astype(bool),
            _np.asarray(anchor_indices, dtype=_np.int64),
            graph,
        )

    @classmethod
    def concat(cls, batches: Sequence["PathBatch"], graph=None) -> "PathBatch":
        """Concatenate batches (requires numpy-backed columns)."""
        if _np is None:
            raise RuntimeError("PathBatch.concat requires numpy")
        if not batches:
            return cls.empty(graph)
        if graph is None:
            graph = batches[0].graph
        lengths = _np.concatenate([_np.diff(batch.offsets) for batch in batches])
        offsets = _np.zeros(lengths.size + 1, dtype=_np.int64)
        _np.cumsum(lengths, out=offsets[1:])
        return cls(
            offsets,
            _np.concatenate([_np.asarray(batch.node_indices) for batch in batches]),
            _np.concatenate([_np.asarray(batch.is_type1, dtype=bool) for batch in batches]),
            _np.concatenate([_np.asarray(batch.anchor_indices) for batch in batches]),
            graph,
        )

    # ------------------------------------------------------------------ #
    # Introspection and lazy per-path views
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_nodes(self) -> int:
        """Total traced-node entries across all paths in the batch."""
        return int(self.offsets[-1])

    def attach(self, graph: "CompiledGraph") -> "PathBatch":
        """(Re-)bind the dense indices to their compiled graph; returns self."""
        self.graph = graph
        return self

    def _ids(self) -> tuple:
        if self.graph is None:
            raise RuntimeError(
                "this PathBatch is detached from its compiled graph (it crossed a "
                "process boundary); attach() it before materializing node ids"
            )
        return self.graph.nodes

    def path(self, i: int) -> TargetPath:
        """Lazy view of path ``i`` as a :class:`TargetPath`."""
        return self.paths_slice(i, i + 1)[0]

    def __iter__(self) -> Iterator[TargetPath]:
        return iter(self.to_paths())

    def to_paths(self) -> list[TargetPath]:
        """Materialize the whole batch as :class:`TargetPath` objects."""
        return self.paths_slice(0, len(self))

    def paths_slice(self, start: int, stop: int) -> list[TargetPath]:
        """Materialize paths ``[start, stop)`` as :class:`TargetPath` objects.

        Bit-identical to what the object-path engines would have returned
        for the same draws: same node sets, flags and anchors, in the same
        order.
        """
        return self._materialize(start, stop, type1_only=False)

    def type1_paths_slice(self, start: int, stop: int) -> list[TargetPath]:
        """Only the type-1 paths among ``[start, stop)``, order preserved.

        Skips the (useless-for-coverage) type-0 node sets entirely, so the
        per-path ``frozenset`` cost is paid only for paths the MSC instance
        can actually use.
        """
        return self._materialize(start, stop, type1_only=True)

    def _materialize(self, start: int, stop: int, type1_only: bool) -> list[TargetPath]:
        if not 0 <= start <= stop <= len(self):
            raise IndexError(f"path slice [{start}, {stop}) out of range for {len(self)} paths")
        if start == stop:
            return []
        ids = self._ids()
        offsets = _tolist(self.offsets[start : stop + 1])
        base = offsets[0]
        flat = _tolist(self.node_indices[base : offsets[-1]])
        flags = _tolist(self.is_type1[start:stop])
        anchors = _tolist(self.anchor_indices[start:stop])
        out: list[TargetPath] = []
        append = out.append
        for k in range(stop - start):
            flagged = flags[k]
            if type1_only and not flagged:
                continue
            nodes = frozenset(map(ids.__getitem__, flat[offsets[k] - base : offsets[k + 1] - base]))
            if flagged:
                append(TargetPath(nodes=nodes, is_type1=True, anchor=ids[anchors[k]]))
            else:
                append(TargetPath(nodes=nodes, is_type1=False))
        return out

    # ------------------------------------------------------------------ #
    # Columnar reductions (no per-path objects)
    # ------------------------------------------------------------------ #

    def type1_bytes(self, start: int = 0, stop: int | None = None) -> bytes:
        """Type indicators ``y(ĝ)`` of paths ``[start, stop)``, one byte each."""
        stop = len(self) if stop is None else stop
        segment = self.is_type1[start:stop]
        if _is_ndarray(segment):
            return segment.tobytes()  # bool -> exactly one 0/1 byte per path
        return bytes(segment)

    def type1_count(self, start: int = 0, stop: int | None = None) -> int:
        """How many of paths ``[start, stop)`` are type-1."""
        stop = len(self) if stop is None else stop
        segment = self.is_type1[start:stop]
        if _is_ndarray(segment):
            return int(segment.sum())
        return sum(segment)

    def covered_bytes(
        self, invitation: Iterable[NodeId], start: int = 0, stop: int | None = None
    ) -> bytes:
        """Lemma-2 covered-trace indicators of paths ``[start, stop)``.

        A path is covered iff it is type-1 and every traced node received
        an invitation — computed here as one gather of a node membership
        mask plus a segmented ``logical_and`` over the CSR layout.
        """
        stop = len(self) if stop is None else stop
        if stop <= start:
            return b""
        graph = self.graph
        if graph is None:
            raise RuntimeError("covered_bytes needs the compiled graph; attach() first")
        if not _is_ndarray(self.node_indices):
            return bytes(
                1 if path.covered_by(invitation) else 0 for path in self.paths_slice(start, stop)
            )
        return self.covered_bytes_masked(_invitation_mask(graph, invitation), start, stop)

    def covered_bytes_masked(self, mask, start: int, stop: int) -> bytes:
        """:meth:`covered_bytes` against a precomputed membership mask.

        Lets multi-chunk readers (:class:`PathStore`) intern the invitation
        once per read instead of once per chunk.
        """
        if stop <= start:
            return b""
        offsets = self.offsets
        base = offsets[start]
        member = mask[self.node_indices[base : offsets[stop]]]
        starts = offsets[start:stop] - base
        all_invited = _np.logical_and.reduceat(member, starts)
        return (self.is_type1[start:stop] & all_invited).tobytes()

    def select_type1(self) -> "PathBatch":
        """The type-1 subset as a new batch (order preserved)."""
        if not _is_ndarray(self.offsets):
            if self.graph is None:
                raise RuntimeError("select_type1 on a detached non-numpy batch")
            return PathBatch.from_paths(self.type1_paths_slice(0, len(self)), self.graph)
        keep = _np.asarray(self.is_type1, dtype=bool)
        lengths = _np.diff(self.offsets)
        node_indices = self.node_indices[_np.repeat(keep, lengths)]
        kept_lengths = lengths[keep]
        offsets = _np.zeros(kept_lengths.size + 1, dtype=_np.int64)
        _np.cumsum(kept_lengths, out=offsets[1:])
        return PathBatch(
            offsets, node_indices, self.is_type1[keep], self.anchor_indices[keep], self.graph
        )

    # ------------------------------------------------------------------ #
    # Wire and disk formats
    # ------------------------------------------------------------------ #

    def __getstate__(self):
        # The graph reference never crosses a process boundary: workers and
        # parents each hold their own (forked) snapshot, so only the packed
        # columns are shipped.  Receivers re-attach() their snapshot.
        return (self.offsets, self.node_indices, self.is_type1, self.anchor_indices)

    def __setstate__(self, state) -> None:
        self.offsets, self.node_indices, self.is_type1, self.anchor_indices = state
        self.graph = None

    def save_npz(self, path) -> None:
        """Persist the columns as one ``.npz`` array blob (requires numpy)."""
        if _np is None or not _is_ndarray(self.offsets):
            raise RuntimeError("save_npz requires numpy-backed columns")
        _np.savez(
            path,
            offsets=self.offsets,
            node_indices=self.node_indices,
            is_type1=self.is_type1,
            anchor_indices=self.anchor_indices,
        )

    @classmethod
    def load_npz(cls, path, graph=None) -> "PathBatch":
        """Load columns persisted by :meth:`save_npz`."""
        if _np is None:
            raise RuntimeError("load_npz requires numpy")
        with _np.load(path) as data:
            return cls(
                _np.asarray(data["offsets"], dtype=_np.int64),
                _np.asarray(data["node_indices"], dtype=_np.int64),
                _np.asarray(data["is_type1"], dtype=bool),
                _np.asarray(data["anchor_indices"], dtype=_np.int64),
                graph,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<PathBatch paths={len(self)} nodes={self.total_nodes} "
            f"type1={self.type1_count()} attached={self.graph is not None}>"
        )


class PathStore:
    """Chunked storage of one stream's materialized prefix.

    The sample pool appends whole engine chunks — :class:`PathBatch`
    columns from batch-native engines, plain ``list[TargetPath]`` chunks
    from object-path engines — and serves reads across chunk boundaries.
    Columnar chunks stay columnar end to end: indicator reads reduce on
    the arrays, and :class:`TargetPath` objects are built only when a
    caller explicitly asks for them.
    """

    __slots__ = ("_chunks", "_bounds")

    def __init__(self) -> None:
        self._chunks: list = []
        self._bounds: list[int] = [0]

    def __len__(self) -> int:
        return self._bounds[-1]

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def chunks(self) -> tuple:
        """The stored chunks, in stream order (for spilling)."""
        return tuple(self._chunks)

    def append(self, chunk) -> None:
        """Append one engine chunk (a :class:`PathBatch` or a path list)."""
        self._chunks.append(chunk)
        self._bounds.append(self._bounds[-1] + len(chunk))

    def _segments(self, start: int, stop: int):
        """Yield ``(chunk, local_start, local_stop)`` covering ``[start, stop)``."""
        if not 0 <= start <= stop <= len(self):
            raise IndexError(f"segment [{start}, {stop}) out of range for {len(self)} paths")
        if start == stop:
            return
        first = bisect_right(self._bounds, start) - 1
        for index in range(first, len(self._chunks)):
            lo = self._bounds[index]
            if lo >= stop:
                break
            chunk = self._chunks[index]
            yield chunk, max(start - lo, 0), min(stop - lo, len(chunk))

    def slice(self, start: int, stop: int) -> list[TargetPath]:
        """Paths ``[start, stop)`` as :class:`TargetPath` objects (a new list)."""
        out: list[TargetPath] = []
        for chunk, lo, hi in self._segments(start, stop):
            if isinstance(chunk, PathBatch):
                out.extend(chunk.paths_slice(lo, hi))
            else:
                out.extend(chunk[lo:hi])
        return out

    def type1_slice(self, start: int, stop: int) -> list[TargetPath]:
        """Only the type-1 paths among ``[start, stop)``, order preserved."""
        out: list[TargetPath] = []
        for chunk, lo, hi in self._segments(start, stop):
            if isinstance(chunk, PathBatch):
                out.extend(chunk.type1_paths_slice(lo, hi))
            else:
                out.extend(path for path in chunk[lo:hi] if path.is_type1)
        return out

    def type1_bytes(self, start: int, stop: int) -> bytes:
        """Type indicators of paths ``[start, stop)``, one byte each."""
        parts: list[bytes] = []
        for chunk, lo, hi in self._segments(start, stop):
            if isinstance(chunk, PathBatch):
                parts.append(chunk.type1_bytes(lo, hi))
            else:
                parts.append(bytes(1 if path.is_type1 else 0 for path in chunk[lo:hi]))
        return b"".join(parts)

    def covered_bytes(self, start: int, stop: int, invitation: frozenset) -> bytes:
        """Covered-trace indicators (Lemma 2) of paths ``[start, stop)``."""
        parts: list[bytes] = []
        # Interned once per distinct snapshot per read.  Chunks retained
        # across graph mutations keep their original snapshot attached, so
        # one store can mix chunks whose dense index spaces differ -- a
        # single shared mask would silently misread them.
        masks: dict[int, object] = {}
        for chunk, lo, hi in self._segments(start, stop):
            if isinstance(chunk, PathBatch) and _is_ndarray(chunk.node_indices):
                if chunk.graph is None:
                    raise RuntimeError("covered_bytes needs the compiled graph; attach() first")
                mask = masks.get(id(chunk.graph))
                if mask is None:
                    mask = _invitation_mask(chunk.graph, invitation)
                    masks[id(chunk.graph)] = mask
                parts.append(chunk.covered_bytes_masked(mask, lo, hi))
            elif isinstance(chunk, PathBatch):
                parts.append(chunk.covered_bytes(invitation, lo, hi))
            else:
                parts.append(
                    bytes(1 if path.covered_by(invitation) else 0 for path in chunk[lo:hi])
                )
        return b"".join(parts)
