"""Realizations (Def. 1), Process 2, and the Alg. 1 backward trace ``t(g)``.

A *realization* derandomizes the threshold process: every user picks at
most one of its friends -- friend ``u`` with probability ``w(u, v)``,
nobody with the leftover probability ``1 − Σ_u w(u, v)``.  Lemma 1 shows
that running the deterministic Process 2 on a random realization gives the
same distribution over outcomes as Process 1, which is the live-edge
equivalence the RAF algorithm is built on.

:func:`sample_realization` materializes a full realization (every node's
choice); it is used by tests, by the forward Process 2 simulator and by the
Lemma 1 equivalence checks.  The RAF sampler itself never needs full
realizations -- see :mod:`repro.diffusion.reverse_sampling` for the lazy
backward version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import NodeNotFoundError
from repro.graph.compiled import compile_graph
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.diffusion.threshold_model import FriendingOutcome

__all__ = ["Realization", "sample_realization", "forward_process", "trace_target_path"]


@dataclass(frozen=True)
class Realization:
    """A full realization ``g: V → V ∪ {ℵ0}`` of Def. 1.

    ``choices[v]`` is the friend selected by ``v`` or ``None`` for the
    artificial user ℵ0 (no selection).  Instances are immutable.
    """

    choices: Mapping[NodeId, NodeId | None]

    def parent(self, node: NodeId) -> NodeId | None:
        """Return ``g(node)`` (``None`` encodes the artificial user ℵ0)."""
        try:
            return self.choices[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def __contains__(self, node: NodeId) -> bool:
        return node in self.choices

    def live_edges(self) -> frozenset:
        """The set of live (selected) edges ``(g(v), v)`` as ordered pairs."""
        return frozenset(
            (parent, node) for node, parent in self.choices.items() if parent is not None
        )


def sample_realization(graph: SocialGraph, rng: RandomSource = None) -> Realization:
    """Draw a full realization: every user selects at most one friend.

    Friend ``u`` of user ``v`` is selected with probability ``w(u, v)``;
    with the leftover probability ``1 − Σ_u w(u, v)`` (non-negative because
    the graph is normalized) the user selects nobody.
    """
    generator = ensure_rng(rng)
    compiled = compile_graph(graph)
    nodes = compiled.nodes
    rand = generator.random
    choices: dict[NodeId, NodeId | None] = {}
    # One uniform draw per node in insertion order: the same stream and the
    # same selections as the historical per-node dict scan, without the
    # copies (the binary search lives in CompiledGraph.select_parent).
    for i, v in enumerate(nodes):
        selected = compiled.select_parent(i, rand())
        choices[v] = nodes[selected] if selected >= 0 else None
    return Realization(choices=choices)


def forward_process(
    graph: SocialGraph,
    source: NodeId,
    realization: Realization,
    invitation: Iterable[NodeId],
    target: NodeId | None = None,
) -> FriendingOutcome:
    """Run Process 2: the deterministic friending process under a realization.

    Starting from ``H_0 = N_s``, each round admits every invited user whose
    selected friend ``g(v)`` is already in the circle, until nothing changes
    or the target joins.  Returned in the same :class:`FriendingOutcome`
    shape as Process 1 so the two can be compared directly (Lemma 1).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    initial = graph.neighbor_set(source)
    invited = frozenset(invitation)
    circle: set[NodeId] = set(initial)

    # Reverse index: which invited users selected node x?  Admitting x can
    # only ever trigger those users, so each edge of the realization is
    # examined at most once.
    selected_by: dict[NodeId, list[NodeId]] = {}
    for v in invited:
        if v in circle or v not in realization:
            continue
        parent = realization.parent(v)
        if parent is not None:
            selected_by.setdefault(parent, []).append(v)

    rounds = 0
    frontier = list(initial)
    while frontier:
        if target is not None and target in circle:
            break
        next_frontier: list[NodeId] = []
        for member in frontier:
            for candidate in selected_by.get(member, ()):  # invited users waiting on member
                if candidate not in circle:
                    circle.add(candidate)
                    next_frontier.append(candidate)
        if not next_frontier:
            break
        rounds += 1
        frontier = next_frontier

    final = frozenset(circle)
    return FriendingOutcome(
        success=(target in final) if target is not None else False,
        final_friends=final,
        new_friends=frozenset(final - initial),
        rounds=rounds,
    )


def trace_target_path(
    realization: Realization,
    target: NodeId,
    source_friends: Iterable[NodeId],
) -> tuple[frozenset, bool]:
    """Algorithm 1: trace ``t(g)`` backwards from the target.

    Walk ``target → g(target) → g(g(target)) → ...`` until the walk either

    * reaches a user who selected nobody (type-0 realization),
    * closes a cycle (type-0), or
    * reaches a friend of the initiator (type-1).

    Returns ``(nodes, is_type1)`` where ``nodes`` is the set of traced users
    (the paper's ``t(g)`` without the artificial user ℵ0); the invitation
    set must contain all of them for the target to become a friend under
    this realization (Lemma 2).
    """
    stop_set = frozenset(source_friends)
    traced: set[NodeId] = {target}
    current = target
    while True:
        parent = realization.parent(current)
        if parent is None:
            return frozenset(traced), False
        if parent in traced:
            return frozenset(traced), False
        if parent in stop_set:
            return frozenset(traced), True
        traced.add(parent)
        current = parent
