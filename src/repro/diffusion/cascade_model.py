"""Independent-cascade friending process (extension).

The original active-friending papers (Yang et al., KDD'13 and follow-ups)
model the friending process with the independent-cascade (IC) model: when a
user joins the initiator's circle it gets one independent chance, per
not-yet-friended invited neighbour, of convincing that neighbour with
probability ``w(member, neighbour)``.  The paper reproduced here argues for
the linear-threshold model instead (mutual friends accumulate); this module
exists so the two process families can be compared side by side in the
examples and ablations.  It is not used by the RAF algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive_int
from repro.diffusion.friending_process import AcceptanceEstimate
from repro.diffusion.threshold_model import FriendingOutcome

__all__ = ["simulate_cascade_friending", "estimate_cascade_probability"]


def simulate_cascade_friending(
    graph: SocialGraph,
    source: NodeId,
    invitation: Iterable[NodeId],
    target: NodeId | None = None,
    rng: RandomSource = None,
) -> FriendingOutcome:
    """Run one random simulation of the IC friending process.

    Every ordered pair ``(member, neighbour)`` is tried at most once, with
    success probability ``w(member, neighbour)``; only invited users can
    join.  Output shape matches the LT simulator so callers can swap models.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if target is not None and not graph.has_node(target):
        raise NodeNotFoundError(target)
    generator = ensure_rng(rng)
    invited = frozenset(invitation)
    initial = graph.neighbor_set(source)
    circle: set[NodeId] = set(initial)
    queue: deque[NodeId] = deque(initial)
    rounds = 0
    while queue:
        if target is not None and target in circle:
            break
        member = queue.popleft()
        for neighbor in graph.neighbors(member):
            if neighbor in circle or neighbor not in invited:
                continue
            if generator.random() < graph.weight(member, neighbor):
                circle.add(neighbor)
                queue.append(neighbor)
        rounds += 1
    final = frozenset(circle)
    return FriendingOutcome(
        success=(target in final) if target is not None else False,
        final_friends=final,
        new_friends=frozenset(final - initial),
        rounds=rounds,
    )


def estimate_cascade_probability(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    invitation: Iterable[NodeId],
    num_samples: int = 1000,
    rng: RandomSource = None,
) -> AcceptanceEstimate:
    """Monte Carlo estimate of the IC acceptance probability for ``invitation``."""
    require_positive_int(num_samples, "num_samples")
    generator = ensure_rng(rng)
    invited = frozenset(invitation)
    successes = 0
    for _ in range(num_samples):
        outcome = simulate_cascade_friending(graph, source, invited, target=target, rng=generator)
        if outcome.success:
            successes += 1
    return AcceptanceEstimate(
        probability=successes / num_samples, num_samples=num_samples, successes=successes
    )
