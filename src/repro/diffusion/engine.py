"""Batch reverse-sampling engines over the compiled CSR substrate.

Everything the RAF pipeline does with randomness reduces to drawing
backward traces ``t(ĝ)`` (Remark 3, Borgs-style reverse sampling):
estimating ``pmax``, sampling the ``l`` realizations of Alg. 3, screening
experiment pairs and (via Lemma 2) evaluating ``f(I)``.  This module
defines the one interface all of those go through:

* :class:`SamplingEngine` -- the protocol: ``sample_paths(target, stop_set,
  count, rng)`` returns ``count`` independent :class:`TargetPath` draws.
* :class:`PythonEngine` -- the pure-stdlib default.  It walks the
  :class:`~repro.graph.compiled.CompiledGraph` CSR arrays with an
  allocation-free binary search per step and consumes the ``random.Random``
  stream exactly like the historical dict-based sampler (one uniform draw
  per step, neighbours in insertion order), so seeded results are
  bit-for-bit identical to pre-engine versions of the library.
* :class:`NumpyEngine` -- an optional vectorized backend that advances a
  whole batch of walks in lockstep: uniform draws and friend selections for
  all active walks are computed with one `numpy` call per step (the friend
  selection uses a single ``searchsorted`` over a globally shifted
  cumulative-weight array).  It draws from a ``numpy`` generator seeded
  from the caller's ``rng``, so it is deterministic per seed but follows
  its own stream.  It degrades cleanly: importing this module never
  requires numpy, only constructing the engine does.

Engines are selected by name (``"python"``, ``"numpy"`` or ``"auto"``)
via :func:`create_engine`; :class:`~repro.core.raf.RAFConfig` and the CLI's
``--engine`` flag feed into that.  See DESIGN.md for the architecture notes
and the determinism contract.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.exceptions import EngineError
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_non_negative_int

try:  # optional dependency: the vectorized backend only
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "TargetPath",
    "SamplingEngine",
    "PythonEngine",
    "NumpyEngine",
    "ENGINE_NAMES",
    "numpy_available",
    "require_engine_name",
    "available_engines",
    "create_engine",
    "default_engine",
    "resolve_engine",
    "collect_type1_paths",
]

#: Engine names accepted by :func:`create_engine` (and the CLI ``--engine`` flag).
ENGINE_NAMES = ("python", "numpy", "auto")

#: Batch size used when a huge sample count is split into bounded chunks.
DEFAULT_CHUNK_SIZE = 8192


@dataclass(frozen=True, slots=True)
class TargetPath:
    """One sampled backward trace ``t(ĝ)``.

    Attributes
    ----------
    nodes:
        The traced users (always contains the target).  For a type-0
        realization these are the users visited before the walk died; they
        are retained for diagnostics but can never be covered.
    is_type1:
        Whether the walk reached the initiator's friend circle, i.e.
        whether ℵ0 ∉ t(g) (Definition 2).  Only type-1 paths can contribute
        to the acceptance probability.
    anchor:
        For a type-1 path, the friend of the initiator that the walk
        reached (the ``u* ∈ N_s`` of Alg. 1, *not* part of ``t(g)``);
        ``None`` for type-0 paths.
    """

    nodes: frozenset
    is_type1: bool
    anchor: NodeId | None = None

    def covered_by(self, invitation: Iterable[NodeId]) -> bool:
        """Whether an invitation set covers this realization (Lemma 2).

        A type-0 path is never covered; a type-1 path is covered iff every
        traced user received an invitation.
        """
        if not self.is_type1:
            return False
        invited = invitation if isinstance(invitation, (set, frozenset)) else frozenset(invitation)
        return self.nodes <= invited

    def __len__(self) -> int:
        return len(self.nodes)


@runtime_checkable
class SamplingEngine(Protocol):
    """The batch reverse-sampling interface consumed by every layer above."""

    name: str

    @property
    def compiled(self) -> CompiledGraph:
        """The frozen CSR snapshot the engine samples from."""
        ...

    def sample_path(
        self, target: NodeId, stop_set: Iterable[NodeId], rng: RandomSource = None
    ) -> TargetPath:
        """Draw one backward trace from ``target``."""
        ...

    def sample_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        """Draw ``count`` independent backward traces from ``target``."""
        ...


class _EngineBase:
    """Shared plumbing: compiled-graph binding and the single-path shortcut.

    An engine built from a :class:`SocialGraph` stays *live*: every batch
    (and every ``compiled`` access) re-checks the graph's mutation counter
    through :func:`compile_graph` -- O(1) while the graph is unchanged --
    and re-snapshots when the graph was mutated, closing the stale-snapshot
    window between engine construction and the first batch.  An engine built
    directly from a :class:`CompiledGraph` is pinned to that snapshot (the
    caller opted into a specific frozen view).
    """

    __slots__ = ("_graph", "_compiled")

    def __init__(self, graph: SocialGraph | CompiledGraph) -> None:
        if isinstance(graph, CompiledGraph):
            self._graph = None
            self._compiled = graph
        else:
            self._graph = graph
            self._compiled = compile_graph(graph)

    @property
    def compiled(self) -> CompiledGraph:
        """The (current) frozen CSR snapshot the engine samples from."""
        if self._graph is not None:
            fresh = compile_graph(self._graph)
            if fresh is not self._compiled:
                self._compiled = fresh
                self._rebind(fresh)
        return self._compiled

    def _rebind(self, compiled: CompiledGraph) -> None:
        """Hook for engines holding derived state of the snapshot."""

    def sample_path(
        self, target: NodeId, stop_set: Iterable[NodeId], rng: RandomSource = None
    ) -> TargetPath:
        """Draw one backward trace from ``target``."""
        return self.sample_paths(target, stop_set, 1, rng=rng)[0]

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{type(self).__name__} graph={self._compiled!r}>"


class PythonEngine(_EngineBase):
    """Pure-stdlib engine: binary-search walks over the CSR arrays.

    Bit-compatible with the historical dict-based sampler: for the same
    seed it consumes the same uniform stream and returns the same paths.
    """

    __slots__ = ()
    name = "python"

    def sample_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        require_non_negative_int(count, "count")
        generator = ensure_rng(rng)
        compiled = self.compiled  # re-snapshots if the source graph mutated
        start = compiled.index_of(target)
        stop = compiled.indices_of(stop_set)
        indptr = compiled.indptr
        parents = compiled.parents
        cum_weights = compiled.cum_weights
        ids = compiled.nodes
        rand = generator.random
        paths: list[TargetPath] = []
        append = paths.append
        for _ in range(count):
            traced = {start}
            current = start
            while True:
                # One uniform draw per step, exactly like the dict sampler
                # (which drew before scanning, even for isolated nodes).
                # The selection inlines CompiledGraph.select_parent: the
                # per-step method call is measurable on this hot path.
                draw = rand()
                lo = indptr[current]
                hi = indptr[current + 1]
                j = bisect_right(cum_weights, draw, lo, hi)
                if j == hi:  # the draw fell into the stop-probability tail
                    append(TargetPath(nodes=frozenset(ids[i] for i in traced), is_type1=False))
                    break
                parent = parents[j]
                if parent in traced:  # the walk closed a cycle: type-0
                    append(TargetPath(nodes=frozenset(ids[i] for i in traced), is_type1=False))
                    break
                if parent in stop:  # reached N_s: type-1
                    append(
                        TargetPath(
                            nodes=frozenset(ids[i] for i in traced),
                            is_type1=True,
                            anchor=ids[parent],
                        )
                    )
                    break
                traced.add(parent)
                current = parent
        return paths


class NumpyEngine(_EngineBase):
    """Vectorized engine: lockstep batched walks with numpy draws.

    Per step, the uniform draws and the per-walk friend selections are one
    ``Generator.random`` and one ``searchsorted`` call for the whole active
    batch; only the (cheap) per-walk set bookkeeping stays in Python.  The
    friend selection uses the shifted-cumulative trick: entry ``j`` of node
    ``v`` is stored as ``stride·v + cum_weights[j]`` with ``stride`` larger
    than any node's total weight, which makes the concatenated array
    globally sorted so one binary search resolves every walker at once.
    """

    __slots__ = ("_np", "_indptr", "_parents", "_shifted", "_stride")
    name = "numpy"

    def __init__(self, graph: SocialGraph | CompiledGraph) -> None:
        if _np is None:
            raise EngineError(
                "the 'numpy' sampling engine requires numpy, which is not installed; "
                "use engine='python' (or 'auto' to select automatically)"
            )
        super().__init__(graph)
        self._np = _np
        self._rebind(self._compiled)

    def _rebind(self, compiled: CompiledGraph) -> None:
        np = self._np
        self._indptr = np.asarray(compiled.indptr, dtype=np.int64)
        self._parents = np.asarray(compiled.parents, dtype=np.int64)
        cum = np.asarray(compiled.cum_weights, dtype=np.float64)
        totals = np.asarray(compiled.totals, dtype=np.float64)
        # stride > max total weight + 1 keeps every node's slice inside its
        # own [stride*v, stride*(v+1)) band, so the shifted array is sorted.
        self._stride = float(np.ceil(totals.max() + 2.0)) if totals.size else 2.0
        owner = np.repeat(np.arange(len(compiled), dtype=np.int64), np.diff(self._indptr))
        self._shifted = cum + self._stride * owner

    def sample_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        require_non_negative_int(count, "count")
        np = self._np
        # Derive the numpy stream from the caller's random.Random source so a
        # single seed still controls the whole run deterministically.
        nprng = np.random.default_rng(ensure_rng(rng).getrandbits(64))
        compiled = self.compiled  # re-snapshots (and rebinds arrays) if stale
        start = compiled.index_of(target)
        ids = compiled.nodes
        if count == 0:
            return []
        if self._parents.size == 0:  # edgeless graph: every walk dies at once
            return [TargetPath(nodes=frozenset({target}), is_type1=False) for _ in range(count)]
        stop_mask = np.zeros(len(compiled), dtype=bool)
        stop_indices = compiled.indices_of(stop_set)
        if stop_indices:
            stop_mask[list(stop_indices)] = True

        indptr = self._indptr
        parents = self._parents
        shifted = self._shifted
        stride = self._stride
        results: list[TargetPath | None] = [None] * count
        traced: list[set[int]] = [{start} for _ in range(count)]
        walkers: list[int] = list(range(count))
        current: list[int] = [start] * count
        while walkers:
            current_arr = np.asarray(current, dtype=np.int64)
            draws = nprng.random(len(walkers))
            locations = np.searchsorted(shifted, stride * current_arr + draws, side="right")
            alive_arr = locations < indptr[current_arr + 1]
            chosen_arr = parents[np.minimum(locations, parents.size - 1)]
            # Bulk-convert once per step: per-element numpy indexing inside
            # the bookkeeping loop costs more than the search itself.
            stop_hit = (stop_mask[chosen_arr] & alive_arr).tolist()
            alive = alive_arr.tolist()
            chosen = chosen_arr.tolist()
            next_walkers: list[int] = []
            next_current: list[int] = []
            for k, walker in enumerate(walkers):
                nodes_seen = traced[walker]
                parent = chosen[k]
                if not alive[k] or parent in nodes_seen:
                    results[walker] = TargetPath(
                        nodes=frozenset(ids[i] for i in nodes_seen), is_type1=False
                    )
                elif stop_hit[k]:
                    results[walker] = TargetPath(
                        nodes=frozenset(ids[i] for i in nodes_seen),
                        is_type1=True,
                        anchor=ids[parent],
                    )
                else:
                    nodes_seen.add(parent)
                    next_walkers.append(walker)
                    next_current.append(parent)
            walkers = next_walkers
            current = next_current
        return results  # type: ignore[return-value]


_ENGINE_TYPES: dict[str, type] = {
    PythonEngine.name: PythonEngine,
    NumpyEngine.name: NumpyEngine,
}


def numpy_available() -> bool:
    """Whether the optional numpy backend can be constructed."""
    return _np is not None


def require_engine_name(name: object) -> str:
    """Validate a configured engine name against :data:`ENGINE_NAMES`.

    Shared by :class:`repro.core.raf.RAFConfig` and
    :class:`repro.experiments.config.ExperimentConfig` so backend additions
    happen in one place.  Raises ``ValueError`` on unknown names.
    """
    if not isinstance(name, str) or name.lower() not in ENGINE_NAMES:
        raise EngineError(
            f"engine must be one of {', '.join(ENGINE_NAMES)}, got {name!r}"
        )
    return name.lower()


def available_engines() -> tuple[str, ...]:
    """Names of the engines that can actually run in this environment."""
    names = [PythonEngine.name]
    if numpy_available():
        names.append(NumpyEngine.name)
    return tuple(names)


def create_engine(graph: SocialGraph | CompiledGraph, name: str = "python") -> SamplingEngine:
    """Build a sampling engine for ``graph`` by backend name.

    ``"auto"`` picks the numpy backend when numpy is importable and falls
    back to the pure-Python backend otherwise.  Unknown names and
    unavailable backends raise :class:`~repro.exceptions.EngineError`.
    """
    key = (name or "python").lower()
    if key == "auto":
        key = NumpyEngine.name if numpy_available() else PythonEngine.name
    try:
        engine_type = _ENGINE_TYPES[key]
    except KeyError:
        raise EngineError(
            f"unknown sampling engine {name!r}; choose one of {', '.join(ENGINE_NAMES)}"
        ) from None
    return engine_type(graph)


def default_engine(graph: SocialGraph | CompiledGraph) -> SamplingEngine:
    """The default (pure-Python, bit-compatible) engine for ``graph``.

    Construction is cheap: the compiled snapshot is cached on the graph, so
    this can be called per sampling request without re-freezing anything.
    """
    return PythonEngine(graph)


def resolve_engine(
    graph: SocialGraph | CompiledGraph, engine: "SamplingEngine | str | None"
) -> SamplingEngine:
    """Coerce an engine argument (instance, name or None) into an engine.

    An engine *instance* must have been built on the same graph (same
    compiled snapshot) as ``graph``: silently sampling a different graph's
    topology would produce well-formed but wrong estimates, so a mismatch
    raises :class:`~repro.exceptions.EngineError` instead.  An engine whose
    source graph was merely *mutated* since construction is not stale --
    reading ``engine.compiled`` re-snapshots it against the graph's current
    mutation counter -- so only genuinely foreign graphs (or engines pinned
    to an explicit :class:`CompiledGraph`) are rejected.
    """
    if engine is None:
        return default_engine(graph)
    if isinstance(engine, str):
        return create_engine(graph, engine)
    expected = graph if isinstance(graph, CompiledGraph) else compile_graph(graph)
    if engine.compiled is not expected:
        raise EngineError(
            "the provided sampling engine was built on a different graph (or an "
            "outdated snapshot of this graph); create the engine from the same "
            "graph, e.g. create_engine(graph, name)"
        )
    return engine


def collect_type1_paths(
    engine: SamplingEngine,
    target: NodeId,
    stop_set: Iterable[NodeId],
    count: int,
    rng: RandomSource = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[list[TargetPath], int]:
    """Draw ``count`` traces in bounded chunks, keeping only the type-1 ones.

    Returns ``(type1_paths, num_type1)``.  Chunking keeps peak memory
    proportional to ``chunk_size`` plus the type-1 yield instead of the full
    realization count, which matters for the theory-faithful ``l``.
    """
    require_non_negative_int(count, "count")
    generator = ensure_rng(rng)
    stop = stop_set if isinstance(stop_set, (set, frozenset)) else frozenset(stop_set)
    type1: list[TargetPath] = []
    remaining = count
    while remaining > 0:
        batch = min(chunk_size, remaining)
        for path in engine.sample_paths(target, stop, batch, rng=generator):
            if path.is_type1:
                type1.append(path)
        remaining -= batch
    return type1, len(type1)
