"""Batch reverse-sampling engines over the compiled CSR substrate.

Everything the RAF pipeline does with randomness reduces to drawing
backward traces ``t(ĝ)`` (Remark 3, Borgs-style reverse sampling):
estimating ``pmax``, sampling the ``l`` realizations of Alg. 3, screening
experiment pairs and (via Lemma 2) evaluating ``f(I)``.  This module
defines the one interface all of those go through:

* :class:`SamplingEngine` -- the protocol: ``sample_paths(target, stop_set,
  count, rng)`` returns ``count`` independent :class:`TargetPath` draws.
* :class:`PythonEngine` -- the pure-stdlib default.  It walks the
  :class:`~repro.graph.compiled.CompiledGraph` CSR arrays with an
  allocation-free binary search per step and consumes the ``random.Random``
  stream exactly like the historical dict-based sampler (one uniform draw
  per step, neighbours in insertion order), so seeded results are
  bit-for-bit identical to pre-engine versions of the library.
* :class:`NumpyEngine` -- an optional vectorized backend that advances a
  whole batch of walks in lockstep: uniform draws and friend selections for
  all active walks are computed with one `numpy` call per step (the friend
  selection uses a single ``searchsorted`` over a globally shifted
  cumulative-weight array), cycle detection runs against an epoch-stamped
  visited matrix, and finished walks are compacted out with boolean masks
  -- zero per-walker Python bookkeeping.  The kernel emits a columnar
  :class:`~repro.diffusion.path_batch.PathBatch` directly
  (:meth:`~NumpyEngine.sample_path_batch`); ``sample_paths`` is a lazy
  object view of the same columns and is bit-identical, draw for draw, to
  the historical per-walker lockstep kernel (retained, micro-optimized, as
  :meth:`~NumpyEngine.sample_paths_reference` -- the fallback when the
  visited matrix would not fit in memory, and the reference the columnar
  kernel is asserted against).  The engine draws from a ``numpy``
  generator seeded from the caller's ``rng``, so it is deterministic per
  seed but follows its own stream.  It degrades cleanly: importing this
  module never requires numpy, only constructing the engine does.

* :class:`NumpyAliasEngine` (engine name ``"numpy-alias"``) -- the same
  lockstep kernels with the per-step ``searchsorted`` replaced by an O(1)
  walk over the snapshot's precomputed Vose alias tables
  (:meth:`repro.graph.compiled.CompiledGraph.alias_tables`): one multiply,
  one floor and two gathers per walker per step, independent of degree and
  of the edge count.  It samples the *same distribution* from the *same
  derived generator* but maps uniforms to friends differently, so it
  defines its own named stream (the engine name is the stream tag --
  threaded through pool spill tags and matrix fingerprints exactly like
  the python/numpy split); the default ``"numpy"`` mode stays bit-identical
  to every prior release.

Engines are selected by name (``"python"``, ``"numpy"``, ``"numpy-alias"``
or ``"auto"``) via :func:`create_engine`; :class:`~repro.core.raf.RAFConfig`
and the CLI's ``--engine`` flag feed into that.  See DESIGN.md for the
architecture notes and the determinism contract (§7 for the alias-stream
contract).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Protocol, runtime_checkable

from repro.diffusion.path_batch import PathBatch, TargetPath
from repro.exceptions import EngineError
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_non_negative_int

try:  # optional dependency: the vectorized backend only
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "TargetPath",
    "PathBatch",
    "SamplingEngine",
    "PythonEngine",
    "NumpyEngine",
    "NumpyAliasEngine",
    "ENGINE_NAMES",
    "numpy_available",
    "require_engine_name",
    "available_engines",
    "create_engine",
    "default_engine",
    "resolve_engine",
    "collect_type1_paths",
]

#: Engine names accepted by :func:`create_engine` (and the CLI ``--engine`` flag).
ENGINE_NAMES = ("python", "numpy", "numpy-alias", "auto")

#: Batch size used when a huge sample count is split into bounded chunks.
DEFAULT_CHUNK_SIZE = 8192


@runtime_checkable
class SamplingEngine(Protocol):
    """The batch reverse-sampling interface consumed by every layer above."""

    name: str

    #: Whether :meth:`sample_path_batch` produces columnar batches natively
    #: (without materializing per-path objects first).  Consumers use this
    #: to decide between the columnar and the object fast path.
    native_batches: bool

    @property
    def compiled(self) -> CompiledGraph:
        """The frozen CSR snapshot the engine samples from."""
        ...

    def sample_path(
        self, target: NodeId, stop_set: Iterable[NodeId], rng: RandomSource = None
    ) -> TargetPath:
        """Draw one backward trace from ``target``."""
        ...

    def sample_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        """Draw ``count`` independent backward traces from ``target``."""
        ...

    def sample_path_batch(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> PathBatch:
        """Draw ``count`` backward traces as one columnar :class:`PathBatch`.

        Bit-identical to ``sample_paths`` for the same arguments: the
        batch's lazy views materialize exactly the paths ``sample_paths``
        would have returned, in the same order.
        """
        ...


class _EngineBase:
    """Shared plumbing: compiled-graph binding and the single-path shortcut.

    An engine built from a :class:`SocialGraph` stays *live*: every batch
    (and every ``compiled`` access) re-checks the graph's mutation counter
    through :func:`compile_graph` -- O(1) while the graph is unchanged --
    and re-snapshots when the graph was mutated, closing the stale-snapshot
    window between engine construction and the first batch.  An engine built
    directly from a :class:`CompiledGraph` is pinned to that snapshot (the
    caller opted into a specific frozen view).
    """

    __slots__ = ("_graph", "_compiled")

    #: Object-path engines columnarize via PathBatch.from_paths; the
    #: vectorized engine overrides this (its kernel is array-native).
    native_batches = False

    def __init__(self, graph: SocialGraph | CompiledGraph) -> None:
        if isinstance(graph, CompiledGraph):
            self._graph = None
            self._compiled = graph
        else:
            self._graph = graph
            self._compiled = compile_graph(graph)

    @property
    def compiled(self) -> CompiledGraph:
        """The (current) frozen CSR snapshot the engine samples from."""
        if self._graph is not None:
            fresh = compile_graph(self._graph)
            if fresh is not self._compiled:
                self._compiled = fresh
                self._rebind(fresh)
        return self._compiled

    @property
    def source_graph(self) -> "SocialGraph | None":
        """The live graph this engine re-snapshots from (None when pinned).

        Delta-scoped consumers (the sample pool) read the graph's mutation
        log through this to scope invalidation between two snapshots; a
        pinned engine returns ``None`` and they fall back to a full flush.
        """
        return self._graph

    def _rebind(self, compiled: CompiledGraph) -> None:
        """Hook for engines holding derived state of the snapshot."""

    def sample_path(
        self, target: NodeId, stop_set: Iterable[NodeId], rng: RandomSource = None
    ) -> TargetPath:
        """Draw one backward trace from ``target``."""
        return self.sample_paths(target, stop_set, 1, rng=rng)[0]

    def sample_path_batch(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> PathBatch:
        """Draw ``count`` traces as a columnar batch (generic adapter).

        Samples through the engine's own ``sample_paths`` (so the draws --
        and the resulting paths -- are exactly those of the object path)
        and columnarizes afterwards.  Array-native engines override this.
        """
        compiled = self.compiled  # snapshot first so the columns match the draws
        return PathBatch.from_paths(self.sample_paths(target, stop_set, count, rng=rng), compiled)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{type(self).__name__} graph={self._compiled!r}>"


class PythonEngine(_EngineBase):
    """Pure-stdlib engine: binary-search walks over the CSR arrays.

    Bit-compatible with the historical dict-based sampler: for the same
    seed it consumes the same uniform stream and returns the same paths.
    """

    __slots__ = ()
    name = "python"

    def sample_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        """Draw ``count`` backward traces with the stdlib bisect walk.

        Consumes exactly one ``rng.random()`` per walk step, so seeded
        results are bit-for-bit identical to the historical dict-based
        sampler -- and identical whether the snapshot lives in RAM or is
        memory-mapped from disk (the binary search only ever touches the
        CSR slice of the node being stepped).
        """
        require_non_negative_int(count, "count")
        generator = ensure_rng(rng)
        compiled = self.compiled  # re-snapshots if the source graph mutated
        start = compiled.index_of(target)
        stop = compiled.indices_of(stop_set)
        indptr = compiled.indptr
        parents = compiled.parents
        cum_weights = compiled.cum_weights
        ids = compiled.nodes
        rand = generator.random
        paths: list[TargetPath] = []
        append = paths.append
        for _ in range(count):
            traced = {start}
            current = start
            while True:
                # One uniform draw per step, exactly like the dict sampler
                # (which drew before scanning, even for isolated nodes).
                # The selection inlines CompiledGraph.select_parent: the
                # per-step method call is measurable on this hot path.
                draw = rand()
                lo = indptr[current]
                hi = indptr[current + 1]
                j = bisect_right(cum_weights, draw, lo, hi)
                if j == hi:  # the draw fell into the stop-probability tail
                    append(TargetPath(nodes=frozenset(ids[i] for i in traced), is_type1=False))
                    break
                parent = parents[j]
                if parent in traced:  # the walk closed a cycle: type-0
                    append(TargetPath(nodes=frozenset(ids[i] for i in traced), is_type1=False))
                    break
                if parent in stop:  # reached N_s: type-1
                    append(
                        TargetPath(
                            nodes=frozenset(ids[i] for i in traced),
                            is_type1=True,
                            anchor=ids[parent],
                        )
                    )
                    break
                traced.add(parent)
                current = parent
        return paths


class NumpyEngine(_EngineBase):
    """Vectorized engine: fully array-native lockstep batched walks.

    Per step, the uniform draws and the per-walk friend selections are one
    ``Generator.random`` and one ``searchsorted`` call for the whole active
    batch.  The friend selection uses the shifted-cumulative trick: entry
    ``j`` of node ``v`` is stored as ``stride·v + cum_weights[j]`` with
    ``stride`` larger than any node's total weight, which makes the
    concatenated array globally sorted so one binary search resolves every
    walker at once.

    The columnar kernel (:meth:`sample_path_batch`) keeps *everything*
    array-native: cycle detection runs against a persistent epoch-stamped
    visited matrix (one ``uint8`` cell per (walker slot, node); a new epoch
    per batch makes re-zeroing unnecessary), finished walks are compacted
    out with boolean masks, and the surviving per-step frontiers are
    scattered into a CSR-of-paths :class:`PathBatch` at the end -- no
    per-walker Python bookkeeping at all.  It consumes the numpy stream
    draw for draw like the historical per-walker kernel (one
    ``Generator.random(live)`` per lockstep round, walkers in stable
    order), so the produced paths are bit-identical to pre-columnar
    releases; :meth:`sample_paths_reference` retains that historical
    kernel as the reference path, and also serves as the fallback when the
    visited matrix for a request would exceed
    :data:`NumpyEngine.STAMP_CELL_LIMIT` cells.
    """

    __slots__ = (
        "_np",
        "_indptr",
        "_parents",
        "_shifted",
        "_stride",
        "_totals",
        "_degrees",
        "_alias_prob",
        "_alias_index",
        "_stamps",
        "_stamp_epoch",
    )
    name = "numpy"
    native_batches = True

    #: How a lockstep round maps uniform draws to friend selections.  The
    #: subclassed alias mode overrides this; it is part of the engine's
    #: *stream identity* (fixed per engine class, reflected in ``name``),
    #: never a per-call switch -- downstream stream tags (pool spills,
    #: matrix fingerprints) key on the engine name.
    mode = "search"

    #: Upper bound on visited-matrix cells (walker slots × nodes) for the
    #: columnar kernel; one cell is one uint8, so the default caps the
    #: matrix at 256 MiB.  Larger requests fall back to the per-walker
    #: reference kernel (identical draws, identical paths).
    STAMP_CELL_LIMIT = 1 << 28

    #: Visited matrices up to this many cells (128 MiB of uint8) stay
    #: resident on the engine between batches -- the epoch-stamp trick then
    #: skips both re-zeroing and re-faulting their pages, which is most of
    #: the win for repeated large batches.  Anything larger is dropped
    #: after its batch, so one oversized request never pins hundreds of
    #: MiB on a long-lived engine (or on every forked worker of a
    #: ParallelEngine, whose per-chunk batches are far below this cap).
    STAMP_RETAIN_CELLS = 1 << 27

    def __init__(self, graph: SocialGraph | CompiledGraph) -> None:
        if _np is None:
            raise EngineError(
                f"the {self.name!r} sampling engine requires numpy, which is not "
                "installed; use engine='python' (or 'auto' to select automatically)"
            )
        super().__init__(graph)
        self._np = _np
        self._rebind(self._compiled)

    def _rebind(self, compiled: CompiledGraph) -> None:
        """Bind the engine's array views to a (possibly re-)compiled snapshot.

        ``asarray`` on a memory-mapped snapshot's columns returns the
        memmap views unchanged (zero-copy), so binding a mapped snapshot
        keeps the O(m) columns on disk; only O(n) derived arrays are
        materialized here.  The search mode's O(m) shifted-cumulative
        array is built lazily by :meth:`_shifted_cum` on first use.
        """
        np = self._np
        self._indptr = np.asarray(compiled.indptr, dtype=np.int64)
        self._parents = np.asarray(compiled.parents, dtype=np.int64)
        self._totals = np.asarray(compiled.totals, dtype=np.float64)
        self._stride = None
        self._shifted = None
        self._degrees = np.diff(self._indptr)
        # Alias columns are built on first alias-mode selection (per snapshot).
        self._alias_prob = None
        self._alias_index = None
        # The visited matrix is per-topology (its width is the node count).
        self._stamps = None
        self._stamp_epoch = 0

    # ------------------------------------------------------------------ #
    # Shared batch setup
    # ------------------------------------------------------------------ #

    def _batch_rng(self, rng: RandomSource):
        # Derive the numpy stream from the caller's random.Random source so a
        # single seed still controls the whole run deterministically.
        return self._np.random.default_rng(ensure_rng(rng).getrandbits(64))

    def _stop_mask(self, compiled: CompiledGraph, stop_set: Iterable[NodeId]):
        np = self._np
        stop_mask = np.zeros(len(compiled), dtype=bool)
        stop_indices = compiled.indices_of(stop_set)
        if stop_indices:
            stop_mask[np.fromiter(stop_indices, dtype=np.int64, count=len(stop_indices))] = True
        return stop_mask

    def _visited_stamps(self, count: int, num_nodes: int):
        """The epoch-stamped visited matrix, grown/recycled as needed.

        A cell equals the current epoch iff that walker slot visited that
        node *in this batch*; bumping the epoch invalidates every stamp at
        once, so the matrix is zeroed only when the uint8 epoch wraps
        (every 255 batches) instead of on every call.
        """
        np = self._np
        stamps = self._stamps
        if stamps is None or stamps.shape[0] < count or stamps.shape[1] != num_nodes:
            rows = max(count, stamps.shape[0] if stamps is not None else 0)
            stamps = self._stamps = np.zeros((rows, num_nodes), dtype=np.uint8)
            self._stamp_epoch = 0
        if self._stamp_epoch >= 255:
            stamps.fill(0)
            self._stamp_epoch = 0
        self._stamp_epoch += 1
        return stamps, np.uint8(self._stamp_epoch)

    def _select_parents(self, current, draws):
        """One lockstep round of friend selections: ``(alive, chosen)``.

        ``alive[k]`` is False when walker ``k``'s draw fell into its node's
        stop-probability tail; ``chosen[k]`` is the selected parent's dense
        index (an arbitrary in-range index where ``alive`` is False -- the
        kernels mask it out).  The search mode resolves the whole round
        with one binary search over the globally shifted cumulative array.
        """
        np = self._np
        shifted, stride = self._shifted_cum()
        locations = np.searchsorted(shifted, stride * current + draws, side="right")
        alive = locations < self._indptr[current + 1]
        chosen = self._parents[np.minimum(locations, self._parents.size - 1)]
        return alive, chosen

    def _shifted_cum(self):
        """The globally shifted cumulative array (search mode), built lazily.

        Entry ``j`` of node ``v`` is stored as ``stride*v + cum_weights[j]``
        with ``stride`` larger than any node's total weight, which keeps
        the concatenated array globally sorted so one binary search
        resolves a whole lockstep round.  This is the one derived column
        that is O(m) *resident* RAM, so it is materialized only when the
        search mode actually selects -- the alias engine never calls this,
        which is what keeps a memory-mapped snapshot fully out-of-core
        under ``"numpy-alias"``.
        """
        if self._shifted is None:
            np = self._np
            cum = np.asarray(self._compiled.cum_weights, dtype=np.float64)
            totals = self._totals
            # stride > max total weight + 1 keeps every node's slice inside
            # its own [stride*v, stride*(v+1)) band.
            self._stride = float(np.ceil(totals.max() + 2.0)) if totals.size else 2.0
            owner = np.repeat(
                np.arange(len(self._compiled), dtype=np.int64), np.diff(self._indptr)
            )
            self._shifted = cum + self._stride * owner
        return self._shifted, self._stride

    # ------------------------------------------------------------------ #
    # The columnar kernel
    # ------------------------------------------------------------------ #

    def sample_path_batch(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> PathBatch:
        """Draw ``count`` backward traces as one columnar :class:`PathBatch`.

        One ``Generator.random(live)`` and one vectorized friend selection
        per lockstep round for the whole surviving batch; deterministic per
        seed on this engine's named stream, bit-identical to
        :meth:`sample_paths_reference`, and bit-identical between in-memory
        and memory-mapped snapshots of the same graph.
        """
        require_non_negative_int(count, "count")
        np = self._np
        nprng = self._batch_rng(rng)
        compiled = self.compiled  # re-snapshots (and rebinds arrays) if stale
        start = compiled.index_of(target)
        if count == 0:
            return PathBatch.empty(compiled)
        if self._parents.size == 0:  # edgeless graph: every walk dies at once
            offsets = np.arange(count + 1, dtype=np.int64)
            return PathBatch(
                offsets,
                np.full(count, start, dtype=np.int64),
                np.zeros(count, dtype=bool),
                np.full(count, -1, dtype=np.int64),
                compiled,
            )
        stop_mask = self._stop_mask(compiled, stop_set)
        if count * len(compiled) > self.STAMP_CELL_LIMIT:
            # The visited matrix would not fit: fall back to the per-walker
            # reference kernel (same draws, same paths) and columnarize.
            paths = self._reference_kernel(compiled, start, stop_mask, count, nprng)
            return PathBatch.from_paths(paths, compiled)
        try:
            return self._columnar_kernel(compiled, start, stop_mask, count, nprng)
        finally:
            stamps = self._stamps
            if stamps is not None and stamps.size > self.STAMP_RETAIN_CELLS:
                self._stamps = None  # oversized: rebuilt (zeroed) on demand
                self._stamp_epoch = 0

    def _columnar_kernel(self, compiled, start, stop_mask, count, nprng) -> PathBatch:
        np = self._np
        stamps, epoch = self._visited_stamps(count, len(compiled))

        rows = np.arange(count, dtype=np.int64)  # walker slot = output position
        current = np.full(count, start, dtype=np.int64)
        stamps[rows, start] = epoch
        is_type1 = np.zeros(count, dtype=bool)
        anchors = np.full(count, -1, dtype=np.int64)
        step_rows: list = []  # per lockstep round: the walkers that continued
        step_nodes: list = []  # ... and the node each of them moved to
        while rows.size:
            draws = nprng.random(rows.size)
            alive, chosen = self._select_parents(current, draws)
            # Precedence exactly as the per-walker kernels: a draw in the
            # stop-probability tail or a revisited node ends the walk as
            # type-0 *before* the stop set is consulted.
            revisit = stamps[rows, chosen] == epoch
            hit_stop = stop_mask[chosen]
            stopped = alive & ~revisit & hit_stop
            cont = alive & ~revisit & ~hit_stop
            finished = rows[stopped]
            is_type1[finished] = True
            anchors[finished] = chosen[stopped]
            rows = rows[cont]
            current = chosen[cont]
            stamps[rows, current] = epoch
            step_rows.append(rows)
            step_nodes.append(current)

        # Assemble the CSR-of-paths columns: each walker's trace is its
        # start node followed by the nodes of the rounds it survived.
        lengths = np.ones(count, dtype=np.int64)
        walked = np.concatenate(step_rows) if step_rows else np.empty(0, dtype=np.int64)
        if walked.size:
            lengths += np.bincount(walked, minlength=count)
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        node_indices = np.empty(int(offsets[-1]), dtype=np.int64)
        cursor = offsets[:-1].copy()
        node_indices[cursor] = start
        cursor += 1
        for survivors, frontier in zip(step_rows, step_nodes):
            if survivors.size:
                slots = cursor[survivors]
                node_indices[slots] = frontier
                cursor[survivors] = slots + 1
        return PathBatch(offsets, node_indices, is_type1, anchors, compiled)

    def sample_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        """Draw ``count`` traces as objects (the columnar kernel, viewed).

        Same draws, same paths, same order as :meth:`sample_path_batch` --
        this is literally that batch materialized.
        """
        return self.sample_path_batch(target, stop_set, count, rng=rng).to_paths()

    # ------------------------------------------------------------------ #
    # The historical per-walker kernel, retained as the reference path
    # ------------------------------------------------------------------ #

    def sample_paths_reference(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        """The pre-columnar lockstep kernel (per-walker set bookkeeping).

        Consumes the numpy stream identically to :meth:`sample_path_batch`
        and returns the identical paths; kept as the memory-frugal
        fallback for huge (batch × graph) requests and as the reference
        the columnar kernel is asserted against (benchmarks and the
        equivalence test suites).
        """
        require_non_negative_int(count, "count")
        nprng = self._batch_rng(rng)
        compiled = self.compiled
        start = compiled.index_of(target)
        if count == 0:
            return []
        if self._parents.size == 0:
            return [TargetPath(nodes=frozenset({target}), is_type1=False) for _ in range(count)]
        stop_mask = self._stop_mask(compiled, stop_set)
        return self._reference_kernel(compiled, start, stop_mask, count, nprng)

    def _reference_kernel(self, compiled, start, stop_mask, count, nprng) -> list[TargetPath]:
        np = self._np
        ids = compiled.nodes
        # Dense results first, ids mapped in one bulk pass at the end: the
        # per-walker loop only juggles ints and sets.
        traced: list[set[int]] = [{start} for _ in range(count)]
        flags = bytearray(count)
        anchor_of: dict[int, int] = {}
        walkers: list[int] = list(range(count))
        current: list[int] = [start] * count
        while walkers:
            current_arr = np.asarray(current, dtype=np.int64)
            draws = nprng.random(len(walkers))
            alive_arr, chosen_arr = self._select_parents(current_arr, draws)
            # Bulk-convert once per step: per-element numpy indexing inside
            # the bookkeeping loop costs more than the search itself.
            stop_hit = (stop_mask[chosen_arr] & alive_arr).tolist()
            alive = alive_arr.tolist()
            chosen = chosen_arr.tolist()
            next_walkers: list[int] = []
            next_current: list[int] = []
            for k, walker in enumerate(walkers):
                nodes_seen = traced[walker]
                parent = chosen[k]
                if not alive[k] or parent in nodes_seen:
                    pass  # type-0: flags[walker] stays 0
                elif stop_hit[k]:
                    flags[walker] = 1
                    anchor_of[walker] = parent
                else:
                    nodes_seen.add(parent)
                    next_walkers.append(walker)
                    next_current.append(parent)
            walkers = next_walkers
            current = next_current
        lookup = ids.__getitem__
        return [
            TargetPath(
                nodes=frozenset(map(lookup, nodes_seen)),
                is_type1=bool(flag),
                anchor=ids[anchor_of[walker]] if flag else None,
            )
            for walker, (nodes_seen, flag) in enumerate(zip(traced, flags))
        ]


class NumpyAliasEngine(NumpyEngine):
    """Vectorized engine with O(1) alias-table walk steps (``"numpy-alias"``).

    Identical to :class:`NumpyEngine` -- same columnar kernel, same
    epoch-stamped cycle detection, same CSR assembly, same per-round
    ``Generator.random(live)`` consumption -- except that each friend
    selection walks the snapshot's precomputed Vose alias tables
    (:meth:`repro.graph.compiled.CompiledGraph.alias_tables`) instead of
    binary-searching the cumulative-weight array: a draw below the node's
    total in-weight is rescaled to a unit uniform, floored into one of the
    node's ``degree`` alias cells, and resolved with two gathers.  Cost per
    walker per step is constant -- independent of node degree and of the
    global edge count -- where ``searchsorted`` pays O(log m).

    The sampled *distribution* is exactly Definition 1 (the alias table is
    an exact redistribution of the normalized in-weights), but the mapping
    from uniforms to friends differs from the search mode, so for the same
    seed this engine draws *different concrete paths*: it is a separate
    named stream.  The engine name is the stream tag -- sample-pool spill
    tags, matrix fingerprints and golden records all key on it -- so alias
    streams and search streams can never be mistaken for one another, and
    the default ``"numpy"`` engine remains bit-identical to every prior
    release.  See DESIGN.md §7 for the contract.
    """

    __slots__ = ()
    name = "numpy-alias"
    mode = "alias"

    def _alias_arrays(self):
        # Built per snapshot on first use; _rebind() resets them to None.
        if self._alias_prob is None:
            np = self._np
            prob, index = self._compiled.alias_tables()
            self._alias_prob = np.asarray(prob, dtype=np.float64)
            self._alias_index = np.asarray(index, dtype=np.int64)
        return self._alias_prob, self._alias_index

    def _select_parents(self, current, draws):
        """O(1) alias walk for one lockstep round: ``(alive, chosen)``."""
        np = self._np
        alias_prob, alias_index = self._alias_arrays()
        totals = self._totals[current]
        alive = draws < totals
        # Conditional on surviving the stop tail, draw/total is uniform on
        # [0, 1); walkers that stopped keep a harmless 0 (masked out later).
        unit = np.divide(draws, totals, out=np.zeros_like(draws), where=alive)
        degrees = self._degrees[current]
        position = unit * degrees
        cell = position.astype(np.int64)
        # Guard the float edges: draw/total can round up to 1.0, and dead
        # walkers on degree-0 nodes must still gather in-range entries.
        cell = np.minimum(cell, np.maximum(degrees - 1, 0))
        entries = np.minimum(self._indptr[current] + cell, self._parents.size - 1)
        keep = (position - cell) < alias_prob[entries]
        local = np.where(keep, cell, alias_index[entries])
        chosen = self._parents[np.minimum(self._indptr[current] + local, self._parents.size - 1)]
        return alive, chosen


_ENGINE_TYPES: dict[str, type] = {
    PythonEngine.name: PythonEngine,
    NumpyEngine.name: NumpyEngine,
    NumpyAliasEngine.name: NumpyAliasEngine,
}


def numpy_available() -> bool:
    """Whether the optional numpy backend can be constructed."""
    return _np is not None


def require_engine_name(name: object) -> str:
    """Validate a configured engine name against :data:`ENGINE_NAMES`.

    Shared by :class:`repro.core.raf.RAFConfig` and
    :class:`repro.experiments.config.ExperimentConfig` so backend additions
    happen in one place.  Raises ``ValueError`` on unknown names.
    """
    if not isinstance(name, str) or name.lower() not in ENGINE_NAMES:
        raise EngineError(
            f"engine must be one of {', '.join(ENGINE_NAMES)}, got {name!r}"
        )
    return name.lower()


def available_engines() -> tuple[str, ...]:
    """Names of the engines that can actually run in this environment."""
    names = [PythonEngine.name]
    if numpy_available():
        names.append(NumpyEngine.name)
        names.append(NumpyAliasEngine.name)
    return tuple(names)


def create_engine(graph: SocialGraph | CompiledGraph, name: str = "python") -> SamplingEngine:
    """Build a sampling engine for ``graph`` by backend name.

    ``"auto"`` picks the numpy backend when numpy is importable and falls
    back to the pure-Python backend otherwise.  Unknown names and
    unavailable backends raise :class:`~repro.exceptions.EngineError`.
    """
    key = (name or "python").lower()
    if key == "auto":
        key = NumpyEngine.name if numpy_available() else PythonEngine.name
    try:
        engine_type = _ENGINE_TYPES[key]
    except KeyError:
        raise EngineError(
            f"unknown sampling engine {name!r}; choose one of {', '.join(ENGINE_NAMES)}"
        ) from None
    return engine_type(graph)


def default_engine(graph: SocialGraph | CompiledGraph) -> SamplingEngine:
    """The default (pure-Python, bit-compatible) engine for ``graph``.

    Construction is cheap: the compiled snapshot is cached on the graph, so
    this can be called per sampling request without re-freezing anything.
    """
    return PythonEngine(graph)


def resolve_engine(
    graph: SocialGraph | CompiledGraph, engine: "SamplingEngine | str | None"
) -> SamplingEngine:
    """Coerce an engine argument (instance, name or None) into an engine.

    An engine *instance* must have been built on the same graph (same
    compiled snapshot) as ``graph``: silently sampling a different graph's
    topology would produce well-formed but wrong estimates, so a mismatch
    raises :class:`~repro.exceptions.EngineError` instead.  An engine whose
    source graph was merely *mutated* since construction is not stale --
    reading ``engine.compiled`` re-snapshots it against the graph's current
    mutation counter -- so only genuinely foreign graphs (or engines pinned
    to an explicit :class:`CompiledGraph`) are rejected.
    """
    if engine is None:
        return default_engine(graph)
    if isinstance(engine, str):
        return create_engine(graph, engine)
    expected = graph if isinstance(graph, CompiledGraph) else compile_graph(graph)
    if engine.compiled is not expected:
        raise EngineError(
            "the provided sampling engine was built on a different graph (or an "
            "outdated snapshot of this graph); create the engine from the same "
            "graph, e.g. create_engine(graph, name)"
        )
    return engine


def collect_type1_paths(
    engine: SamplingEngine,
    target: NodeId,
    stop_set: Iterable[NodeId],
    count: int,
    rng: RandomSource = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[list[TargetPath], int]:
    """Draw ``count`` traces in bounded chunks, keeping only the type-1 ones.

    Returns ``(type1_paths, num_type1)``.  Chunking keeps peak memory
    proportional to ``chunk_size`` plus the type-1 yield instead of the full
    realization count, which matters for the theory-faithful ``l``.
    """
    require_non_negative_int(count, "count")
    generator = ensure_rng(rng)
    stop = stop_set if isinstance(stop_set, (set, frozenset)) else frozenset(stop_set)
    native = getattr(engine, "native_batches", False)
    type1: list[TargetPath] = []
    remaining = count
    while remaining > 0:
        batch = min(chunk_size, remaining)
        if native:
            # Columnar filter: type-0 traces never become objects at all.
            drawn = engine.sample_path_batch(target, stop, batch, rng=generator)
            type1.extend(drawn.type1_paths_slice(0, len(drawn)))
        else:
            for path in engine.sample_paths(target, stop, batch, rng=generator):
                if path.is_type1:
                    type1.append(path)
        remaining -= batch
    return type1, len(type1)
