"""Monte Carlo estimation of the acceptance probability ``f(I)``.

Computing ``f(I)`` exactly is #P-hard (Sec. I of the paper), so the
evaluation pipeline estimates it by repeated simulation of Process 1.  The
estimator here is the straightforward fixed-sample-count mean; the
confidence-controlled stopping-rule estimator used inside the RAF algorithm
lives in :mod:`repro.estimation.stopping_rule`.

Both estimators additionally accept a reverse-sampling ``engine``: by
Lemmas 1-2, ``f(I)`` equals the probability that a random backward trace is
type-1 and covered by ``I``, so the same batched
:class:`~repro.diffusion.engine.SamplingEngine` that powers RAF can replace
the forward Process-1 simulation.  The reverse estimator costs a traced
path per sample instead of a full cascade, which is dramatically cheaper on
large graphs; it requires the (source, target) pair to be non-friends
(the Problem 1 setting under which Lemma 2 holds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.estimation.monte_carlo import monte_carlo_mean_batched
from repro.exceptions import EstimationError
from repro.graph.social_graph import SocialGraph
from repro.parallel.engine import maybe_parallel, sample_covered_indicators
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive_int
from repro.diffusion.engine import SamplingEngine, resolve_engine
from repro.diffusion.threshold_model import simulate_friending

__all__ = [
    "AcceptanceEstimate",
    "estimate_acceptance_probability",
    "estimate_pmax_fixed_samples",
]


@dataclass(frozen=True, slots=True)
class AcceptanceEstimate:
    """A Monte Carlo estimate of an acceptance probability.

    Attributes
    ----------
    probability:
        The sample mean (fraction of successful simulations).
    num_samples:
        How many simulations were run.
    successes:
        How many of them ended with the target accepting.
    std_error:
        The standard error of the mean under the binomial model.
    """

    probability: float
    num_samples: int
    successes: int

    @property
    def std_error(self) -> float:
        """Standard error of the estimate (binomial)."""
        if self.num_samples == 0:
            return float("inf")
        p = self.probability
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.num_samples)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """A normal-approximation confidence interval clipped to [0, 1]."""
        half_width = z * self.std_error
        return (max(0.0, self.probability - half_width), min(1.0, self.probability + half_width))


def estimate_acceptance_probability(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    invitation: Iterable[NodeId],
    num_samples: int = 1000,
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
) -> AcceptanceEstimate:
    """Estimate ``f(I)`` over ``num_samples`` independent samples.

    With ``engine=None`` (the default) each sample is one forward simulation
    of Process 1.  With an engine (an instance or a name accepted by
    :func:`repro.diffusion.engine.create_engine`) each sample is one
    reverse-sampled backward trace and a success is a trace covered by the
    invitation (Lemma 2); the two estimators have the same mean (Lemma 1)
    but the reverse one only costs a traced path per sample.  ``workers``
    fans the reverse-sampled batches over a worker pool without changing
    the seeded result (see :mod:`repro.parallel.engine`); the forward
    Process-1 simulation is inherently sequential per sample and ignores it.

    With a ``pool`` (:class:`~repro.pool.SamplePool`), the traces are the
    first ``num_samples`` of the pool's evaluation stream for this
    (target, N_s) key: scoring many candidate invitations against one pool
    samples the paths once and re-applies only the (cheap) ``covered_by``
    check per candidate.  Pool mode implies the reverse estimator
    (``engine``/``workers``/``rng`` are ignored) and is bit-identical
    whether the pool is warm or cold.
    """
    require_positive_int(num_samples, "num_samples")
    generator = ensure_rng(rng)
    invited = frozenset(invitation)
    if pool is not None:
        return _estimate_acceptance_pooled(graph, source, target, invited, num_samples, pool)
    if engine is not None:
        return _estimate_acceptance_reverse(
            graph, source, target, invited, num_samples, generator, engine, workers
        )
    successes = 0
    for _ in range(num_samples):
        outcome = simulate_friending(graph, source, invited, target=target, rng=generator)
        if outcome.success:
            successes += 1
    return AcceptanceEstimate(
        probability=successes / num_samples,
        num_samples=num_samples,
        successes=successes,
    )


def _require_reverse_estimable(graph: SocialGraph, source: NodeId, target: NodeId) -> None:
    if graph.has_edge(source, target):
        raise EstimationError(
            "the reverse-sampling estimator of f(I) requires a non-friend "
            "(source, target) pair (Lemma 2 / Problem 1); use the forward "
            "Process-1 estimator (engine=None) for friend pairs"
        )


def _estimate_acceptance_pooled(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    invited: frozenset,
    num_samples: int,
    pool: "SamplePool",
) -> AcceptanceEstimate:
    """``f(I)`` as the covered-trace rate of the pool's evaluation stream."""
    # Imported here, not at module scope: repro.pool consumes the engine
    # protocol from this package, so a top-level import would be circular.
    from repro.pool.sample_pool import STREAM_EVAL

    _require_reverse_estimable(graph, source, target)
    resolve_engine(graph, pool.engine)
    indicators = pool.covered_indicators(
        target, graph.neighbor_set(source), num_samples, invited, stream=STREAM_EVAL
    )
    successes = sum(indicators)
    return AcceptanceEstimate(
        probability=successes / num_samples,
        num_samples=num_samples,
        successes=successes,
    )


def _estimate_acceptance_reverse(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    invited: frozenset,
    num_samples: int,
    generator,
    engine: "SamplingEngine | str",
    workers: int | str | None = None,
) -> AcceptanceEstimate:
    """``f(I)`` as the covered-trace rate of engine-batched reverse samples."""
    _require_reverse_estimable(graph, source, target)
    resolved = maybe_parallel(resolve_engine(graph, engine), workers)
    source_friends = graph.neighbor_set(source)

    def draw_batch(size: int) -> bytes:
        # One 0/1 byte per trace; a parallel engine evaluates covered_by
        # worker-side so only the indicators cross the process boundary.
        return sample_covered_indicators(
            resolved, target, source_friends, size, invited, rng=generator
        )

    result = monte_carlo_mean_batched(draw_batch, num_samples)
    return AcceptanceEstimate(
        probability=result.mean,
        num_samples=result.num_samples,
        successes=round(result.mean * result.num_samples),
    )


def estimate_pmax_fixed_samples(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    num_samples: int = 1000,
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
) -> AcceptanceEstimate:
    """Estimate ``pmax = f(V)`` with a fixed sample count.

    This is the estimator the experiment harness uses for pair selection
    (pairs with ``pmax < 0.01`` are discarded, Sec. IV); the RAF algorithm
    itself uses the Dagum et al. stopping rule instead.  With an ``engine``
    the estimate is the type-1 rate of reverse samples (every type-1 trace
    is covered by the full invitation ``V``, Corollary 2).
    """
    invitation = frozenset(graph.nodes())
    return estimate_acceptance_probability(
        graph,
        source,
        target,
        invitation,
        num_samples=num_samples,
        rng=rng,
        engine=engine,
        workers=workers,
        pool=pool,
    )
