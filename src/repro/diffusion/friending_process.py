"""Monte Carlo estimation of the acceptance probability ``f(I)``.

Computing ``f(I)`` exactly is #P-hard (Sec. I of the paper), so the
evaluation pipeline estimates it by repeated simulation of Process 1.  The
estimator here is the straightforward fixed-sample-count mean; the
confidence-controlled stopping-rule estimator used inside the RAF algorithm
lives in :mod:`repro.estimation.stopping_rule`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.graph.social_graph import SocialGraph
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive_int
from repro.diffusion.threshold_model import simulate_friending

__all__ = [
    "AcceptanceEstimate",
    "estimate_acceptance_probability",
    "estimate_pmax_fixed_samples",
]


@dataclass(frozen=True, slots=True)
class AcceptanceEstimate:
    """A Monte Carlo estimate of an acceptance probability.

    Attributes
    ----------
    probability:
        The sample mean (fraction of successful simulations).
    num_samples:
        How many simulations were run.
    successes:
        How many of them ended with the target accepting.
    std_error:
        The standard error of the mean under the binomial model.
    """

    probability: float
    num_samples: int
    successes: int

    @property
    def std_error(self) -> float:
        """Standard error of the estimate (binomial)."""
        if self.num_samples == 0:
            return float("inf")
        p = self.probability
        return math.sqrt(max(p * (1.0 - p), 0.0) / self.num_samples)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """A normal-approximation confidence interval clipped to [0, 1]."""
        half_width = z * self.std_error
        return (max(0.0, self.probability - half_width), min(1.0, self.probability + half_width))


def estimate_acceptance_probability(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    invitation: Iterable[NodeId],
    num_samples: int = 1000,
    rng: RandomSource = None,
) -> AcceptanceEstimate:
    """Estimate ``f(I)`` by simulating Process 1 ``num_samples`` times."""
    require_positive_int(num_samples, "num_samples")
    generator = ensure_rng(rng)
    invited = frozenset(invitation)
    successes = 0
    for _ in range(num_samples):
        outcome = simulate_friending(graph, source, invited, target=target, rng=generator)
        if outcome.success:
            successes += 1
    return AcceptanceEstimate(
        probability=successes / num_samples,
        num_samples=num_samples,
        successes=successes,
    )


def estimate_pmax_fixed_samples(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    num_samples: int = 1000,
    rng: RandomSource = None,
) -> AcceptanceEstimate:
    """Estimate ``pmax = f(V)`` with a fixed sample count.

    This is the estimator the experiment harness uses for pair selection
    (pairs with ``pmax < 0.01`` are discarded, Sec. IV); the RAF algorithm
    itself uses the Dagum et al. stopping rule instead.
    """
    invitation = frozenset(graph.nodes())
    return estimate_acceptance_probability(
        graph, source, target, invitation, num_samples=num_samples, rng=rng
    )
