"""A shared, growable cache of reverse-sampled paths (the sample pool).

Every estimator in the pipeline consumes i.i.d. backward traces ``t(ĝ)``
drawn for some ``(target, stop_set)`` pair: the stopping-rule ``pmax``
estimator (Alg. 2), pair screening, the ``l`` realizations of Alg. 3 and
the Lemma-2 evaluation of ``f(I)``.  Without a pool each of those calls
re-draws its samples from scratch, so a screening run over ``k``
candidates -- or ``k`` queries arriving for the same pair -- re-pays the
full sampling cost ``k`` times.  :class:`SamplePool` removes that
duplication the same way RIS/IMM-family influence estimators reuse their
reverse-reachable sets: samples are drawn once, cached, and every
estimator consumes *prefixes* of one shared stream.

Determinism contract (DESIGN.md §4)
-----------------------------------

The pool never consumes a caller's ``random.Random`` stream.  Instead the
``i``-th sample of a key is a pure function of ``(pool seed, key, i)``:

* a *key* is ``(target, stop_set, stream)``, canonicalized by sorting the
  stop set and hashing with SHA-256 (:func:`pool_key_digest`);
* the key's seed is ``derive_seed(random.Random(pool_seed),
  "pool-key-<digest>")`` -- a fresh generator per derivation, so key seeds
  do not depend on the order in which keys are first touched;
* samples are appended in fixed-size chunks, chunk ``i`` drawn from
  ``random.Random(derive_seed(random.Random(key_seed), "pool-chunk-<i>"))``.

Because chunk seeds depend only on the chunk index, the pool is
*append-only with a stable prefix*: the first ``n`` samples of a key are
the same bytes no matter which query triggered their materialization, how
far the key has been extended since, whether the key was evicted and
re-drawn (or spilled and re-loaded), and whether caching is enabled at
all.  ``reuse=False`` turns the pool into a pass-through that re-draws
every request from the same canonical streams -- the "pool disabled"
reference that pooled results are bit-identical to.

Columnar storage (DESIGN.md §6)
-------------------------------

Chunks are stored exactly as the engine hands them over: batch-native
engines (the vectorized backend, alone or behind a
:class:`~repro.parallel.engine.ParallelEngine`) yield columnar
:class:`~repro.diffusion.path_batch.PathBatch` chunks whose columns never
decay into per-path objects inside the pool -- indicator reads
(:meth:`SamplePool.type1_indicators`,
:meth:`SamplePool.covered_indicators`) reduce directly on the arrays, and
:class:`TargetPath` objects are materialized lazily only where a caller
asks for them.  Object-path engines store plain path lists; both forms
serve the same canonical streams.

Memory is bounded two ways: at most ``max_targets`` keys are cached (LRU
by key), and an optional ``budget`` caps the total cached paths across
keys (least-recently-used keys are dropped first; the key currently being
served is never dropped).  With ``spill_dir`` set, evicted keys persist
as *append-safe per-chunk blobs*: each chunk is written once, as a
``.npz`` array blob for columnar chunks or canonical JSON for object
chunks, under a name derived from the key digest *and* the (pool seed,
chunk size, CSR digest) triple -- so re-evicting a grown key writes only
the new chunks (eviction cost is O(new samples), not O(key)), and spills
from a foreign seed or a dead topology are simply never found.  A small
``.meta.json`` per key (rewritten on each spill, O(1)) records the key
metadata for validation and debugging.

Cached paths are only meaningful for the topology they were sampled from.
The pool therefore pins the engine's compiled CSR snapshot and, when the
source graph is mutated (the engine re-snapshots, see
:mod:`repro.graph.compiled`), scopes the invalidation to the keys the
mutation can actually touch (DESIGN.md §10): the graph's structured
mutation log names the nodes whose in-rows changed, and a conservative
reverse-reachability BFS over the *old* CSR
(:func:`repro.graph.compiled.reverse_reachable`) over-approximates the
targets whose walks could ever visit one of them.  Keys outside that set
keep their cached chunks -- and their spill blobs, found through a short
history of previous digests -- because their streams are provably
byte-identical to a cold re-draw on the new topology.  Whenever the delta
cannot be bounded (pinned engine, opaque mutation, log overrun, BFS cap
exceeded), the pool falls back to the historical full flush, so the
prefix-per-topology contract is never weakened, only served cheaper.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.diffusion.engine import SamplingEngine, TargetPath
from repro.diffusion.path_batch import PathBatch, PathStore
from repro.faults import SITE_SPILL_IO, FaultPlan
from repro.graph.compiled import reverse_reachable
from repro.parallel.engine import ParallelEngine
from repro.types import NodeId, ordered
from repro.utils.rng import derive_seed
from repro.utils.validation import (
    require_non_negative_int,
    require_positive_int,
)

try:  # optional dependency: .npz spill blobs only
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "DEFAULT_POOL_CHUNK",
    "PoolStats",
    "PoolReader",
    "SamplePool",
    "pool_key_digest",
    "STREAM_PMAX",
    "STREAM_REALIZATIONS",
    "STREAM_EVAL",
]

#: Paths drawn per pool chunk.  Fixed so the chunk layout (and with it every
#: chunk seed) never depends on the request sizes that happened to arrive.
DEFAULT_POOL_CHUNK = 1024

#: Stream labels used by the library's own call sites.  Screening and the
#: stopping-rule ``pmax`` estimator share STREAM_PMAX (a screen warms the
#: estimator); realization sampling for cover *selection* and the Lemma-2
#: *evaluation* of candidate invitations use disjoint streams so an
#: invitation is never scored on the very samples it was optimized against.
STREAM_PMAX = "pmax"
STREAM_REALIZATIONS = "realizations"
STREAM_EVAL = "eval"

#: Default cap on the number of cached keys.
DEFAULT_MAX_TARGETS = 64

#: Default caps on the reverse-reachability BFS that scopes invalidation
#: after a graph mutation: at most this many levels / visited nodes before
#: the delta is declared unbounded and the pool falls back to a full flush.
DELTA_MAX_HOPS = 64
DELTA_MAX_NODES = 4096

#: How many re-snapshot transitions the pool remembers for spill-tag
#: compatibility: a key untouched by the last k <= this many transitions can
#: still load the blobs it spilled k topologies ago.
DIGEST_HISTORY_LIMIT = 8


def _csr_digest(compiled) -> str:
    """Digest of the compiled CSR a pool's cached paths were sampled from.

    Delegates to :meth:`repro.graph.compiled.CompiledGraph.csr_digest`,
    which hashes exactly the material this function historically hashed
    (the interned node-id tuple plus the raw CSR column bytes), so spill
    tags written by older releases keep matching.  For a memory-mapped
    snapshot this is O(1): the digest was computed at compile time and is
    carried by the snapshot's ``meta.json``, which is what binds spilled
    samples to the on-disk topology that produced them.
    """
    return compiled.csr_digest()


def pool_key_digest(target: NodeId, stop_set: Iterable[NodeId], stream: str = "") -> str:
    """Canonical digest identifying one ``(target, stop_set, stream)`` key.

    The stop set is sorted (:func:`repro.types.ordered`) and everything is
    serialized through ``repr`` before hashing, so the digest is stable
    across processes and insertion orders without constraining the node-id
    type.
    """
    payload = json.dumps(
        {
            "target": repr(target),
            "stop": [repr(node) for node in ordered(stop_set)],
            "stream": stream,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True, slots=True)
class PoolStats:
    """Counters describing what a pool has done so far.

    Attributes
    ----------
    keys:
        Keys currently cached in memory.
    cached_paths:
        Paths currently held across all cached keys.
    drawn_paths:
        Paths drawn from the engine over the pool's lifetime.
    served_paths:
        Paths returned to callers (``served - drawn`` is the reuse win).
    evictions:
        Keys dropped by the LRU/budget policy.
    spills, loads:
        Keys written to / restored from the spill directory.
    chunk_writes:
        Chunk blobs actually written to the spill directory.  Chunks
        already on disk are never rewritten (the append-safe contract), so
        re-evicting a grown key increments this only by the new chunks.
    invalidations:
        Re-snapshot transitions the pool has processed (graph mutations
        observed between two pool reads, however many events each covered).
    retained_keys:
        Cumulative keys kept warm across those transitions because the
        delta-scoped reverse-reachability check proved them untouched.
    flushed_keys:
        Cumulative keys discarded by those transitions (delta-scoped hits
        plus every key of each full-flush fallback).
    spill_errors:
        Spill attempts abandoned on an I/O error (real or injected).  A
        failed spill never corrupts state -- blobs are tmp+rename and
        append-only, so the key simply stays memory-only for that round --
        and serving continues unaffected.
    """

    keys: int
    cached_paths: int
    drawn_paths: int
    served_paths: int
    evictions: int
    spills: int
    loads: int
    chunk_writes: int
    invalidations: int = 0
    retained_keys: int = 0
    flushed_keys: int = 0
    spill_errors: int = 0


@dataclass(slots=True)
class _PoolEntry:
    """In-memory state of one key: its chunk store plus the key metadata
    needed to extend or spill it without re-deriving anything.

    ``spill_digest`` is the CSR digest whose snapshot interned the key's
    on-disk blob indices -- the digest its spill tag is built from.  A key
    retained across re-snapshots keeps its original digest, so re-evicting
    it appends to the same blob family instead of re-writing everything.
    ``spill_ok`` drops to False when an index-map-changing transition
    (``remove_node``) makes mixed-interning blobs possible; such keys stay
    warm in memory but are never spilled again.
    """

    target: NodeId
    stop_set: frozenset
    stream: str
    key_seed: int
    store: PathStore = field(default_factory=PathStore)
    chunks_drawn: int = 0
    spill_digest: str = ""
    spill_ok: bool = True


@dataclass(frozen=True, slots=True)
class _DeltaTransition:
    """One processed re-snapshot: what the mutation touched and how.

    ``digest``/``snapshot`` identify the *previous* topology (the one the
    retained blobs were interned on), ``affected`` is the conservative set
    of targets whose streams the transition could have changed, and
    ``index_stable`` records whether the dense node interning survived
    (False after ``remove_node``, which shifts later indices).
    """

    digest: str
    affected: frozenset
    snapshot: object
    index_stable: bool


class SamplePool:
    """A per-target, per-engine cache of canonical reverse-sample streams.

    Parameters
    ----------
    engine:
        The :class:`~repro.diffusion.engine.SamplingEngine` the pool draws
        from (any backend, including a
        :class:`~repro.parallel.engine.ParallelEngine`, whose seeded-chunk
        fan-out the pool uses to extend multiple chunks concurrently).
        Batch-native engines fill the pool with columnar
        :class:`~repro.diffusion.path_batch.PathBatch` chunks.
    seed:
        The pool's base seed.  Everything the pool ever returns is a pure
        function of ``(seed, key, index)``; derive it from the run's base
        generator with a label (e.g. ``derive_seed(rng, "pool")``).
    chunk_size:
        Paths drawn per extension chunk (fixed; part of the stream contract).
    max_targets:
        Maximum cached keys before LRU eviction.
    budget:
        Optional cap on total cached paths across keys (LRU eviction down
        to the cap; the key being served is never evicted).
    spill_dir:
        Optional directory for append-safe per-chunk spill blobs of
        evicted keys (``.npz`` for columnar chunks, canonical JSON for
        object chunks, plus one ``.meta.json`` per key).
    reuse:
        ``False`` disables caching entirely: every request re-draws from
        the same canonical streams.  Results are bit-identical either way;
        only the sampling cost differs.
    delta_hops, delta_nodes:
        Caps on the reverse-reachability BFS that scopes invalidation
        after a graph mutation (DESIGN.md §10).  When either cap is
        exceeded the pool falls back to a full flush, so raising them
        trades sync-time CPU for retention on large mutations; they never
        affect results.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injecting spill I/O
        errors (chaos testing).  Faults only ever make spills fail --
        which the pool survives by keeping the key memory-only -- and
        never change what any caller is served.

    A fresh pool pointed at an existing ``spill_dir`` *adopts* its
    predecessor's spills (DESIGN.md §11): same-digest blobs are found
    through the content-addressed spill tags alone, and blobs written
    under an earlier topology are found through the persisted digest
    lineage record, provided the pool seed, chunk size and engine backend
    match and the lineage proves the key untouched since.  Adoption is
    lazy (per key, on first touch) and byte-identical to a cold re-draw.
    """

    def __init__(
        self,
        engine: SamplingEngine,
        seed: int,
        *,
        chunk_size: int = DEFAULT_POOL_CHUNK,
        max_targets: int = DEFAULT_MAX_TARGETS,
        budget: int | None = None,
        spill_dir: "str | Path | None" = None,
        reuse: bool = True,
        delta_hops: int = DELTA_MAX_HOPS,
        delta_nodes: int = DELTA_MAX_NODES,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        require_positive_int(chunk_size, "chunk_size")
        require_positive_int(max_targets, "max_targets")
        require_positive_int(delta_hops, "delta_hops")
        require_positive_int(delta_nodes, "delta_nodes")
        if budget is not None:
            require_positive_int(budget, "budget")
        self._engine = engine
        self._seed = seed
        self._chunk_size = int(chunk_size)
        self._max_targets = int(max_targets)
        self._budget = budget
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._reuse = bool(reuse)
        self._delta_hops = int(delta_hops)
        self._delta_nodes = int(delta_nodes)
        self._entries: "OrderedDict[str, _PoolEntry]" = OrderedDict()
        self._snapshot = engine.compiled
        self._csr_digest = _csr_digest(self._snapshot)
        self._digest_history: list[_DeltaTransition] = []
        self._drawn = 0
        self._served = 0
        self._evictions = 0
        self._spills = 0
        self._loads = 0
        self._chunk_writes = 0
        self._invalidations = 0
        self._retained = 0
        self._flushed = 0
        self._spill_errors = 0
        self._fault_plan = fault_plan
        self._adopt_persisted_lineage()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def engine(self) -> SamplingEngine:
        """The engine the pool draws from."""
        return self._engine

    @property
    def seed(self) -> int:
        """The pool's base seed (the stream-defining constant)."""
        return self._seed

    @property
    def chunk_size(self) -> int:
        """Paths per extension chunk."""
        return self._chunk_size

    @property
    def reuse(self) -> bool:
        """Whether caching is enabled (``False`` = canonical pass-through)."""
        return self._reuse

    @property
    def drawn_paths(self) -> int:
        """Paths drawn from the engine so far (a plain counter read --
        safe to sample without synchronization while a query executes,
        unlike :meth:`stats`, which iterates the mutable entry map)."""
        return self._drawn

    @property
    def served_paths(self) -> int:
        """Paths returned to callers so far (same lock-free guarantee as
        :attr:`drawn_paths`)."""
        return self._served

    def stats(self) -> PoolStats:
        """Current counters (see :class:`PoolStats`).

        Syncs against the engine's snapshot first, so a graph mutated since
        the last read is reflected immediately (keys/cached-path counts
        never describe a dead CSR).
        """
        self._sync_snapshot()
        return PoolStats(
            keys=len(self._entries),
            cached_paths=sum(len(entry.store) for entry in self._entries.values()),
            drawn_paths=self._drawn,
            served_paths=self._served,
            evictions=self._evictions,
            spills=self._spills,
            loads=self._loads,
            chunk_writes=self._chunk_writes,
            invalidations=self._invalidations,
            retained_keys=self._retained,
            flushed_keys=self._flushed,
            spill_errors=self._spill_errors,
        )

    def cached_count(self, target: NodeId, stop_set: Iterable[NodeId], stream: str = "") -> int:
        """How many samples of this key are materialized in memory right now.

        Synced like :meth:`stats`: a key invalidated by a graph mutation
        counts 0 here even before the next ``take``/``paths`` call.
        """
        self._sync_snapshot()
        digest = pool_key_digest(target, stop_set, stream)
        entry = self._entries.get(digest)
        return len(entry.store) if entry is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        stats = self.stats()
        return (
            f"<SamplePool seed={self._seed} keys={stats.keys} "
            f"cached={stats.cached_paths} reuse={self._reuse}>"
        )

    # ------------------------------------------------------------------ #
    # The canonical streams
    # ------------------------------------------------------------------ #

    def _sync_snapshot(self) -> None:
        """Scope the cache invalidation when the engine re-snapshotted.

        Reading ``engine.compiled`` is what triggers the engine's own
        mutation-counter check, so a graph mutated between two pool reads
        is caught here.  The delta mapper (:meth:`_delta_affected`) turns
        the graph's structured mutation log into a conservative affected
        set over the *old* CSR; only keys whose target lies inside it are
        discarded, every other key stays warm (its stream is provably
        byte-identical on the new topology) and the old digest/snapshot
        are remembered so those keys' spill blobs stay loadable.  When the
        delta cannot be bounded the pool flushes everything, exactly as it
        always did.
        """
        current = self._engine.compiled
        if current is self._snapshot:
            return
        previous = self._snapshot
        previous_digest = self._csr_digest
        self._snapshot = current
        self._csr_digest = _csr_digest(current)
        self._invalidations += 1
        delta = self._delta_affected(previous)
        if delta is None:
            self._flushed += len(self._entries)
            self._entries.clear()
            self._digest_history.clear()
            return
        affected, index_stable = delta
        if affected:
            doomed = [
                digest
                for digest, entry in self._entries.items()
                if entry.target in affected
            ]
            for digest in doomed:
                del self._entries[digest]
            self._flushed += len(doomed)
        self._retained += len(self._entries)
        if not index_stable:
            # The dense interning shifted: appending new-snapshot chunks to
            # an old-digest blob family would mix index spaces on disk.
            # Retained keys stay warm in memory but stop spilling.
            for entry in self._entries.values():
                entry.spill_ok = False
        self._digest_history.append(
            _DeltaTransition(previous_digest, affected, previous, index_stable)
        )
        del self._digest_history[:-DIGEST_HISTORY_LIMIT]

    def _delta_affected(self, previous) -> "tuple[frozenset, bool] | None":
        """Map the mutations behind a re-snapshot to an affected target set.

        Returns ``(affected_node_ids, index_stable)`` when the delta is
        bounded: any key whose target is *not* in the set provably draws
        byte-identical paths on the new topology (its walks, replayed on
        the old CSR, can never reach a node whose in-row changed --
        :func:`repro.graph.compiled.reverse_reachable`).  Returns ``None``
        when the delta is unknowable -- snapshot-pinned engine, snapshots
        without a recorded graph version, an opaque mutation event, a
        mutation log that no longer covers the span, or a BFS that
        overran its hop/size caps -- and the caller must flush everything.
        """
        graph = getattr(self._engine, "source_graph", None)
        if graph is None:
            return None
        old_version = getattr(previous, "graph_version", None)
        if old_version is None or getattr(self._snapshot, "graph_version", None) is None:
            return None
        events = graph.mutations_since(old_version)
        if events is None:
            return None
        touched: list = []
        index_stable = True
        for event in events:
            if event.touched is None:
                return None
            if event.kind == "remove_node":
                index_stable = False
            touched.extend(event.touched)
        if not touched:
            return frozenset(), index_stable
        affected = reverse_reachable(
            previous, touched, max_hops=self._delta_hops, max_nodes=self._delta_nodes
        )
        if affected is None:
            return None
        return affected, index_stable

    def _key_seed(self, digest: str) -> int:
        # A fresh generator per derivation keeps key seeds independent of
        # the order in which keys are first touched.
        return derive_seed(random.Random(self._seed), f"pool-key-{digest}")

    def _chunk_seed(self, key_seed: int, index: int) -> int:
        return derive_seed(random.Random(key_seed), f"pool-chunk-{index}")

    def _draw_chunks(self, entry: _PoolEntry, first: int, last: int) -> list:
        """Draw chunks ``[first, last)`` of the entry's canonical stream.

        Returns one chunk per index -- a columnar batch from batch-native
        engines, a path list otherwise -- ready to append to the store.
        """
        sized_seeds = [
            (self._chunk_size, self._chunk_seed(entry.key_seed, index))
            for index in range(first, last)
        ]
        engine = self._engine
        if isinstance(engine, ParallelEngine):
            if engine.native_batches:
                chunks = engine.sample_seeded_batches(entry.target, entry.stop_set, sized_seeds)
            else:
                chunks = engine.sample_seeded_chunks(entry.target, entry.stop_set, sized_seeds)
        elif getattr(engine, "native_batches", False):
            chunks = [
                engine.sample_path_batch(
                    entry.target, entry.stop_set, size, rng=random.Random(seed)
                )
                for size, seed in sized_seeds
            ]
        else:
            chunks = [
                engine.sample_paths(entry.target, entry.stop_set, size, rng=random.Random(seed))
                for size, seed in sized_seeds
            ]
        self._drawn += sum(len(chunk) for chunk in chunks)
        return chunks

    def _extend(self, entry: _PoolEntry, count: int) -> None:
        """Materialize the entry's stream up to at least ``count`` paths."""
        if len(entry.store) >= count:
            return
        last = -(-count // self._chunk_size)  # ceil
        for chunk in self._draw_chunks(entry, entry.chunks_drawn, last):
            entry.store.append(chunk)
        entry.chunks_drawn = last

    def _entry_for(self, target: NodeId, stop_set: Iterable[NodeId], stream: str) -> _PoolEntry:
        self._sync_snapshot()
        stop = stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set)
        digest = pool_key_digest(target, stop, stream)
        entry = self._entries.get(digest)
        if entry is None:
            entry = self._load_spilled(digest)
            if entry is None:
                entry = _PoolEntry(
                    target=target,
                    stop_set=stop,
                    stream=stream,
                    key_seed=self._key_seed(digest),
                    spill_digest=self._csr_digest,
                )
            self._entries[digest] = entry
        self._entries.move_to_end(digest)  # LRU: most recent last
        return entry

    def _transient_entry(
        self, target: NodeId, stop_set: Iterable[NodeId], stream: str
    ) -> _PoolEntry:
        """An uncached entry over the same canonical stream (``reuse=False``)."""
        self._sync_snapshot()
        return _PoolEntry(
            target=target,
            stop_set=stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set),
            stream=stream,
            key_seed=self._key_seed(pool_key_digest(target, stop_set, stream)),
            spill_digest=self._csr_digest,
        )

    def _serve_segment(
        self,
        target: NodeId,
        stop_set: Iterable[NodeId],
        start: int,
        upto: int,
        stream: str,
        view: "Callable[[PathStore, int, int], object]",
    ):
        """Serve ``view(store, start, upto)`` of a cached key's stream."""
        entry = self._entry_for(target, stop_set, stream)
        self._extend(entry, upto)
        self._served += upto - start
        result = view(entry.store, start, upto)
        self._evict_over_limits()
        return result

    def _serve(
        self,
        target: NodeId,
        stop_set: Iterable[NodeId],
        count: int,
        stream: str,
        view: "Callable[[PathStore, int, int], object]",
    ):
        require_non_negative_int(count, "count")
        if not self._reuse:
            self._served += count
            entry = self._transient_entry(target, stop_set, stream)
            self._extend(entry, count)
            return view(entry.store, 0, count)
        return self._serve_segment(target, stop_set, 0, count, stream, view)

    def paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, stream: str = ""
    ) -> list[TargetPath]:
        """The first ``count`` samples of this key's canonical stream.

        Cached samples are served as-is; missing ones are drawn (in whole
        chunks) and appended first.  The returned list is a fresh
        materialization -- callers may consume it freely without perturbing
        the cache.  With ``reuse=False`` each call re-draws its prefix from
        the canonical chunk seeds (sequential consumers should hold a
        :meth:`reader`, which buffers its own key even when caching is off).
        """
        return self._serve(target, stop_set, count, stream, PathStore.slice)

    def type1_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, stream: str = ""
    ) -> list[TargetPath]:
        """Only the type-1 paths among the stream's first ``count`` samples.

        Order-preserving, so it equals filtering :meth:`paths` -- but on
        columnar chunks the type-0 traces are skipped at the column level
        and never become objects.
        """
        return self._serve(target, stop_set, count, stream, PathStore.type1_slice)

    def type1_indicators(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, stream: str = ""
    ) -> bytes:
        """Type indicators ``y(ĝ)`` of the stream's first ``count`` samples."""
        return self._serve(target, stop_set, count, stream, PathStore.type1_bytes)

    def covered_indicators(
        self,
        target: NodeId,
        stop_set: Iterable[NodeId],
        count: int,
        invitation: frozenset,
        stream: str = "",
    ) -> bytes:
        """Lemma-2 covered-trace indicators of the stream's first ``count`` samples."""

        def _view(store: PathStore, start: int, stop: int) -> bytes:
            return store.covered_bytes(start, stop, invitation)

        return self._serve(target, stop_set, count, stream, _view)

    def reader(self, target: NodeId, stop_set: Iterable[NodeId], stream: str = "") -> "PoolReader":
        """A sequential cursor over this key's canonical stream."""
        return PoolReader(self, target, stop_set, stream)

    # ------------------------------------------------------------------ #
    # Eviction and spill
    # ------------------------------------------------------------------ #

    def _evict_over_limits(self) -> None:
        def total() -> int:
            return sum(len(entry.store) for entry in self._entries.values())

        # Never evict the most recently served key (last in LRU order):
        # dropping a key mid-query would re-draw what was just extended.
        while len(self._entries) > 1 and (
            len(self._entries) > self._max_targets
            or (self._budget is not None and total() > self._budget)
        ):
            digest, entry = self._entries.popitem(last=False)
            self._evictions += 1
            self._spill(digest, entry)

    def _stream_engine_name(self) -> str:
        """The name of the engine whose draws define the canonical streams.

        A :class:`~repro.parallel.engine.ParallelEngine` is transparent
        here: pool chunks are drawn from caller-owned seeds, so its chunk
        contents equal its *base* engine's -- spills must stay shareable
        across worker counts (and with the unwrapped engine).  Different
        base backends (python vs numpy vs numpy-alias) draw different
        streams for the same seed -- the alias engine maps the *same*
        uniform draws through its alias tables rather than the inverse
        CDF -- so their spills must never be mistaken for each other.
        """
        engine = self._engine
        base = getattr(engine, "base", engine)
        return base.name

    def _spill_tag(self, digest: str, csr_digest: "str | None" = None) -> str:
        """The on-disk identity of one key's blobs.

        Besides the key digest it hashes in the pool seed, the chunk size,
        a CSR digest and the stream-defining engine backend -- everything
        that defines the canonical chunk contents -- so a blob name *is*
        its validity: foreign-seed, foreign-chunking, foreign-engine and
        dead-topology spills are never even opened.  ``csr_digest``
        defaults to the current snapshot's; retained keys pass the digest
        their blob family was started under (``_PoolEntry.spill_digest``),
        and historical loads pass digests from the transition history.
        """
        material = (
            f"{digest}:{self._seed}:{self._chunk_size}:"
            f"{csr_digest or self._csr_digest}:{self._stream_engine_name()}"
        )
        return f"{digest}-{hashlib.sha256(material.encode('utf-8')).hexdigest()[:12]}"

    def _meta_path(self, tag: str) -> Path:
        return self._spill_dir / f"pool-{tag}.meta.json"

    def _chunk_paths(self, tag: str, index: int) -> tuple[Path, Path]:
        stem = f"pool-{tag}.chunk-{index:05d}"
        return self._spill_dir / f"{stem}.npz", self._spill_dir / f"{stem}.json"

    @staticmethod
    def _spillable_id(node: object) -> bool:
        # JSON round-trips these id types losslessly; anything fancier
        # (tuples, dataclasses) is kept in memory only.
        return isinstance(node, (int, str)) and not isinstance(node, bool)

    @classmethod
    def _columnar_chunk(cls, chunk) -> bool:
        return (
            _np is not None
            and isinstance(chunk, PathBatch)
            and isinstance(chunk.offsets, _np.ndarray)
        )

    def _spillable(self, entry: _PoolEntry) -> bool:
        ids = {entry.target, *entry.stop_set}
        for chunk in entry.store.chunks():
            if self._columnar_chunk(chunk):
                continue  # dense indices only; no ids ever serialized
            paths = chunk.to_paths() if isinstance(chunk, PathBatch) else chunk
            ids.update(node for path in paths for node in path.nodes)
        return all(self._spillable_id(node) for node in ids)

    def _write_canonical_json(self, path: Path, payload: dict) -> None:
        # Canonical encoding (sorted keys, fixed indent) and write-then-rename,
        # exactly like the experiment record store.
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(scratch, path)

    def _write_chunk_blob(self, tag: str, index: int, chunk) -> None:
        """Write one chunk blob unless it is already on disk (append-safe:
        a chunk's contents are a pure function of its name, so an existing
        blob is never rewritten)."""
        npz_path, json_path = self._chunk_paths(tag, index)
        if npz_path.is_file() or json_path.is_file():
            return
        if self._fault_plan is not None and self._fault_plan.fires(SITE_SPILL_IO):
            raise OSError(f"injected spill fault writing chunk {index} of {tag}")
        if self._columnar_chunk(chunk):
            scratch = npz_path.with_name(npz_path.name + ".tmp")
            with open(scratch, "wb") as handle:
                chunk.save_npz(handle)
            os.replace(scratch, npz_path)
        else:
            paths = chunk.to_paths() if isinstance(chunk, PathBatch) else chunk
            payload = {
                "paths": [
                    {
                        "nodes": ordered(path.nodes),
                        "is_type1": path.is_type1,
                        "anchor": path.anchor,
                    }
                    for path in paths
                ]
            }
            self._write_canonical_json(json_path, payload)
        self._chunk_writes += 1

    def _spill(self, digest: str, entry: _PoolEntry) -> bool:
        if self._spill_dir is None or entry.chunks_drawn == 0:
            return False
        if not entry.spill_ok:
            return False  # interning shifted under this key; memory-only now
        if not self._spillable(entry):
            return False
        spill_digest = entry.spill_digest or self._csr_digest
        tag = self._spill_tag(digest, spill_digest)
        try:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
            for index, chunk in enumerate(entry.store.chunks()):
                self._write_chunk_blob(tag, index, chunk)
            self._write_canonical_json(
                self._meta_path(tag),
                {
                    "digest": digest,
                    "target": entry.target,
                    "stop": ordered(entry.stop_set),
                    "stream": entry.stream,
                    "pool_seed": self._seed,
                    "chunk_size": self._chunk_size,
                    "csr": spill_digest,
                    "engine": self._stream_engine_name(),
                    "chunks_drawn": entry.chunks_drawn,
                },
            )
        except OSError:
            # A failed spill (disk full, injected fault) abandons this
            # round without corrupting anything: blobs already written are
            # valid (each is complete or absent, tmp+rename), the previous
            # meta -- if any -- still describes a consistent shorter
            # prefix, and the key itself stays served from memory.
            self._spill_errors += 1
            return False
        self._spills += 1
        self._write_lineage()
        return True

    # ------------------------------------------------------------------ #
    # Persisted digest lineage (restart adoption)
    # ------------------------------------------------------------------ #

    def _lineage_path(self) -> Path:
        """The pool's digest-lineage record inside ``spill_dir``.

        Scoped by (pool seed, chunk size, engine backend) -- the
        stream-defining triple -- so pools with different stream contracts
        sharing one directory never read each other's lineage.
        """
        material = f"{self._seed}:{self._chunk_size}:{self._stream_engine_name()}"
        scope = hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]
        return self._spill_dir / f"pool-lineage-{scope}.json"

    def _write_lineage(self) -> None:
        """Persist the current digest plus the transition history (tmp+rename).

        The record is what lets a *restarted* pool adopt spills written
        under an earlier topology: it proves, per transition, which
        targets the mutation could have touched and whether the dense
        interning survived.  Transitions whose affected sets JSON cannot
        round-trip are dropped together with everything older (the
        lineage walk needs an unbroken chain); the write itself is
        tmp+rename, so a crash mid-write leaves the previous record
        intact and a half-written record is never adoptable.
        """
        if self._spill_dir is None:
            return
        lineage = []
        for transition in self._digest_history:
            if not all(self._spillable_id(node) for node in transition.affected):
                lineage = []  # unbroken-chain rule: older entries unreachable
                continue
            lineage.append(
                {
                    "digest": transition.digest,
                    "affected": ordered(transition.affected),
                    "index_stable": transition.index_stable,
                }
            )
        try:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
            self._write_canonical_json(
                self._lineage_path(),
                {
                    "pool_seed": self._seed,
                    "chunk_size": self._chunk_size,
                    "engine": self._stream_engine_name(),
                    "csr": self._csr_digest,
                    "lineage": lineage,
                },
            )
        except OSError:
            self._spill_errors += 1

    def _adopt_persisted_lineage(self) -> None:
        """Seed the transition history from a predecessor's lineage record.

        Adoption requires the full identity to line up: same pool seed,
        chunk size and engine backend (the record's scope *and* its body,
        as a backstop) and -- crucially -- the predecessor's final CSR
        digest equal to this pool's current one.  A graph that changed
        while no pool was running is an unprovable delta, so the lineage
        is ignored and only same-digest spills remain adoptable, exactly
        like the in-memory full-flush fallback.  Adopted transitions
        carry no snapshot object (the predecessor's interning is gone);
        the load path therefore only uses them when the index chain is
        recorded stable, in which case attaching the current snapshot is
        byte-identical.
        """
        if self._spill_dir is None or not self._reuse:
            return
        path = self._lineage_path()
        if not path.is_file():
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("pool_seed") != self._seed
            or payload.get("chunk_size") != self._chunk_size
            or payload.get("engine") != self._stream_engine_name()
            or payload.get("csr") != self._csr_digest
        ):
            return
        entries = payload.get("lineage")
        if not isinstance(entries, list):
            return
        adopted = []
        for item in entries:
            if (
                not isinstance(item, dict)
                or not isinstance(item.get("digest"), str)
                or not isinstance(item.get("affected"), list)
                or not isinstance(item.get("index_stable"), bool)
            ):
                return  # malformed record: adopt nothing rather than guess
            adopted.append(
                _DeltaTransition(
                    digest=item["digest"],
                    affected=frozenset(item["affected"]),
                    snapshot=None,
                    index_stable=item["index_stable"],
                )
            )
        self._digest_history = adopted[-DIGEST_HISTORY_LIMIT:]

    def _load_chunk_blob(self, tag: str, index: int, snapshot):
        npz_path, json_path = self._chunk_paths(tag, index)
        if npz_path.is_file():
            if _np is None:
                return None  # columnar blob, no numpy here: re-draw instead
            # Columnar blobs store dense indices relative to the snapshot
            # they were interned on -- attach exactly that snapshot so id
            # materialization stays correct for historical generations.
            return PathBatch.load_npz(npz_path, graph=snapshot)
        if json_path.is_file():
            payload = json.loads(json_path.read_text(encoding="utf-8"))
            return [
                TargetPath(
                    nodes=frozenset(item["nodes"]),
                    is_type1=item["is_type1"],
                    anchor=item["anchor"],
                )
                for item in payload["paths"]
            ]
        return None

    def _load_spilled(self, digest: str) -> "_PoolEntry | None":
        """Re-materialize a key from its spill blobs, if any are valid.

        The spill tag already binds the blobs to (key, pool seed, chunk
        size, CSR digest), so a foreign or stale spill is simply not found
        and the key is re-drawn -- the append-only prefix contract makes
        the two outcomes indistinguishable apart from cost.  A partial set
        of blobs (e.g. an interrupted spill) loads as a shorter prefix.

        Blobs written under the current digest are tried first; on a miss
        the transition history is walked newest to oldest, loading a
        previous-topology spill when the key's target was provably
        unaffected by *every* transition since it was written (spill-tag
        compatibility across re-snapshots, DESIGN.md §10).  History
        adopted from a persisted lineage record (a restarted pool) has no
        snapshot object for its generations; those are only consulted
        while the interning chain is recorded stable, in which case the
        current snapshot indexes the old blobs byte-identically.
        """
        if self._spill_dir is None:
            return None
        entry = self._load_spill_generation(digest, self._csr_digest, self._snapshot)
        if entry is not None:
            self._loads += 1
            return entry
        affected_since: set = set()
        index_stable = True
        for transition in reversed(self._digest_history):
            affected_since |= transition.affected
            index_stable = index_stable and transition.index_stable
            if transition.snapshot is None and not index_stable:
                continue  # old interning is gone and provably shifted
            snapshot = transition.snapshot if transition.snapshot is not None else self._snapshot
            entry = self._load_spill_generation(digest, transition.digest, snapshot)
            if entry is not None:
                if entry.target in affected_since:
                    return None  # stale -- and older generations staler still
                entry.spill_ok = index_stable
                self._loads += 1
                return entry
        return None

    def _load_spill_generation(
        self, digest: str, csr_digest: str, snapshot
    ) -> "_PoolEntry | None":
        """Load one key's blobs written under one specific CSR digest.

        Any unreadable, unparsable or structurally wrong file -- a
        crash-interrupted or otherwise damaged spill -- makes the
        generation load as nothing (or as the shorter prefix before the
        damage), never as wrong data: the key is then simply re-drawn.
        """
        tag = self._spill_tag(digest, csr_digest)
        meta_path = self._meta_path(tag)
        if not meta_path.is_file():
            return None
        try:
            payload = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if (  # the tag construction implies these; keep them as a backstop
            payload.get("digest") != digest
            or payload.get("pool_seed") != self._seed
            or payload.get("chunk_size") != self._chunk_size
            or payload.get("csr") != csr_digest
            or payload.get("engine") != self._stream_engine_name()
        ):
            return None
        store = PathStore()
        try:
            for index in range(int(payload["chunks_drawn"])):
                chunk = self._load_chunk_blob(tag, index, snapshot)
                if chunk is None:
                    break  # later blobs without this one would break the prefix
                store.append(chunk)
            if store.num_chunks == 0:
                return None
            return _PoolEntry(
                target=payload["target"],
                stop_set=frozenset(payload["stop"]),
                stream=payload["stream"],
                key_seed=self._key_seed(digest),
                store=store,
                chunks_drawn=store.num_chunks,
                spill_digest=csr_digest,
            )
        except (KeyError, TypeError, ValueError, OSError, json.JSONDecodeError):
            return None

    def spill_all(self) -> int:
        """Spill every cached key to ``spill_dir`` (no-op without one).

        Returns the number of keys actually written (keys with ids JSON
        cannot round-trip are skipped).  Entries stay cached; this is a
        checkpoint, not an eviction.  The digest-lineage record is
        refreshed alongside, so a process restarting after this call can
        adopt everything the checkpoint wrote (DESIGN.md §11).
        """
        if self._spill_dir is None:
            return 0
        self._sync_snapshot()
        written = sum(1 for digest, entry in self._entries.items() if self._spill(digest, entry))
        if written or self._spills:
            self._write_lineage()
        return written


class PoolReader:
    """A sequential cursor over one key's canonical stream.

    ``take(n)`` returns the next ``n`` samples and advances; the segment
    boundaries a reader happens to use never change the underlying stream,
    so any interleaving of readers and direct :meth:`SamplePool.paths`
    calls over the same key observes the same samples at the same indices.
    ``take_type1_bytes(n)`` advances the same cursor but reads only the
    type indicators -- on columnar chunks no path objects are built.

    With a ``reuse=False`` pool the reader buffers its own copy of the key
    (discarded with the reader), so a sequential consumer still draws each
    chunk once -- the "pool disabled" mode re-pays sampling per *query*,
    not per ``take``.
    """

    def __init__(
        self, pool: SamplePool, target: NodeId, stop_set: Iterable[NodeId], stream: str = ""
    ) -> None:
        self._pool = pool
        self._target = target
        self._stop_set = stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set)
        self._stream = stream
        self._offset = 0
        self._local: _PoolEntry | None = None

    @property
    def offset(self) -> int:
        """How many samples this reader has consumed."""
        return self._offset

    def cached_remaining(self) -> int:
        """How many already-materialized *pool* samples lie ahead of the cursor
        (always 0 for a ``reuse=False`` pool: nothing outlives a query)."""
        cached = self._pool.cached_count(self._target, self._stop_set, self._stream)
        return max(0, cached - self._offset)

    def _take(self, count: int, view: "Callable[[PathStore, int, int], object]"):
        require_non_negative_int(count, "count")
        upto = self._offset + count
        if self._pool.reuse:
            result = self._pool._serve_segment(
                self._target, self._stop_set, self._offset, upto, self._stream, view
            )
        else:
            if self._local is None:
                self._local = self._pool._transient_entry(
                    self._target, self._stop_set, self._stream
                )
            self._pool._extend(self._local, upto)
            self._pool._served += count
            result = view(self._local.store, self._offset, upto)
        self._offset = upto
        return result

    def take(self, count: int) -> list[TargetPath]:
        """The next ``count`` samples of the stream (drawing if needed)."""
        return self._take(count, PathStore.slice)

    def take_type1_bytes(self, count: int) -> bytes:
        """Type indicators of the next ``count`` samples (cursor advances)."""
        return self._take(count, PathStore.type1_bytes)
