"""A shared, growable cache of reverse-sampled paths (the sample pool).

Every estimator in the pipeline consumes i.i.d. backward traces ``t(ĝ)``
drawn for some ``(target, stop_set)`` pair: the stopping-rule ``pmax``
estimator (Alg. 2), pair screening, the ``l`` realizations of Alg. 3 and
the Lemma-2 evaluation of ``f(I)``.  Without a pool each of those calls
re-draws its samples from scratch, so a screening run over ``k``
candidates -- or ``k`` queries arriving for the same pair -- re-pays the
full sampling cost ``k`` times.  :class:`SamplePool` removes that
duplication the same way RIS/IMM-family influence estimators reuse their
reverse-reachable sets: samples are drawn once, cached, and every
estimator consumes *prefixes* of one shared stream.

Determinism contract (DESIGN.md §4)
-----------------------------------

The pool never consumes a caller's ``random.Random`` stream.  Instead the
``i``-th sample of a key is a pure function of ``(pool seed, key, i)``:

* a *key* is ``(target, stop_set, stream)``, canonicalized by sorting the
  stop set and hashing with SHA-256 (:func:`pool_key_digest`);
* the key's seed is ``derive_seed(random.Random(pool_seed),
  "pool-key-<digest>")`` -- a fresh generator per derivation, so key seeds
  do not depend on the order in which keys are first touched;
* samples are appended in fixed-size chunks, chunk ``i`` drawn from
  ``random.Random(derive_seed(random.Random(key_seed), "pool-chunk-<i>"))``.

Because chunk seeds depend only on the chunk index, the pool is
*append-only with a stable prefix*: the first ``n`` samples of a key are
the same bytes no matter which query triggered their materialization, how
far the key has been extended since, whether the key was evicted and
re-drawn (or spilled and re-loaded), and whether caching is enabled at
all.  ``reuse=False`` turns the pool into a pass-through that re-draws
every request from the same canonical streams -- the "pool disabled"
reference that pooled results are bit-identical to.

Memory is bounded two ways: at most ``max_targets`` keys are cached (LRU
by key), and an optional ``budget`` caps the total cached paths across
keys (least-recently-used keys are dropped first; the key currently being
served is never dropped).  With ``spill_dir`` set, evicted keys are
written as canonical JSON (same sorted-keys/indent encoding as
:mod:`repro.experiments.records`) and transparently re-loaded on the next
miss, so cold pools survive eviction -- and processes -- at the cost of a
file read instead of a re-draw.

Cached paths are only meaningful for the topology they were sampled from.
The pool therefore pins the engine's compiled CSR snapshot: when the
source graph is mutated (the engine re-snapshots, see
:mod:`repro.graph.compiled`), every cached entry is discarded and the
streams are re-drawn from the current snapshot -- the prefix contract then
holds *per topology*.  Spill files record a digest of the CSR they were
sampled from and are ignored when it no longer matches, exactly like
foreign-seed spills.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.diffusion.engine import SamplingEngine, TargetPath
from repro.parallel.engine import ParallelEngine
from repro.types import NodeId, ordered
from repro.utils.rng import derive_seed
from repro.utils.validation import (
    require_non_negative_int,
    require_positive_int,
)

__all__ = [
    "DEFAULT_POOL_CHUNK",
    "PoolStats",
    "PoolReader",
    "SamplePool",
    "pool_key_digest",
    "STREAM_PMAX",
    "STREAM_REALIZATIONS",
    "STREAM_EVAL",
]

#: Paths drawn per pool chunk.  Fixed so the chunk layout (and with it every
#: chunk seed) never depends on the request sizes that happened to arrive.
DEFAULT_POOL_CHUNK = 1024

#: Stream labels used by the library's own call sites.  Screening and the
#: stopping-rule ``pmax`` estimator share STREAM_PMAX (a screen warms the
#: estimator); realization sampling for cover *selection* and the Lemma-2
#: *evaluation* of candidate invitations use disjoint streams so an
#: invitation is never scored on the very samples it was optimized against.
STREAM_PMAX = "pmax"
STREAM_REALIZATIONS = "realizations"
STREAM_EVAL = "eval"

#: Default cap on the number of cached keys.
DEFAULT_MAX_TARGETS = 64


def _csr_digest(compiled) -> str:
    """Digest of the compiled CSR a pool's cached paths were sampled from.

    Computed only when the snapshot actually changes (and once at pool
    construction), it covers the interned node ids and the full weighted
    adjacency arrays, so any mutation that could change a sampled path
    changes the digest.  Stable across processes (used to validate spill
    files against the topology that wrote them).
    """
    digest = hashlib.sha256()
    digest.update(repr(compiled.nodes).encode("utf-8"))
    digest.update(compiled.indptr.tobytes())
    digest.update(compiled.parents.tobytes())
    digest.update(compiled.cum_weights.tobytes())
    return digest.hexdigest()[:24]


def pool_key_digest(target: NodeId, stop_set: Iterable[NodeId], stream: str = "") -> str:
    """Canonical digest identifying one ``(target, stop_set, stream)`` key.

    The stop set is sorted (:func:`repro.types.ordered`) and everything is
    serialized through ``repr`` before hashing, so the digest is stable
    across processes and insertion orders without constraining the node-id
    type.
    """
    payload = json.dumps(
        {
            "target": repr(target),
            "stop": [repr(node) for node in ordered(stop_set)],
            "stream": stream,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True, slots=True)
class PoolStats:
    """Counters describing what a pool has done so far.

    Attributes
    ----------
    keys:
        Keys currently cached in memory.
    cached_paths:
        Paths currently held across all cached keys.
    drawn_paths:
        Paths drawn from the engine over the pool's lifetime.
    served_paths:
        Paths returned to callers (``served - drawn`` is the reuse win).
    evictions:
        Keys dropped by the LRU/budget policy.
    spills, loads:
        Keys written to / restored from the spill directory.
    """

    keys: int
    cached_paths: int
    drawn_paths: int
    served_paths: int
    evictions: int
    spills: int
    loads: int


@dataclass(slots=True)
class _PoolEntry:
    """In-memory state of one key: its paths plus the key metadata needed
    to extend or spill it without re-deriving anything."""

    target: NodeId
    stop_set: frozenset
    stream: str
    key_seed: int
    paths: list[TargetPath] = field(default_factory=list)
    chunks_drawn: int = 0


class SamplePool:
    """A per-target, per-engine cache of canonical reverse-sample streams.

    Parameters
    ----------
    engine:
        The :class:`~repro.diffusion.engine.SamplingEngine` the pool draws
        from (any backend, including a
        :class:`~repro.parallel.engine.ParallelEngine`, whose seeded-chunk
        fan-out the pool uses to extend multiple chunks concurrently).
    seed:
        The pool's base seed.  Everything the pool ever returns is a pure
        function of ``(seed, key, index)``; derive it from the run's base
        generator with a label (e.g. ``derive_seed(rng, "pool")``).
    chunk_size:
        Paths drawn per extension chunk (fixed; part of the stream contract).
    max_targets:
        Maximum cached keys before LRU eviction.
    budget:
        Optional cap on total cached paths across keys (LRU eviction down
        to the cap; the key being served is never evicted).
    spill_dir:
        Optional directory for canonical-JSON spill files of evicted keys.
    reuse:
        ``False`` disables caching entirely: every request re-draws from
        the same canonical streams.  Results are bit-identical either way;
        only the sampling cost differs.
    """

    def __init__(
        self,
        engine: SamplingEngine,
        seed: int,
        *,
        chunk_size: int = DEFAULT_POOL_CHUNK,
        max_targets: int = DEFAULT_MAX_TARGETS,
        budget: int | None = None,
        spill_dir: "str | Path | None" = None,
        reuse: bool = True,
    ) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        require_positive_int(chunk_size, "chunk_size")
        require_positive_int(max_targets, "max_targets")
        if budget is not None:
            require_positive_int(budget, "budget")
        self._engine = engine
        self._seed = seed
        self._chunk_size = int(chunk_size)
        self._max_targets = int(max_targets)
        self._budget = budget
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._reuse = bool(reuse)
        self._entries: "OrderedDict[str, _PoolEntry]" = OrderedDict()
        self._snapshot = engine.compiled
        self._csr_digest = _csr_digest(self._snapshot)
        self._drawn = 0
        self._served = 0
        self._evictions = 0
        self._spills = 0
        self._loads = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def engine(self) -> SamplingEngine:
        """The engine the pool draws from."""
        return self._engine

    @property
    def seed(self) -> int:
        """The pool's base seed (the stream-defining constant)."""
        return self._seed

    @property
    def chunk_size(self) -> int:
        """Paths per extension chunk."""
        return self._chunk_size

    @property
    def reuse(self) -> bool:
        """Whether caching is enabled (``False`` = canonical pass-through)."""
        return self._reuse

    @property
    def drawn_paths(self) -> int:
        """Paths drawn from the engine so far (a plain counter read --
        safe to sample without synchronization while a query executes,
        unlike :meth:`stats`, which iterates the mutable entry map)."""
        return self._drawn

    @property
    def served_paths(self) -> int:
        """Paths returned to callers so far (same lock-free guarantee as
        :attr:`drawn_paths`)."""
        return self._served

    def stats(self) -> PoolStats:
        """Current counters (see :class:`PoolStats`)."""
        return PoolStats(
            keys=len(self._entries),
            cached_paths=sum(len(entry.paths) for entry in self._entries.values()),
            drawn_paths=self._drawn,
            served_paths=self._served,
            evictions=self._evictions,
            spills=self._spills,
            loads=self._loads,
        )

    def cached_count(self, target: NodeId, stop_set: Iterable[NodeId], stream: str = "") -> int:
        """How many samples of this key are materialized in memory right now."""
        digest = pool_key_digest(target, stop_set, stream)
        entry = self._entries.get(digest)
        return len(entry.paths) if entry is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        stats = self.stats()
        return (
            f"<SamplePool seed={self._seed} keys={stats.keys} "
            f"cached={stats.cached_paths} reuse={self._reuse}>"
        )

    # ------------------------------------------------------------------ #
    # The canonical streams
    # ------------------------------------------------------------------ #

    def _sync_snapshot(self) -> None:
        """Invalidate the cache if the engine re-snapshotted its graph.

        Reading ``engine.compiled`` is what triggers the engine's own
        mutation-counter check, so a graph mutated between two pool reads
        is caught here: every cached entry was sampled from the dead CSR
        and is discarded (not spilled -- spilling dead data would only
        poison a later load), and the streams re-draw from the current
        topology on demand.
        """
        current = self._engine.compiled
        if current is not self._snapshot:
            self._entries.clear()
            self._snapshot = current
            self._csr_digest = _csr_digest(current)

    def _key_seed(self, digest: str) -> int:
        # A fresh generator per derivation keeps key seeds independent of
        # the order in which keys are first touched.
        return derive_seed(random.Random(self._seed), f"pool-key-{digest}")

    def _chunk_seed(self, key_seed: int, index: int) -> int:
        return derive_seed(random.Random(key_seed), f"pool-chunk-{index}")

    def _draw_chunks(self, entry: _PoolEntry, first: int, last: int) -> list[TargetPath]:
        """Draw chunks ``[first, last)`` of the entry's canonical stream."""
        sized_seeds = [
            (self._chunk_size, self._chunk_seed(entry.key_seed, index))
            for index in range(first, last)
        ]
        if isinstance(self._engine, ParallelEngine):
            chunks = self._engine.sample_seeded_chunks(entry.target, entry.stop_set, sized_seeds)
        else:
            chunks = [
                self._engine.sample_paths(entry.target, entry.stop_set, size, rng=random.Random(seed))
                for size, seed in sized_seeds
            ]
        paths = [path for chunk in chunks for path in chunk]
        self._drawn += len(paths)
        return paths

    def _extend(self, entry: _PoolEntry, count: int) -> None:
        """Materialize the entry's stream up to at least ``count`` paths."""
        if len(entry.paths) >= count:
            return
        last = -(-count // self._chunk_size)  # ceil
        entry.paths.extend(self._draw_chunks(entry, entry.chunks_drawn, last))
        entry.chunks_drawn = last

    def _entry_for(self, target: NodeId, stop_set: Iterable[NodeId], stream: str) -> _PoolEntry:
        self._sync_snapshot()
        stop = stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set)
        digest = pool_key_digest(target, stop, stream)
        entry = self._entries.get(digest)
        if entry is None:
            entry = self._load_spilled(digest)
            if entry is None:
                entry = _PoolEntry(
                    target=target, stop_set=stop, stream=stream, key_seed=self._key_seed(digest)
                )
            self._entries[digest] = entry
        self._entries.move_to_end(digest)  # LRU: most recent last
        return entry

    def _transient_entry(
        self, target: NodeId, stop_set: Iterable[NodeId], stream: str
    ) -> _PoolEntry:
        """An uncached entry over the same canonical stream (``reuse=False``)."""
        self._sync_snapshot()
        return _PoolEntry(
            target=target,
            stop_set=stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set),
            stream=stream,
            key_seed=self._key_seed(pool_key_digest(target, stop_set, stream)),
        )

    def _read_segment(
        self, target: NodeId, stop_set: Iterable[NodeId], start: int, upto: int, stream: str
    ) -> list[TargetPath]:
        """Serve samples ``[start, upto)`` of a cached key's canonical stream."""
        entry = self._entry_for(target, stop_set, stream)
        self._extend(entry, upto)
        self._served += upto - start
        result = entry.paths[start:upto]
        self._evict_over_limits()
        return result

    def paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, stream: str = ""
    ) -> list[TargetPath]:
        """The first ``count`` samples of this key's canonical stream.

        Cached samples are served as-is; missing ones are drawn (in whole
        chunks) and appended first.  The returned list is a copy -- callers
        may consume it freely without perturbing the cache.  With
        ``reuse=False`` each call re-draws its prefix from the canonical
        chunk seeds (sequential consumers should hold a :meth:`reader`,
        which buffers its own key even when caching is off).
        """
        require_non_negative_int(count, "count")
        if not self._reuse:
            self._served += count
            entry = self._transient_entry(target, stop_set, stream)
            self._extend(entry, count)
            return entry.paths[:count]
        return self._read_segment(target, stop_set, 0, count, stream)

    def type1_indicators(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, stream: str = ""
    ) -> bytes:
        """Type indicators ``y(ĝ)`` of the stream's first ``count`` samples."""
        return bytes(
            1 if path.is_type1 else 0 for path in self.paths(target, stop_set, count, stream)
        )

    def covered_indicators(
        self,
        target: NodeId,
        stop_set: Iterable[NodeId],
        count: int,
        invitation: frozenset,
        stream: str = "",
    ) -> bytes:
        """Lemma-2 covered-trace indicators of the stream's first ``count`` samples."""
        return bytes(
            1 if path.covered_by(invitation) else 0
            for path in self.paths(target, stop_set, count, stream)
        )

    def reader(self, target: NodeId, stop_set: Iterable[NodeId], stream: str = "") -> "PoolReader":
        """A sequential cursor over this key's canonical stream."""
        return PoolReader(self, target, stop_set, stream)

    # ------------------------------------------------------------------ #
    # Eviction and spill
    # ------------------------------------------------------------------ #

    def _evict_over_limits(self) -> None:
        def total() -> int:
            return sum(len(entry.paths) for entry in self._entries.values())

        # Never evict the most recently served key (last in LRU order):
        # dropping a key mid-query would re-draw what was just extended.
        while len(self._entries) > 1 and (
            len(self._entries) > self._max_targets
            or (self._budget is not None and total() > self._budget)
        ):
            digest, entry = self._entries.popitem(last=False)
            self._evictions += 1
            self._spill(digest, entry)

    def _spill_path(self, digest: str) -> "Path | None":
        if self._spill_dir is None:
            return None
        return self._spill_dir / f"pool-{digest}.json"

    @staticmethod
    def _spillable_id(node: object) -> bool:
        # JSON round-trips these id types losslessly; anything fancier
        # (tuples, dataclasses) is kept in memory only.
        return isinstance(node, (int, str)) and not isinstance(node, bool)

    def _spill(self, digest: str, entry: _PoolEntry) -> bool:
        path = self._spill_path(digest)
        if path is None:
            return False
        ids = {entry.target, *entry.stop_set}
        ids.update(node for path_ in entry.paths for node in path_.nodes)
        if not all(self._spillable_id(node) for node in ids):
            return False
        payload = {
            "digest": digest,
            "target": entry.target,
            "stop": ordered(entry.stop_set),
            "stream": entry.stream,
            "pool_seed": self._seed,
            "chunk_size": self._chunk_size,
            "csr": self._csr_digest,
            "chunks_drawn": entry.chunks_drawn,
            "paths": [
                {
                    "nodes": ordered(path_.nodes),
                    "is_type1": path_.is_type1,
                    "anchor": path_.anchor,
                }
                for path_ in entry.paths
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        # Canonical encoding (sorted keys, fixed indent) and write-then-rename,
        # exactly like the experiment record store.
        scratch = path.with_name(path.name + ".tmp")
        scratch.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(scratch, path)
        self._spills += 1
        return True

    def _load_spilled(self, digest: str) -> "_PoolEntry | None":
        """Re-materialize a key from its spill file, if one is valid.

        A spill recorded under a different pool seed or chunk size belongs
        to a different canonical stream, and one recorded under a different
        CSR digest was sampled from a topology that no longer exists; both
        are ignored (the key is simply re-drawn) -- the append-only prefix
        contract makes the two outcomes indistinguishable apart from cost.
        """
        path = self._spill_path(digest)
        if path is None or not path.is_file():
            return None
        payload = json.loads(path.read_text(encoding="utf-8"))
        if (
            payload.get("digest") != digest
            or payload.get("pool_seed") != self._seed
            or payload.get("chunk_size") != self._chunk_size
            or payload.get("csr") != self._csr_digest
        ):
            return None
        self._loads += 1
        return _PoolEntry(
            target=payload["target"],
            stop_set=frozenset(payload["stop"]),
            stream=payload["stream"],
            key_seed=self._key_seed(digest),
            paths=[
                TargetPath(
                    nodes=frozenset(item["nodes"]),
                    is_type1=item["is_type1"],
                    anchor=item["anchor"],
                )
                for item in payload["paths"]
            ],
            chunks_drawn=payload["chunks_drawn"],
        )

    def spill_all(self) -> int:
        """Spill every cached key to ``spill_dir`` (no-op without one).

        Returns the number of keys actually written (keys with ids JSON
        cannot round-trip are skipped).  Entries stay cached; this is a
        checkpoint, not an eviction.
        """
        if self._spill_dir is None:
            return 0
        return sum(1 for digest, entry in self._entries.items() if self._spill(digest, entry))


class PoolReader:
    """A sequential cursor over one key's canonical stream.

    ``take(n)`` returns the next ``n`` samples and advances; the segment
    boundaries a reader happens to use never change the underlying stream,
    so any interleaving of readers and direct :meth:`SamplePool.paths`
    calls over the same key observes the same samples at the same indices.

    With a ``reuse=False`` pool the reader buffers its own copy of the key
    (discarded with the reader), so a sequential consumer still draws each
    chunk once -- the "pool disabled" mode re-pays sampling per *query*,
    not per ``take``.
    """

    def __init__(
        self, pool: SamplePool, target: NodeId, stop_set: Iterable[NodeId], stream: str = ""
    ) -> None:
        self._pool = pool
        self._target = target
        self._stop_set = stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set)
        self._stream = stream
        self._offset = 0
        self._local: _PoolEntry | None = None

    @property
    def offset(self) -> int:
        """How many samples this reader has consumed."""
        return self._offset

    def cached_remaining(self) -> int:
        """How many already-materialized *pool* samples lie ahead of the cursor
        (always 0 for a ``reuse=False`` pool: nothing outlives a query)."""
        cached = self._pool.cached_count(self._target, self._stop_set, self._stream)
        return max(0, cached - self._offset)

    def take(self, count: int) -> list[TargetPath]:
        """The next ``count`` samples of the stream (drawing if needed)."""
        require_non_negative_int(count, "count")
        upto = self._offset + count
        if self._pool.reuse:
            segment = self._pool._read_segment(
                self._target, self._stop_set, self._offset, upto, self._stream
            )
        else:
            if self._local is None:
                self._local = self._pool._transient_entry(
                    self._target, self._stop_set, self._stream
                )
            self._pool._extend(self._local, upto)
            self._pool._served += count
            segment = self._local.paths[self._offset:upto]
        self._offset = upto
        return segment
