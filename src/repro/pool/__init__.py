"""Shared reverse-sample pools (see :mod:`repro.pool.sample_pool`)."""

from repro.pool.sample_pool import (
    DEFAULT_POOL_CHUNK,
    STREAM_EVAL,
    STREAM_PMAX,
    STREAM_REALIZATIONS,
    PoolReader,
    PoolStats,
    SamplePool,
    pool_key_digest,
)

__all__ = [
    "DEFAULT_POOL_CHUNK",
    "STREAM_EVAL",
    "STREAM_PMAX",
    "STREAM_REALIZATIONS",
    "PoolReader",
    "PoolStats",
    "SamplePool",
    "pool_key_digest",
]
