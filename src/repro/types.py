"""Shared type aliases and small value objects used across the library.

The library identifies users by hashable node identifiers.  Integer node
ids are the common case (SNAP edge lists use integers), but any hashable
value works, which keeps the API convenient for doctest-sized examples
that use string names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

__all__ = [
    "NodeId",
    "EdgeTuple",
    "WeightMap",
    "InvitationSet",
    "PairSpec",
    "Interval",
]

#: A user identifier.  Any hashable value is accepted; integers are typical.
NodeId = Hashable

#: An undirected friendship edge, stored as an ordered 2-tuple.
EdgeTuple = tuple[NodeId, NodeId]

#: Mapping from an ordered pair ``(u, v)`` to the familiarity weight
#: ``w(u, v)`` (v's familiarity with u).
WeightMap = Mapping[EdgeTuple, float]

#: An invitation set: the users that the initiator will send invitations to.
InvitationSet = frozenset


@dataclass(frozen=True, slots=True)
class PairSpec:
    """An (initiator, target) pair together with bookkeeping metadata.

    Attributes
    ----------
    source:
        The initiator ``s`` who wants to friend the target.
    target:
        The target user ``t``.
    pmax:
        The (estimated) maximum achievable acceptance probability for the
        pair, i.e. ``f(V)``.  ``None`` when not yet estimated.
    """

    source: NodeId
    target: NodeId
    pmax: float | None = None

    def with_pmax(self, pmax: float) -> "PairSpec":
        """Return a copy of this spec with ``pmax`` filled in."""
        return PairSpec(self.source, self.target, pmax)


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open numeric interval ``[low, high)`` used for binning results."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high})")

    def contains(self, value: float) -> bool:
        """Return whether ``value`` lies in ``[low, high)``."""
        return self.low <= value < self.high

    @property
    def midpoint(self) -> float:
        """The midpoint of the interval, used as the x coordinate of a bin."""
        return (self.low + self.high) / 2.0

    @staticmethod
    def partition(low: float, high: float, count: int) -> list["Interval"]:
        """Split ``[low, high)`` into ``count`` equal-width intervals."""
        if count <= 0:
            raise ValueError("count must be positive")
        width = (high - low) / count
        return [Interval(low + i * width, low + (i + 1) * width) for i in range(count)]


def as_frozen(nodes: Iterable[NodeId]) -> frozenset:
    """Return ``nodes`` as a frozenset (identity if already one)."""
    if isinstance(nodes, frozenset):
        return nodes
    return frozenset(nodes)


def ordered(nodes: Iterable[NodeId]) -> list:
    """Return ``nodes`` sorted by their repr, for deterministic output.

    Node ids are only required to be hashable, so a plain ``sorted`` call
    can fail on mixed types; sorting by ``repr`` keeps output deterministic
    without constraining the id type.
    """
    try:
        return sorted(nodes)
    except TypeError:
        return sorted(nodes, key=repr)
