"""Argument-validation helpers.

These helpers keep precondition checks at public API boundaries terse and
produce consistent, informative error messages.  They raise ``ValueError``
(or ``TypeError`` for wrong types) rather than library-specific exceptions
because they guard plain argument misuse.
"""

from __future__ import annotations

from numbers import Integral, Real

__all__ = [
    "require",
    "require_positive",
    "require_positive_int",
    "require_non_negative",
    "require_non_negative_int",
    "require_probability",
    "require_in_closed_unit_interval",
    "require_in_open_closed_unit_interval",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def _require_real(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    return float(value)


def require_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a strictly positive real number."""
    number = _require_real(value, name)
    if not number > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return number


def require_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is a non-negative real number."""
    number = _require_real(value, name)
    if number < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return number


def require_positive_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a strictly positive integer."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return int(value)


def require_non_negative_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a non-negative integer (e.g. a sample count)."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return int(value)


def require_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in the closed interval ``[0, 1]``."""
    return require_in_closed_unit_interval(value, name)


def require_in_closed_unit_interval(value: float, name: str = "value") -> float:
    """Validate ``0 <= value <= 1``."""
    number = _require_real(value, name)
    if not 0.0 <= number <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return number


def require_in_open_closed_unit_interval(value: float, name: str = "value") -> float:
    """Validate ``0 < value <= 1`` (e.g. the target ratio ``alpha``)."""
    number = _require_real(value, name)
    if not 0.0 < number <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return number
