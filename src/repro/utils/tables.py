"""Tabular reporting with an optional :mod:`rich` renderer.

:func:`render_table` returns a ready-to-print string.  When the ``rich``
library is importable it renders a boxed, styled table; otherwise (rich is
an *optional* dependency, never required) it falls back to a plain
aligned-ASCII layout carrying exactly the same content.  Callers never
need to know which renderer ran.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table"]


def _rich_table(title: str | None, columns: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    from io import StringIO

    from rich.console import Console
    from rich.table import Table

    table = Table(title=title)
    for column in columns:
        table.add_column(column)
    for row in rows:
        table.add_row(*row)
    buffer = StringIO()
    Console(file=buffer, width=120, force_terminal=False).print(table)
    return buffer.getvalue().rstrip("\n")


def _ascii_table(title: str | None, columns: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(column), *(len(row[index]) for row in rows)) if rows else len(column)
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(column.ljust(width) for column, width in zip(columns, widths)).rstrip())
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``columns`` headers as a printable string.

    Cells are stringified with :func:`str`; every row must have exactly one
    cell per column.  Uses rich when importable, aligned ASCII otherwise.
    """
    for row in rows:
        if len(row) != len(columns):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(columns)}"
            )
    text_rows = [[str(cell) for cell in row] for row in rows]
    try:
        return _rich_table(title, list(columns), text_rows)
    except ImportError:
        return _ascii_table(title, list(columns), text_rows)
