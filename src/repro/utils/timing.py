"""Small timing helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_duration"]


@dataclass
class Stopwatch:
    """A restartable stopwatch built on :func:`time.perf_counter`.

    Usage::

        with Stopwatch() as sw:
            run_algorithm()
        print(sw.elapsed)

    The stopwatch can also be used without the context manager by calling
    :meth:`start` and :meth:`stop` explicitly, and accumulates elapsed time
    across multiple start/stop cycles.
    """

    _started_at: float | None = field(default=None, repr=False)
    _accumulated: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch.  Starting twice is an error."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self._accumulated += time.perf_counter() - self._started_at
        self._started_at = None
        return self._accumulated

    def reset(self) -> None:
        """Reset accumulated time and stop the stopwatch if running."""
        self._started_at = None
        self._accumulated = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the current running segment."""
        current = 0.0
        if self._started_at is not None:
            current = time.perf_counter() - self._started_at
        return self._accumulated + current

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form.

    >>> format_duration(0.0042)
    '4.2ms'
    >>> format_duration(75.3)
    '1m15.3s'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rem:.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes}m{rem:.0f}s"
