"""Random-number-generator plumbing.

Every randomized routine in the library accepts a ``rng`` argument that can
be ``None`` (use a fresh nondeterministic generator), an integer seed, or an
existing :class:`random.Random` instance.  Centralizing the coercion in
:func:`ensure_rng` keeps the call sites short and makes reproducibility a
one-liner for callers: pass the same seed, get the same run.

The library deliberately uses :mod:`random` (Mersenne Twister) rather than
numpy's generators for the simulation inner loops: the loops are dominated
by dict/set operations on Python objects, per-call overhead of
``random.random()`` is lower than crossing into numpy for scalars, and the
pure-Python dependency surface stays minimal.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["RandomSource", "ensure_rng", "derive_seed", "derive_rng", "spawn_rngs"]

#: Anything accepted where a random source is expected.
RandomSource = Union[None, int, random.Random]

#: Upper bound (exclusive) for derived integer seeds.
_SEED_SPACE = 2**63


def ensure_rng(rng: RandomSource = None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random` instance.

    Parameters
    ----------
    rng:
        ``None`` for a fresh OS-seeded generator, an ``int`` seed for a
        deterministic generator, or an existing generator which is returned
        unchanged (not copied -- callers share state intentionally).
    """
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, bool):  # bool is an int subclass; almost surely a bug
        raise TypeError("rng must be None, an int seed, or a random.Random instance")
    if isinstance(rng, int):
        return random.Random(rng)
    raise TypeError(
        f"rng must be None, an int seed, or a random.Random instance, got {type(rng)!r}"
    )


def derive_seed(rng: RandomSource, label: str) -> int:
    """Derive an integer seed from ``rng`` and a label.

    The label is mixed in with a stable SHA-256 digest (never ``hash()``,
    whose per-process salting of strings would break cross-process
    reproducibility), and one ``randrange`` draw is consumed from the base
    generator, so successive derivations from the same source yield
    independent seeds in a deterministic order.  The integer form exists so
    a seed can be shipped to another process (e.g. a sampling worker) and
    rebuilt there as ``random.Random(seed)`` bit-identically.
    """
    base = ensure_rng(rng)
    label_mix = int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    ) & (_SEED_SPACE - 1)
    return base.randrange(_SEED_SPACE) ^ label_mix


def derive_rng(rng: RandomSource, label: str) -> random.Random:
    """Create an independent generator derived from ``rng`` and a label.

    This is used to hand out statistically independent streams to
    sub-components (e.g. the pmax estimator and the realization sampler)
    while keeping the whole run reproducible from a single seed.  The same
    ``(seed, label)`` pair always yields the same stream -- also across
    processes (see :func:`derive_seed`).
    """
    return random.Random(derive_seed(rng, label))


def spawn_rngs(rng: RandomSource, count: int) -> list[random.Random]:
    """Spawn ``count`` independent generators from a single source."""
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    return [random.Random(base.randrange(_SEED_SPACE)) for _ in range(count)]
