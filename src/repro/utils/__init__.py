"""Shared utilities: RNG management, timing, validation and logging."""

from repro.utils.rng import RandomSource, derive_rng, ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, format_duration
from repro.utils.validation import (
    require,
    require_in_closed_unit_interval,
    require_in_open_closed_unit_interval,
    require_non_negative,
    require_positive,
    require_positive_int,
    require_probability,
)

__all__ = [
    "RandomSource",
    "ensure_rng",
    "derive_rng",
    "spawn_rngs",
    "Stopwatch",
    "format_duration",
    "require",
    "require_positive",
    "require_positive_int",
    "require_non_negative",
    "require_probability",
    "require_in_closed_unit_interval",
    "require_in_open_closed_unit_interval",
]
