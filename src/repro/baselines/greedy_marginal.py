"""A simulation-based greedy marginal-gain baseline (extension).

Starting from an invitation set containing only the target, repeatedly add
the candidate whose addition increases the (Monte Carlo estimated)
acceptance probability the most.  This is the classic greedy of the
influence-maximization literature adapted to the friending objective; the
objective is supermodular under the LT friending model (Yuan et al.), so
the greedy carries no guarantee here -- it serves as an expensive but
intuitive reference point on small graphs in the examples and ablations.
"""

from __future__ import annotations

from repro.core.problem import ActiveFriendingProblem
from repro.core.result import InvitationResult
from repro.core.vmax import compute_vmax
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.types import NodeId, ordered
from repro.utils.rng import RandomSource, derive_rng, ensure_rng
from repro.utils.validation import require_positive_int

__all__ = ["greedy_marginal_invitation"]


def greedy_marginal_invitation(
    problem: ActiveFriendingProblem,
    size: int,
    num_samples: int = 200,
    candidate_pool: int = 50,
    rng: RandomSource = None,
    engine=None,
) -> InvitationResult:
    """Greedy invitation set built by estimated marginal acceptance gain.

    Parameters
    ----------
    problem:
        The active-friending instance.
    size:
        Invitation budget (the target always occupies one slot).
    num_samples:
        Monte Carlo simulations per candidate evaluation; the cost per
        greedy round is ``O(candidate_pool · num_samples · m)``, so keep
        both modest.
    candidate_pool:
        The candidates considered are restricted to ``Vmax`` (only nodes on
        initiator-target paths can ever matter, Lemma 7); if that set is
        larger than ``candidate_pool`` only the highest-degree members are
        kept.
    engine:
        Optional reverse-sampling engine (instance or name): candidate
        evaluations then use the covered-trace estimator of Lemma 2 instead
        of forward Process-1 simulation, which is much cheaper per round.
    """
    require_positive_int(size, "size")
    require_positive_int(num_samples, "num_samples")
    require_positive_int(candidate_pool, "candidate_pool")
    generator = ensure_rng(rng)
    graph = problem.graph

    pool = set(compute_vmax(graph, problem.source, problem.target))
    pool.discard(problem.target)
    if len(pool) > candidate_pool:
        pool = set(
            sorted(ordered(pool), key=lambda node: -graph.degree(node))[:candidate_pool]
        )

    invitation: set[NodeId] = {problem.target}
    history: list[tuple] = []
    while len(invitation) < size and pool:
        evaluation_rng = derive_rng(generator, f"greedy-round-{len(invitation)}")
        best_node = None
        best_probability = -1.0
        for node in ordered(pool):
            estimate = estimate_acceptance_probability(
                graph,
                problem.source,
                problem.target,
                invitation | {node},
                num_samples=num_samples,
                rng=derive_rng(evaluation_rng, repr(node)),
                engine=engine,
            )
            if estimate.probability > best_probability:
                best_probability = estimate.probability
                best_node = node
        if best_node is None:
            break
        invitation.add(best_node)
        pool.discard(best_node)
        history.append((best_node, best_probability))

    return InvitationResult(
        invitation=frozenset(invitation),
        algorithm="GreedyMC",
        metadata={
            "requested_size": size,
            "num_samples": num_samples,
            "selection_history": tuple(history),
        },
    )
