"""A PageRank-flavoured baseline (extension).

Ranks candidate users by their stationary visiting probability under a
random walk that follows familiarity weights (with uniform teleportation).
Like HD it is a pure centrality heuristic -- it ignores where the initiator
and the target sit -- but it weighs *familiarity*, not just degree, which
makes it an interesting extra point of comparison in the ablations.
Implemented from scratch with simple power iteration.
"""

from __future__ import annotations

from repro.core.problem import ActiveFriendingProblem
from repro.core.result import InvitationResult
from repro.graph.social_graph import SocialGraph
from repro.types import NodeId, ordered
from repro.utils.validation import require, require_positive_int

__all__ = ["pagerank_scores", "rank_by_pagerank", "pagerank_invitation"]


def pagerank_scores(
    graph: SocialGraph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> dict:
    """Familiarity-weighted PageRank scores for every user.

    The walk at user ``u`` moves to friend ``v`` with probability
    proportional to ``w(u, v)`` (v's familiarity with u -- influence flows
    along the direction in which familiarity acts); dangling probability
    mass is redistributed uniformly.
    """
    require(0.0 < damping < 1.0, "damping must lie in (0, 1)")
    require_positive_int(max_iterations, "max_iterations")
    nodes = graph.node_list()
    n = len(nodes)
    if n == 0:
        return {}
    # Outgoing transition weights from u: towards each friend v with weight w(u, v).
    out_weights: dict[NodeId, list[tuple[NodeId, float]]] = {}
    out_total: dict[NodeId, float] = {}
    for u in nodes:
        entries = [(v, graph.weight(u, v)) for v in graph.neighbors(u)]
        entries = [(v, w) for v, w in entries if w > 0.0]
        out_weights[u] = entries
        out_total[u] = sum(w for _, w in entries)

    scores = {node: 1.0 / n for node in nodes}
    base = (1.0 - damping) / n
    for _ in range(max_iterations):
        next_scores = {node: base for node in nodes}
        dangling_mass = 0.0
        for u in nodes:
            mass = damping * scores[u]
            total = out_total[u]
            if total <= 0.0:
                dangling_mass += mass
                continue
            for v, weight in out_weights[u]:
                next_scores[v] += mass * weight / total
        if dangling_mass > 0.0:
            share = dangling_mass / n
            for node in nodes:
                next_scores[node] += share
        delta = sum(abs(next_scores[node] - scores[node]) for node in nodes)
        scores = next_scores
        if delta < tolerance:
            break
    return scores


def rank_by_pagerank(problem: ActiveFriendingProblem, include_target: bool = True) -> list:
    """Candidate users ordered by decreasing PageRank score."""
    scores = pagerank_scores(problem.graph)
    candidates = problem.candidate_nodes()
    ranking = sorted(ordered(candidates), key=lambda node: -scores.get(node, 0.0))
    if include_target:
        ranking = [problem.target] + [node for node in ranking if node != problem.target]
    return ranking


def pagerank_invitation(
    problem: ActiveFriendingProblem,
    size: int,
    include_target: bool = True,
) -> InvitationResult:
    """Build a PageRank invitation set of (at most) ``size`` users."""
    require_positive_int(size, "size")
    ranking = rank_by_pagerank(problem, include_target=include_target)
    return InvitationResult(
        invitation=frozenset(ranking[:size]),
        algorithm="PageRank",
        metadata={"requested_size": size, "include_target": include_target},
    )
