"""Baseline invitation-set algorithms.

The paper compares RAF against two heuristics (Sec. IV):

* High-Degree (HD) -- invite the highest-degree users first;
* Shortest-Path (SP) -- invite the users on successive vertex-disjoint
  shortest paths from the initiator to the target.

Both are implemented here with the same interface as RAF (a problem in, an
:class:`~repro.core.result.InvitationResult` out) plus a ``rank_candidates``
function exposing the full priority order so the comparison experiments can
grow the invitation set incrementally (Figs. 4 and 5).  Random, PageRank
and greedy marginal-gain baselines are provided as extensions used by the
examples and ablations.
"""

from repro.baselines.high_degree import high_degree_invitation, rank_by_degree
from repro.baselines.shortest_path import rank_by_shortest_paths, shortest_path_invitation
from repro.baselines.random_invite import random_invitation
from repro.baselines.pagerank import pagerank_invitation, pagerank_scores, rank_by_pagerank
from repro.baselines.greedy_marginal import greedy_marginal_invitation

__all__ = [
    "high_degree_invitation",
    "rank_by_degree",
    "shortest_path_invitation",
    "rank_by_shortest_paths",
    "random_invitation",
    "pagerank_invitation",
    "pagerank_scores",
    "rank_by_pagerank",
    "greedy_marginal_invitation",
]
