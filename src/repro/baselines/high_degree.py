"""The High-Degree (HD) baseline of Sec. IV-A.

HD fills the invitation set with the highest-degree users of the network.
The intuition is that well-connected users are the most likely to become
mutual friends with many others; the paper's experiments show this ignores
the *connectivity between the initiator and the target* and therefore
performs poorly on larger graphs.
"""

from __future__ import annotations

from repro.core.problem import ActiveFriendingProblem
from repro.core.result import InvitationResult
from repro.types import ordered
from repro.utils.validation import require_positive_int

__all__ = ["rank_by_degree", "high_degree_invitation"]


def rank_by_degree(problem: ActiveFriendingProblem, include_target: bool = True) -> list:
    """Candidate users ordered by decreasing degree.

    When ``include_target`` is set (the default, matching how the
    comparison experiments keep the baselines competitive) the target is
    promoted to the front of the ranking regardless of its degree, since an
    invitation set without the target can never succeed.
    Ties are broken deterministically by node id representation.
    """
    graph = problem.graph
    candidates = problem.candidate_nodes()
    ranking = sorted(
        ordered(candidates),
        key=lambda node: -graph.degree(node),
    )
    if include_target:
        ranking = [problem.target] + [node for node in ranking if node != problem.target]
    return ranking


def high_degree_invitation(
    problem: ActiveFriendingProblem,
    size: int,
    include_target: bool = True,
) -> InvitationResult:
    """Build an HD invitation set of (at most) ``size`` users."""
    require_positive_int(size, "size")
    ranking = rank_by_degree(problem, include_target=include_target)
    chosen = frozenset(ranking[:size])
    return InvitationResult(
        invitation=chosen,
        algorithm="HD",
        metadata={"requested_size": size, "include_target": include_target},
    )
