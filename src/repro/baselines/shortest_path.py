"""The Shortest-Path (SP) baseline of Sec. IV-A.

SP prefers the users lying on shortest paths from the initiator to the
target: it first invites every user on a shortest s-t path, and when more
invitations are allowed it moves on to the next shortest path that is
vertex-disjoint from the ones already used.  SP at least preserves the
connectivity between the initiator and the target, which is why the paper
finds it clearly stronger than HD (though still well behind RAF on large
graphs where path overlap matters).
"""

from __future__ import annotations

from repro.core.problem import ActiveFriendingProblem
from repro.core.result import InvitationResult
from repro.graph.traversal import vertex_disjoint_shortest_paths
from repro.types import ordered
from repro.utils.validation import require_positive_int

__all__ = ["rank_by_shortest_paths", "shortest_path_invitation"]


def rank_by_shortest_paths(problem: ActiveFriendingProblem, include_target: bool = True) -> list:
    """Candidate users in SP priority order.

    Users appear path by path (first shortest path first), ordered within a
    path from the initiator's side towards the target.  Users that cannot
    receive a useful invitation (the initiator and its current friends) are
    skipped.  The target is promoted to the front when ``include_target``
    is set so that even tiny invitation budgets include it.  Candidates on
    no disjoint shortest path are appended afterwards by increasing degree
    of separation is *not* attempted -- SP simply stops ranking once the
    disjoint paths are exhausted, matching the paper's description.
    """
    graph = problem.graph
    candidates = problem.candidate_nodes()
    paths = vertex_disjoint_shortest_paths(graph, problem.source, problem.target)
    ranking: list = []
    seen: set = set()
    for path in paths:
        for node in path:
            if node in candidates and node not in seen:
                ranking.append(node)
                seen.add(node)
    if include_target:
        ranking = [problem.target] + [node for node in ranking if node != problem.target]
    elif problem.target not in seen and problem.target in candidates:
        # Without promotion the target still belongs at the end of each
        # path; if no path exists at all it is simply not ranked.
        pass
    return ranking


def shortest_path_invitation(
    problem: ActiveFriendingProblem,
    size: int,
    include_target: bool = True,
) -> InvitationResult:
    """Build an SP invitation set of (at most) ``size`` users.

    If the disjoint shortest paths contain fewer than ``size`` useful
    candidates the returned set is smaller than requested; the metadata
    records how many ranked candidates were available.
    """
    require_positive_int(size, "size")
    ranking = rank_by_shortest_paths(problem, include_target=include_target)
    chosen = frozenset(ranking[:size])
    return InvitationResult(
        invitation=chosen,
        algorithm="SP",
        metadata={
            "requested_size": size,
            "include_target": include_target,
            "ranked_candidates": len(ranking),
        },
    )
