"""A uniformly random invitation baseline (sanity-check baseline).

Not part of the paper's evaluation, but useful as a floor in the examples
and tests: any algorithm worth running should comfortably beat inviting
random users.
"""

from __future__ import annotations

from repro.core.problem import ActiveFriendingProblem
from repro.core.result import InvitationResult
from repro.types import ordered
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive_int

__all__ = ["random_invitation"]


def random_invitation(
    problem: ActiveFriendingProblem,
    size: int,
    include_target: bool = True,
    rng: RandomSource = None,
) -> InvitationResult:
    """Invite ``size`` users chosen uniformly at random from the candidates."""
    require_positive_int(size, "size")
    generator = ensure_rng(rng)
    candidates = ordered(problem.candidate_nodes())
    chosen: set = set()
    if include_target:
        chosen.add(problem.target)
        candidates = [node for node in candidates if node != problem.target]
    remaining = max(0, size - len(chosen))
    if remaining >= len(candidates):
        chosen.update(candidates)
    else:
        chosen.update(generator.sample(candidates, remaining))
    return InvitationResult(
        invitation=frozenset(chosen),
        algorithm="Random",
        metadata={"requested_size": size, "include_target": include_target},
    )
