"""repro -- a reproduction of "An Approximation Algorithm for Active Friending
in Online Social Networks" (Tong, Wang, Li, Wu, Du; ICDCS 2019).

The library implements the full pipeline of the paper:

* a familiarity-weighted friendship-graph substrate (:mod:`repro.graph`),
* the linear-threshold friending process, its realization-based
  derandomization and reverse sampling (:mod:`repro.diffusion`),
* Monte Carlo estimation with the Dagum et al. stopping rule
  (:mod:`repro.estimation`),
* Minimum p-Union / Minimum Subset Cover solvers (:mod:`repro.setcover`),
* deterministic multi-process sampling fan-out (:mod:`repro.parallel`),
* shared reverse-sample pools with warm-start reuse (:mod:`repro.pool`),
* a concurrent query service with request coalescing over one shared pool
  (:mod:`repro.service`),
* the RAF algorithm and the ``Vmax`` special case (:mod:`repro.core`),
* the HD / SP / random / PageRank / greedy baselines
  (:mod:`repro.baselines`), and
* the experiment harness reproducing every table and figure of Sec. IV
  (:mod:`repro.experiments`).

Quickstart
----------

>>> from repro import (
...     load_dataset, ActiveFriendingProblem, RAFConfig, run_raf,
...     estimate_acceptance_probability,
... )
>>> graph = load_dataset("wiki", scale=0.05, rng=7)
>>> problem = ActiveFriendingProblem(graph, source=3, target=200, alpha=0.2)
>>> result = run_raf(problem, RAFConfig(max_realizations=5000), rng=7)
>>> 0 < result.size <= graph.num_nodes
True
"""

from repro.exceptions import (
    AlgorithmError,
    EstimationError,
    GraphError,
    ProblemDefinitionError,
    ReproError,
    SetCoverError,
)
from repro.graph import (
    CompiledGraph,
    SocialGraph,
    compile_graph,
    apply_degree_normalized_weights,
    apply_random_weights,
    apply_uniform_weights,
    barabasi_albert_graph,
    compute_stats,
    erdos_renyi_graph,
    load_dataset,
    read_snap_graph,
)
from repro.diffusion import (
    NumpyAliasEngine,
    NumpyEngine,
    PythonEngine,
    SamplingEngine,
    available_engines,
    create_engine,
    estimate_acceptance_probability,
    sample_realization,
    sample_target_path,
    simulate_friending,
)
from repro.parallel import ParallelEngine, maybe_parallel
from repro.pool import PoolReader, PoolStats, SamplePool
from repro.service import (
    EvaluateQuery,
    MaximizeQuery,
    PmaxQuery,
    QueryService,
    ServiceMetrics,
)
from repro.core import (
    ActiveFriendingProblem,
    GuaranteeReport,
    InvitationResult,
    MaxFriendingResult,
    evaluate_guarantees,
    ParameterCoupling,
    RAFConfig,
    RAFParameters,
    RAFResult,
    SamplePolicy,
    compute_vmax,
    estimate_pmax,
    maximize_acceptance_probability,
    run_raf,
    solve_parameters,
)
from repro.baselines import (
    greedy_marginal_invitation,
    high_degree_invitation,
    pagerank_invitation,
    random_invitation,
    shortest_path_invitation,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "ProblemDefinitionError",
    "EstimationError",
    "SetCoverError",
    "AlgorithmError",
    # graph substrate
    "SocialGraph",
    "CompiledGraph",
    "compile_graph",
    "apply_degree_normalized_weights",
    "apply_uniform_weights",
    "apply_random_weights",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "load_dataset",
    "read_snap_graph",
    "compute_stats",
    # friending process
    "simulate_friending",
    "estimate_acceptance_probability",
    "sample_realization",
    "sample_target_path",
    "SamplingEngine",
    "PythonEngine",
    "NumpyAliasEngine",
    "NumpyEngine",
    "create_engine",
    "available_engines",
    "ParallelEngine",
    "maybe_parallel",
    "SamplePool",
    "PoolReader",
    "PoolStats",
    # query service
    "QueryService",
    "ServiceMetrics",
    "PmaxQuery",
    "EvaluateQuery",
    "MaximizeQuery",
    # core algorithm
    "ActiveFriendingProblem",
    "RAFConfig",
    "RAFResult",
    "RAFParameters",
    "ParameterCoupling",
    "SamplePolicy",
    "run_raf",
    "estimate_pmax",
    "solve_parameters",
    "compute_vmax",
    "maximize_acceptance_probability",
    "MaxFriendingResult",
    "evaluate_guarantees",
    "GuaranteeReport",
    "InvitationResult",
    # baselines
    "high_degree_invitation",
    "shortest_path_invitation",
    "random_invitation",
    "pagerank_invitation",
    "greedy_marginal_invitation",
]
