"""The set-system (hypergraph) container used by the cover solvers.

A :class:`SetSystem` is an indexed family of subsets over an implicit
universe (the union of all member sets).  In the RAF pipeline the family is
the multiset of type-1 backward traces ``{t(g_1), ..., t(g_k)}``; since the
same trace is typically sampled many times, the system supports weighted
deduplication, which both shrinks the solver input and preserves the
"cover at least p realizations" semantics exactly.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

from repro.exceptions import SetCoverError
from repro.types import NodeId

__all__ = ["SetSystem"]


class SetSystem:
    """An indexed family of finite sets with optional multiplicities.

    Parameters
    ----------
    sets:
        The member subsets, in order.  Each is stored as a frozenset.
    weights:
        Optional positive integer multiplicities, one per set (default 1).
        A weight ``w`` means the set represents ``w`` identical sampled
        realizations.
    """

    __slots__ = ("_sets", "_weights", "_universe")

    def __init__(
        self,
        sets: Iterable[Iterable[NodeId]],
        weights: Sequence[int] | None = None,
    ) -> None:
        self._sets: list[frozenset] = [frozenset(member) for member in sets]
        if weights is None:
            self._weights: list[int] = [1] * len(self._sets)
        else:
            weight_list = [int(w) for w in weights]
            if len(weight_list) != len(self._sets):
                raise SetCoverError(
                    f"{len(weight_list)} weights given for {len(self._sets)} sets"
                )
            if any(w <= 0 for w in weight_list):
                raise SetCoverError("set weights must be positive integers")
            self._weights = weight_list
        universe: set[NodeId] = set()
        for member in self._sets:
            universe.update(member)
        self._universe: frozenset = frozenset(universe)

    # ------------------------------------------------------------------ #
    # Basic access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._sets)

    def __getitem__(self, index: int) -> frozenset:
        return self._sets[index]

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<SetSystem sets={len(self._sets)} total_weight={self.total_weight} "
            f"universe={len(self._universe)}>"
        )

    @property
    def num_sets(self) -> int:
        """The number of (distinct index positions of) member sets."""
        return len(self._sets)

    @property
    def total_weight(self) -> int:
        """The total multiplicity across all member sets."""
        return sum(self._weights)

    @property
    def universe(self) -> frozenset:
        """The union of all member sets."""
        return self._universe

    def weight(self, index: int) -> int:
        """Multiplicity of the set at ``index``."""
        return self._weights[index]

    def weights(self) -> tuple[int, ...]:
        """All multiplicities, in index order."""
        return tuple(self._weights)

    def sets(self) -> tuple[frozenset, ...]:
        """All member sets, in index order."""
        return tuple(self._sets)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def union_of(self, indices: Iterable[int]) -> frozenset:
        """Union of the sets at the given indices."""
        result: set[NodeId] = set()
        for index in indices:
            result.update(self._sets[index])
        return frozenset(result)

    def weight_of(self, indices: Iterable[int]) -> int:
        """Total multiplicity of the sets at the given indices."""
        return sum(self._weights[index] for index in indices)

    def covered_indices(self, nodes: Iterable[NodeId]) -> tuple[int, ...]:
        """Indices of member sets fully contained in ``nodes``."""
        chosen = nodes if isinstance(nodes, (set, frozenset)) else frozenset(nodes)
        return tuple(index for index, member in enumerate(self._sets) if member <= chosen)

    def covered_weight(self, nodes: Iterable[NodeId]) -> int:
        """Total multiplicity of member sets fully contained in ``nodes``.

        This is exactly ``F(B_l, I)`` of the paper when the system holds the
        type-1 traces with multiplicities.
        """
        chosen = nodes if isinstance(nodes, (set, frozenset)) else frozenset(nodes)
        return sum(
            weight for member, weight in zip(self._sets, self._weights) if member <= chosen
        )

    def element_frequencies(self) -> dict:
        """Map each universe element to the total weight of sets containing it."""
        frequencies: dict[NodeId, int] = {}
        for member, weight in zip(self._sets, self._weights):
            for element in member:
                frequencies[element] = frequencies.get(element, 0) + weight
        return frequencies

    def inverted_index(self) -> dict:
        """Map each universe element to the list of set indices containing it."""
        index: dict[NodeId, list[int]] = {}
        for position, member in enumerate(self._sets):
            for element in member:
                index.setdefault(element, []).append(position)
        return index

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #

    def deduplicate(self) -> "SetSystem":
        """Collapse identical member sets, accumulating their multiplicities.

        The returned system represents the same multiset of realizations;
        covering one copy of a distinct set covers all of them, so every
        cover-related quantity (``covered_weight`` in particular) is
        preserved.
        """
        counter: Counter[frozenset] = Counter()
        for member, weight in zip(self._sets, self._weights):
            counter[member] += weight
        members = list(counter.keys())
        return SetSystem(members, weights=[counter[m] for m in members])

    @classmethod
    def from_target_paths(cls, paths: Iterable) -> "SetSystem":
        """Build a system from :class:`~repro.diffusion.reverse_sampling.TargetPath` objects.

        Only type-1 paths are included (type-0 realizations can never be
        covered, Corollary 1), each with multiplicity 1; call
        :meth:`deduplicate` afterwards to collapse repeats.
        """
        return cls(path.nodes for path in paths if path.is_type1)
