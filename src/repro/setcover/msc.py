"""Minimum Subset Cover (MSC, Problem 3) via the MpU reduction (Remark 2).

MSC asks for the smallest *node set* that fully contains ("covers") at
least ``p`` member sets of the family.  Remark 2 observes that an optimal
or approximate solution can always be taken to be the union of exactly
``p`` member sets, so MSC reduces to Minimum p-Union and inherits the
``2√|U|`` approximation of the Chlamtáč subroutine.

This module provides that reduction plus a node-wise greedy alternative
used by the solver ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import InfeasibleCoverError, SetCoverError
from repro.setcover.hypergraph import SetSystem
from repro.setcover.mpu import MpUResult, chlamtac_mpu, exact_mpu, greedy_min_union, smallest_sets_union
from repro.utils.validation import require_positive_int

__all__ = ["CoverResult", "minimum_subset_cover", "greedy_node_cover", "MSC_SOLVERS"]


@dataclass(frozen=True, slots=True)
class CoverResult:
    """A solution to a Minimum Subset Cover instance.

    Attributes
    ----------
    cover:
        The chosen node set ``V*`` (the quantity being minimized).
    covered_weight:
        Total multiplicity of member sets fully contained in ``cover``
        (this is ``F(B_l, V*)`` when the system holds sampled traces).
    requested:
        The cover target ``p`` that was requested.
    solver:
        Name of the solver that produced the result.
    """

    cover: frozenset
    covered_weight: int
    requested: int
    solver: str

    @property
    def size(self) -> int:
        """Number of nodes in the cover (the MSC objective value)."""
        return len(self.cover)

    @property
    def feasible(self) -> bool:
        """Whether the cover meets the requested target."""
        return self.covered_weight >= self.requested


def _solve_via_mpu(
    system: SetSystem,
    p: int,
    mpu_solver: Callable[[SetSystem, int], MpUResult],
    solver_name: str,
) -> CoverResult:
    deduped = system.deduplicate()
    result = mpu_solver(deduped, p)
    cover = result.union
    return CoverResult(
        cover=cover,
        covered_weight=system.covered_weight(cover),
        requested=p,
        solver=solver_name,
    )


#: Named MSC solvers available to :func:`minimum_subset_cover`.
MSC_SOLVERS: dict[str, Callable[[SetSystem, int], CoverResult]] = {
    "chlamtac": lambda system, p: _solve_via_mpu(system, p, chlamtac_mpu, "chlamtac"),
    "greedy": lambda system, p: _solve_via_mpu(system, p, greedy_min_union, "greedy"),
    "smallest": lambda system, p: _solve_via_mpu(system, p, smallest_sets_union, "smallest"),
    "exact": lambda system, p: _solve_via_mpu(system, p, exact_mpu, "exact"),
}


def minimum_subset_cover(
    system: SetSystem,
    p: int,
    solver: str | Callable[[SetSystem, int], MpUResult] = "chlamtac",
) -> CoverResult:
    """Solve MSC: the smallest node set covering at least ``p`` member sets.

    Parameters
    ----------
    system:
        The set family (typically the type-1 traces, possibly duplicated).
    p:
        Required covered multiplicity.  Must be positive and at most the
        system's total weight.
    solver:
        Either the name of a registered solver (``"chlamtac"`` --
        the default and the one RAF uses -- ``"greedy"``, ``"smallest"`` or
        ``"exact"``) or a callable with the MpU solver signature.
    """
    require_positive_int(p, "p")
    if p > system.total_weight:
        raise InfeasibleCoverError(
            f"cannot cover {p} sets: the system only contains total weight {system.total_weight}"
        )
    if callable(solver):
        return _solve_via_mpu(system, p, solver, getattr(solver, "__name__", "custom"))
    try:
        chosen = MSC_SOLVERS[solver]
    except KeyError:
        raise SetCoverError(
            f"unknown MSC solver {solver!r}; available: {', '.join(sorted(MSC_SOLVERS))}"
        ) from None
    return chosen(system, p)


def greedy_node_cover(system: SetSystem, p: int) -> CoverResult:
    """Node-wise greedy MSC heuristic (ablation alternative to the MpU route).

    Repeatedly adds the node that (a) fully covers the largest additional
    multiplicity of member sets and, as a tie-break, (b) reduces the most
    residual mass of still-uncovered sets (weighted by how close each set is
    to being covered).  Stops once the covered multiplicity reaches ``p``.
    """
    require_positive_int(p, "p")
    if p > system.total_weight:
        raise InfeasibleCoverError(
            f"cannot cover {p} sets: the system only contains total weight {system.total_weight}"
        )
    deduped = system.deduplicate()
    inverted = deduped.inverted_index()
    remaining = [len(member) for member in deduped.sets()]
    covered = [False] * deduped.num_sets
    cover: set = set()
    covered_weight = 0

    while covered_weight < p:
        best_node = None
        best_score: tuple[float, float] = (-1.0, -1.0)
        for node, members in inverted.items():
            if node in cover:
                continue
            completes = 0.0
            progress = 0.0
            for index in members:
                if covered[index]:
                    continue
                if remaining[index] == 1:
                    completes += deduped.weight(index)
                progress += deduped.weight(index) / remaining[index]
            score = (completes, progress)
            if score > best_score:
                best_score = score
                best_node = node
        if best_node is None:
            raise InfeasibleCoverError(
                f"node greedy covered only {covered_weight} of the requested {p}"
            )
        cover.add(best_node)
        for index in inverted[best_node]:
            if covered[index]:
                continue
            remaining[index] -= 1
            if remaining[index] == 0:
                covered[index] = True
                covered_weight += deduped.weight(index)

    return CoverResult(
        cover=frozenset(cover),
        covered_weight=system.covered_weight(cover),
        requested=p,
        solver="greedy-node",
    )
