"""Minimum p-Union (MpU, Problem 2) solvers.

Given a family ``U`` of subsets and a target ``p``, MpU asks for ``p``
member sets whose union is as small as possible.  In the RAF pipeline the
member sets are the (deduplicated, weighted) type-1 backward traces and
``p`` is ``⌈β·|B¹|⌉`` *realizations*, so the solvers here work with weighted
sets: selecting a distinct set covers all of its sampled copies at once.

Solvers
-------
``greedy_min_union``
    Lazily updated greedy that repeatedly picks the set with the smallest
    number of not-yet-covered elements (optionally per unit of multiplicity).
``smallest_sets_union``
    Takes sets in increasing-cardinality order until ``p`` is reached.  When
    the optimum consists of ``p`` sets of union size OPT, every chosen set
    has size ≤ OPT, giving the classic ``p·OPT`` ingredient of the Chlamtáč
    analysis.
``chlamtac_mpu``
    Practical stand-in for the Chlamtáč et al. ``2√|U|``-approximation: runs
    both candidates above, optionally refines with a swap local search, and
    returns the smallest union found.  (The published algorithm is LP-based;
    see DESIGN.md for the substitution rationale.  The approximation-ratio
    *bound* itself is exposed via :func:`chlamtac_ratio_bound` for the
    theoretical reporting in the benchmarks.)
``exact_mpu``
    Exhaustive optimum for small instances, used by tests and ablations to
    measure how far the heuristics are from optimal.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.exceptions import InfeasibleCoverError, SetCoverError
from repro.setcover.hypergraph import SetSystem
from repro.utils.validation import require_positive_int

__all__ = [
    "MpUResult",
    "greedy_min_union",
    "smallest_sets_union",
    "local_search_improve",
    "chlamtac_mpu",
    "chlamtac_ratio_bound",
    "exact_mpu",
]


@dataclass(frozen=True, slots=True)
class MpUResult:
    """A (candidate) solution to a Minimum p-Union instance.

    Attributes
    ----------
    selected_indices:
        Indices of the chosen member sets, in selection order.
    union:
        The union of the chosen sets -- the quantity being minimized.
    covered_weight:
        Total multiplicity of the chosen sets (≥ the requested ``p``).
    solver:
        Name of the solver that produced the result.
    """

    selected_indices: tuple[int, ...]
    union: frozenset
    covered_weight: int
    solver: str = ""

    @property
    def union_size(self) -> int:
        """Size of the union (the MpU objective value)."""
        return len(self.union)


def _check_target(system: SetSystem, p: int) -> None:
    require_positive_int(p, "p")
    if p > system.total_weight:
        raise InfeasibleCoverError(
            f"cannot cover {p} sets: the system only contains total weight {system.total_weight}"
        )


def chlamtac_ratio_bound(num_sets: int) -> float:
    """The ``2√|U|`` approximation-ratio bound quoted from Chlamtáč et al."""
    require_positive_int(num_sets, "num_sets")
    return 2.0 * math.sqrt(num_sets)


# --------------------------------------------------------------------------- #
# Greedy (lazy, inverted-index based)
# --------------------------------------------------------------------------- #


def greedy_min_union(
    system: SetSystem,
    p: int,
    prefer_multiplicity: bool = True,
) -> MpUResult:
    """Greedy MpU: repeatedly take the set adding the fewest new elements.

    With ``prefer_multiplicity`` (default) the selection key is the number
    of new elements *per covered realization* (``residual / weight``), which
    exploits the heavy duplication of sampled traces; with it disabled the
    key is the raw residual, matching the textbook unweighted greedy.

    The implementation keeps, for every candidate set, its residual size
    with respect to the current union, updates residuals through an
    inverted element index, and re-pushes updated keys into a min-heap
    (stale entries are detected and discarded on pop), so the total cost is
    O(total set size · log |U|).
    """
    _check_target(system, p)
    sets = system.sets()
    weights = system.weights()
    residual = [len(member) for member in sets]
    inverted = system.inverted_index()

    def key(index: int) -> tuple:
        if prefer_multiplicity:
            return (residual[index] / weights[index], residual[index], index)
        return (float(residual[index]), -float(weights[index]), index)

    heap = [key(index) for index in range(len(sets))]
    heapq.heapify(heap)

    union: set = set()
    selected: list[int] = []
    selected_flags = [False] * len(sets)
    covered_weight = 0

    while covered_weight < p and heap:
        entry = heapq.heappop(heap)
        index = entry[-1]
        if selected_flags[index]:
            continue
        current = key(index)
        if entry != current:
            heapq.heappush(heap, current)
            continue
        selected_flags[index] = True
        selected.append(index)
        covered_weight += weights[index]
        new_elements = [element for element in sets[index] if element not in union]
        union.update(new_elements)
        touched: set[int] = set()
        for element in new_elements:
            for other in inverted[element]:
                if not selected_flags[other]:
                    residual[other] -= 1
                    touched.add(other)
        for other in touched:
            heapq.heappush(heap, key(other))

    if covered_weight < p:
        raise InfeasibleCoverError(f"greedy covered only {covered_weight} of the requested {p}")
    return MpUResult(
        selected_indices=tuple(selected),
        union=frozenset(union),
        covered_weight=covered_weight,
        solver="greedy-min-union",
    )


# --------------------------------------------------------------------------- #
# p smallest sets
# --------------------------------------------------------------------------- #


def smallest_sets_union(system: SetSystem, p: int) -> MpUResult:
    """Take member sets in increasing-size order until ``p`` is reached."""
    _check_target(system, p)
    order = sorted(range(system.num_sets), key=lambda index: (len(system[index]), index))
    union: set = set()
    selected: list[int] = []
    covered_weight = 0
    for index in order:
        if covered_weight >= p:
            break
        selected.append(index)
        union.update(system[index])
        covered_weight += system.weight(index)
    if covered_weight < p:
        raise InfeasibleCoverError(
            f"smallest-sets covered only {covered_weight} of the requested {p}"
        )
    return MpUResult(
        selected_indices=tuple(selected),
        union=frozenset(union),
        covered_weight=covered_weight,
        solver="smallest-sets",
    )


# --------------------------------------------------------------------------- #
# Local search refinement
# --------------------------------------------------------------------------- #


def local_search_improve(
    system: SetSystem,
    p: int,
    result: MpUResult,
    max_rounds: int = 3,
    max_candidates: int = 2000,
) -> MpUResult:
    """Swap-based refinement of an MpU solution.

    Repeatedly tries to replace one selected set with one unselected set
    such that the covered weight stays at least ``p`` and the union shrinks.
    The search space is capped (``max_candidates`` unselected sets per
    round, preferring small ones) so refinement stays cheap even on large
    sampled systems; pass a larger cap for the ablation benchmarks.
    """
    _check_target(system, p)
    require_positive_int(max_rounds, "max_rounds")
    selected = set(result.selected_indices)
    best_union = set(result.union)

    for _ in range(max_rounds):
        improved = False
        outside = sorted(
            (index for index in range(system.num_sets) if index not in selected),
            key=lambda index: len(system[index]),
        )[:max_candidates]
        for removal in sorted(selected, key=lambda index: -len(system[index])):
            remaining = selected - {removal}
            base_weight = system.weight_of(remaining)
            base_union = set().union(*(system[index] for index in remaining)) if remaining else set()
            for addition in outside:
                if base_weight + system.weight(addition) < p:
                    continue
                candidate_union = base_union | set(system[addition])
                if len(candidate_union) < len(best_union):
                    selected = remaining | {addition}
                    best_union = candidate_union
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break

    covered_weight = system.weight_of(selected)
    return MpUResult(
        selected_indices=tuple(sorted(selected)),
        union=frozenset(best_union),
        covered_weight=covered_weight,
        solver=result.solver + "+local-search",
    )


# --------------------------------------------------------------------------- #
# Combined solver (the RAF subroutine)
# --------------------------------------------------------------------------- #


def chlamtac_mpu(
    system: SetSystem,
    p: int,
    use_local_search: bool = True,
    local_search_rounds: int = 2,
) -> MpUResult:
    """Best-of solver used as the paper's Chlamtáč subroutine.

    Runs the residual greedy and the p-smallest-sets candidates, optionally
    applies the swap local search to the better one, and returns the result
    with the smallest union.  See DESIGN.md for how this relates to the
    published LP-based ``2√|U|``-approximation.
    """
    candidates = [
        greedy_min_union(system, p, prefer_multiplicity=True),
        greedy_min_union(system, p, prefer_multiplicity=False),
        smallest_sets_union(system, p),
    ]
    best = min(candidates, key=lambda result: result.union_size)
    if use_local_search and system.num_sets <= 50_000:
        refined = local_search_improve(system, p, best, max_rounds=local_search_rounds)
        if refined.union_size < best.union_size:
            best = refined
    return MpUResult(
        selected_indices=best.selected_indices,
        union=best.union,
        covered_weight=best.covered_weight,
        solver=f"chlamtac[{best.solver}]",
    )


# --------------------------------------------------------------------------- #
# Exact solver (small instances only)
# --------------------------------------------------------------------------- #


def exact_mpu(system: SetSystem, p: int, max_sets: int = 24) -> MpUResult:
    """Exact MpU optimum via branch-and-bound over the member sets.

    Only intended for small systems (at most ``max_sets`` member sets); used
    by the unit tests and the solver-quality ablation as ground truth.
    Minimizes the union size among all sub-families of total weight ≥ p.

    The search branches on include/exclude decisions in descending weight
    order and prunes a branch when (a) the union already reached the best
    union size found so far (the union can only grow), or (b) the remaining
    sets cannot lift the covered weight to ``p``.
    """
    _check_target(system, p)
    if system.num_sets > max_sets:
        raise SetCoverError(
            f"exact_mpu is limited to {max_sets} sets, got {system.num_sets}; "
            "use chlamtac_mpu for larger instances"
        )
    order = sorted(range(system.num_sets), key=lambda index: -system.weight(index))
    suffix_weight = [0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        suffix_weight[position] = suffix_weight[position + 1] + system.weight(order[position])

    # Seed the incumbent with a greedy solution so pruning bites immediately.
    incumbent = greedy_min_union(system, p)
    best_union: frozenset = incumbent.union
    best_selected: tuple[int, ...] = incumbent.selected_indices
    best_weight = incumbent.covered_weight

    def search(position: int, chosen: list[int], union: set, weight: int) -> None:
        nonlocal best_union, best_selected, best_weight
        if weight >= p:
            if len(union) < len(best_union) or (
                len(union) == len(best_union) and len(chosen) < len(best_selected)
            ):
                best_union = frozenset(union)
                best_selected = tuple(chosen)
                best_weight = weight
            return
        if position >= len(order):
            return
        if weight + suffix_weight[position] < p:
            return
        if len(union) >= len(best_union):
            return
        index = order[position]
        # Branch 1: include this set.
        added = [element for element in system[index] if element not in union]
        union.update(added)
        chosen.append(index)
        search(position + 1, chosen, union, weight + system.weight(index))
        chosen.pop()
        union.difference_update(added)
        # Branch 2: exclude this set.
        search(position + 1, chosen, union, weight)

    search(0, [], set(), 0)
    return MpUResult(
        selected_indices=best_selected,
        union=best_union,
        covered_weight=best_weight,
        solver="exact",
    )
