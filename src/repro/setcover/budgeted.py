"""Budgeted trace coverage: maximize covered realizations under a node budget.

This is the covering problem behind the *maximum* active friending variant
(the problem studied by Yang et al. and Yuan et al., and the natural dual
of the paper's minimization problem): given the sampled type-1 traces and a
budget of ``k`` invitations, choose at most ``k`` nodes so that as many
traces as possible are fully covered.

A trace only counts once *all* of its nodes are selected, so this is not
plain maximum coverage; the greedy here works at the trace level -- it
repeatedly "buys" the trace with the best ratio of additional covered
weight to additional nodes needed, as long as it still fits the remaining
budget -- with an optional node-level sweep to spend any leftover budget on
nodes that complete further traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.setcover.hypergraph import SetSystem
from repro.utils.validation import require_positive_int

__all__ = ["BudgetedCoverResult", "budgeted_trace_cover"]


@dataclass(frozen=True, slots=True)
class BudgetedCoverResult:
    """Result of a budgeted trace-coverage run.

    Attributes
    ----------
    cover:
        The chosen node set (at most ``budget`` nodes).
    covered_weight:
        Total multiplicity of traces fully contained in ``cover``.
    budget:
        The node budget that was given.
    """

    cover: frozenset
    covered_weight: int
    budget: int

    @property
    def size(self) -> int:
        """Number of chosen nodes."""
        return len(self.cover)


def budgeted_trace_cover(system: SetSystem, budget: int) -> BudgetedCoverResult:
    """Greedily cover as much trace weight as possible with at most ``budget`` nodes.

    The system is deduplicated first (identical traces are covered together).
    The main loop picks, among the traces that still fit in the remaining
    budget, the one with the highest covered-weight-per-new-node ratio
    (ties toward fewer new nodes).  A final sweep spends leftover budget on
    single nodes that complete additional traces.

    Because the "fits in the remaining budget" filter changes which trace
    the greedy commits to first, a single pass at budget ``k + 1`` can end
    up covering *less* than a pass at budget ``k`` (a larger trace with a
    better ratio wins the first pick and crowds out a cheaper combination).
    Any node set feasible at budget ``k`` is feasible at every larger
    budget, so non-monotone coverage is never forced; the solver therefore
    runs the single-budget greedy for every budget up to ``budget`` and
    keeps the best cover found, which makes ``covered_weight`` monotone in
    the budget by construction.  Ties prefer the largest budget's pass, so
    instances where the plain greedy was already monotone return exactly
    the node set they always did.
    """
    require_positive_int(budget, "budget")
    deduped = system.deduplicate()
    best: frozenset | None = None
    best_weight = -1
    for cap in range(1, budget + 1):
        chosen, covered_weight = _greedy_at_budget(deduped, cap)
        if covered_weight >= best_weight:
            best = chosen
            best_weight = covered_weight
        if best_weight == deduped.total_weight:
            # Coverage is saturated; intermediate caps cannot improve it.
            # Still run the full-budget pass (which wins ties) so the node
            # set matches what the single-pass greedy always returned.
            if cap < budget:
                chosen, covered_weight = _greedy_at_budget(deduped, budget)
                if covered_weight >= best_weight:
                    best = chosen
                    best_weight = covered_weight
            break
    return BudgetedCoverResult(
        cover=best,
        covered_weight=system.covered_weight(best),
        budget=budget,
    )


def _greedy_at_budget(deduped: SetSystem, budget: int) -> tuple[frozenset, int]:
    """One ratio-greedy pass at exactly this budget (see the caller)."""
    sets = deduped.sets()
    weights = deduped.weights()
    covered = [False] * deduped.num_sets
    chosen: set = set()
    covered_weight = 0

    while len(chosen) < budget:
        best_index = None
        best_key: tuple[float, int] | None = None
        remaining = budget - len(chosen)
        for index, member in enumerate(sets):
            if covered[index]:
                continue
            missing = [node for node in member if node not in chosen]
            cost = len(missing)
            if cost == 0:
                covered[index] = True
                covered_weight += weights[index]
                continue
            if cost > remaining:
                continue
            key = (weights[index] / cost, -cost)
            if best_key is None or key > best_key:
                best_key = key
                best_index = index
        if best_index is None:
            break
        for node in sets[best_index]:
            chosen.add(node)
        covered[best_index] = True
        covered_weight += weights[best_index]
        # Other traces may have become fully covered as a side effect.
        for index, member in enumerate(sets):
            if not covered[index] and member <= chosen:
                covered[index] = True
                covered_weight += weights[index]

    return frozenset(chosen), covered_weight
