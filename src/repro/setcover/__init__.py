"""Minimum p-Union and Minimum Subset Cover solvers (Problems 2 and 3).

The RAF algorithm reduces the sampled active-friending problem to a
Minimum Subset Cover instance over the type-1 backward traces: find the
smallest node set whose union covers at least ``p = ⌈β·|B¹|⌉`` of the
traces.  Remark 2 of the paper reduces MSC to Minimum p-Union (pick ``p``
subsets whose union is smallest), for which Chlamtáč et al. give a
``2√|U|``-approximation.

This package provides the :class:`~repro.setcover.hypergraph.SetSystem`
container plus several MpU solvers (efficient lazy greedy, p-smallest-sets,
a combined "Chlamtáč-style" best-of solver with local search, and an exact
branch-and-bound for small instances) and the MSC reduction on top of them.
"""

from repro.setcover.hypergraph import SetSystem
from repro.setcover.mpu import (
    MpUResult,
    chlamtac_mpu,
    exact_mpu,
    greedy_min_union,
    local_search_improve,
    smallest_sets_union,
)
from repro.setcover.msc import CoverResult, greedy_node_cover, minimum_subset_cover
from repro.setcover.budgeted import BudgetedCoverResult, budgeted_trace_cover

__all__ = [
    "BudgetedCoverResult",
    "budgeted_trace_cover",
    "SetSystem",
    "MpUResult",
    "greedy_min_union",
    "smallest_sets_union",
    "local_search_improve",
    "chlamtac_mpu",
    "exact_mpu",
    "CoverResult",
    "minimum_subset_cover",
    "greedy_node_cover",
]
