"""Concurrent query service over the shared sample pool, plus the asyncio
socket/HTTP serving front end (see :mod:`repro.service.query_service`,
:mod:`repro.service.server` and :mod:`repro.service.loadgen`)."""

from repro.service.loadgen import (
    LoadResult,
    candidate_pairs,
    canonical_result,
    generate_schedule,
    hot_queries,
    run_load,
    run_load_benchmark,
    run_standalone,
)
from repro.service.query_service import (
    QUERY_KINDS,
    EvaluateQuery,
    MaximizeQuery,
    PmaxQuery,
    Query,
    QueryService,
    ServiceMetrics,
    execute_query,
)
from repro.service.server import QueryServer, TokenBucket, serve_forever

__all__ = [
    "EvaluateQuery",
    "MaximizeQuery",
    "PmaxQuery",
    "Query",
    "QUERY_KINDS",
    "QueryServer",
    "QueryService",
    "ServiceMetrics",
    "TokenBucket",
    "execute_query",
    "serve_forever",
    "LoadResult",
    "candidate_pairs",
    "canonical_result",
    "generate_schedule",
    "hot_queries",
    "run_load",
    "run_load_benchmark",
    "run_standalone",
]
