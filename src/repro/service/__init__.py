"""Concurrent query service over the shared sample pool (see
:mod:`repro.service.query_service` and :mod:`repro.service.loadgen`)."""

from repro.service.loadgen import (
    LoadResult,
    candidate_pairs,
    canonical_result,
    generate_schedule,
    hot_queries,
    run_load,
    run_load_benchmark,
    run_standalone,
)
from repro.service.query_service import (
    EvaluateQuery,
    MaximizeQuery,
    PmaxQuery,
    Query,
    QueryService,
    ServiceMetrics,
    execute_query,
)

__all__ = [
    "EvaluateQuery",
    "MaximizeQuery",
    "PmaxQuery",
    "Query",
    "QueryService",
    "ServiceMetrics",
    "execute_query",
    "LoadResult",
    "candidate_pairs",
    "canonical_result",
    "generate_schedule",
    "hot_queries",
    "run_load",
    "run_load_benchmark",
    "run_standalone",
]
