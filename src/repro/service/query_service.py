"""A concurrent query service with request coalescing over one shared pool.

The library answers three kinds of per-(source, target) questions --
``pmax`` estimation (Alg. 2), invitation evaluation (Lemma 2) and budgeted
maximization -- and PR 3's :class:`~repro.pool.SamplePool` already makes
*repeated* keys cheap for a single caller.  :class:`QueryService` is the
layer that lets *many concurrent callers* share one pool, one
:class:`~repro.parallel.engine.ParallelEngine` and one warm cache:

* **Coalescing.**  Queries are small frozen dataclasses
  (:class:`PmaxQuery`, :class:`EvaluateQuery`, :class:`MaximizeQuery`) and
  two equal queries are, by the pool's determinism contract, guaranteed to
  produce byte-identical answers.  While a query is executing, any equal
  query that arrives attaches to the in-flight execution and receives the
  same result object -- duplicate traffic costs one sampling pass.  The
  coalesce key is the query itself, which subsumes the underlying
  ``(target, stop set, engine)`` pool key; *non*-equal queries for the same
  pair still share the pool's cached streams (that saving shows up as the
  pool hit rate rather than the coalesce rate).
* **Admission control.**  ``max_in_flight`` bounds concurrent *executions*
  (coalesced joins are free and always admitted); beyond it, submissions
  fail fast with :class:`~repro.exceptions.ServiceOverloadedError`.
  ``max_query_samples`` bounds the per-query sample budget; a query asking
  for more is refused with :class:`~repro.exceptions.ServiceRejectedError`.
* **Metrics.**  Per-query latency percentiles, pool hit rate, coalesce
  rate, and samples drawn (:meth:`QueryService.metrics`).  The counters
  reconcile: every submission is counted exactly once, so
  ``requests == executed + coalesced + rejected``.

Bit-identity contract (DESIGN.md §5)
------------------------------------

A query answered through the service is byte-identical to the same query
run standalone against a fresh :class:`~repro.pool.SamplePool` built with
the same ``(graph, engine, pool seed)`` -- regardless of concurrency,
coalescing, arrival order, or worker count.  This falls straight out of the
pool contract: every sample any query consumes is a pure function of
``(pool seed, key, index)``, and the service adds no randomness of its own.
Executions are serialized over the pool (a :class:`threading.Lock`), which
is what makes the shared mutable pool safe under concurrent submission;
parallelism *within* one execution still comes from the wrapped
:class:`~repro.parallel.engine.ParallelEngine`'s process fan-out, and
cross-query concurrency from coalescing and cache reuse.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.maximization import MaxFriendingResult, maximize_acceptance_probability
from repro.core.raf import PmaxEstimate, estimate_pmax
from repro.diffusion.friending_process import (
    AcceptanceEstimate,
    estimate_acceptance_probability,
)
from repro.exceptions import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceRejectedError,
)
from repro.graph.social_graph import SocialGraph
from repro.parallel.engine import maybe_parallel
from repro.pool.sample_pool import SamplePool
from repro.diffusion.engine import resolve_engine
from repro.types import NodeId
from repro.utils.validation import require_positive, require_positive_int

__all__ = [
    "PmaxQuery",
    "EvaluateQuery",
    "MaximizeQuery",
    "Query",
    "QUERY_KINDS",
    "ServiceMetrics",
    "QueryService",
]


@dataclass(frozen=True, slots=True)
class PmaxQuery:
    """A stopping-rule ``pmax`` estimation request (Alg. 2)."""

    source: NodeId
    target: NodeId
    epsilon: float = 0.1
    confidence_n: float = 100_000.0
    max_samples: int = 500_000

    kind = "pmax"

    def __post_init__(self) -> None:
        require_positive(self.epsilon, "epsilon")
        require_positive(self.confidence_n, "confidence_n")
        require_positive_int(self.max_samples, "max_samples")

    def sample_cost(self) -> int:
        """Worst-case samples this query may consume (its admission cost)."""
        return self.max_samples


@dataclass(frozen=True, slots=True)
class EvaluateQuery:
    """A Lemma-2 invitation evaluation request: estimate ``f(invitation)``."""

    source: NodeId
    target: NodeId
    invitation: frozenset = field(default_factory=frozenset)
    num_samples: int = 400

    kind = "evaluate"

    def __post_init__(self) -> None:
        if not isinstance(self.invitation, frozenset):
            object.__setattr__(self, "invitation", frozenset(self.invitation))
        require_positive_int(self.num_samples, "num_samples")

    def sample_cost(self) -> int:
        return self.num_samples


@dataclass(frozen=True, slots=True)
class MaximizeQuery:
    """A budgeted (maximum) active friending request."""

    source: NodeId
    target: NodeId
    budget: int = 4
    num_realizations: int = 2_000

    kind = "maximize"

    def __post_init__(self) -> None:
        require_positive_int(self.budget, "budget")
        require_positive_int(self.num_realizations, "num_realizations")

    def sample_cost(self) -> int:
        return self.num_realizations


#: Any request the service accepts.
Query = PmaxQuery | EvaluateQuery | MaximizeQuery

_QUERY_TYPES = (PmaxQuery, EvaluateQuery, MaximizeQuery)

#: Wire-protocol ``op`` field -> query constructor.  Shared by every
#: process boundary speaking the JSON request shape: the ``repro serve``
#: stdin loop and the socket/HTTP front end (:mod:`repro.service.server`).
QUERY_KINDS = {cls.kind: cls for cls in _QUERY_TYPES}


def _unsupported_query(query) -> ServiceError:
    return ServiceError(
        f"unsupported query type {type(query).__name__}; expected one of "
        + ", ".join(q.__name__ for q in _QUERY_TYPES)
    )


def execute_query(graph: SocialGraph, query, pool: SamplePool):
    """Answer one query against an explicit pool -- the one true dispatch.

    Both the service's executions and the load generator's standalone
    reference calls go through here, so the bit-identity comparison always
    compares identical call shapes.  Raises
    :class:`~repro.exceptions.ServiceError` for unsupported query types.
    """
    if isinstance(query, PmaxQuery):
        return estimate_pmax(
            graph,
            query.source,
            query.target,
            epsilon=query.epsilon,
            confidence_n=query.confidence_n,
            max_samples=query.max_samples,
            pool=pool,
        )
    if isinstance(query, EvaluateQuery):
        return estimate_acceptance_probability(
            graph,
            query.source,
            query.target,
            query.invitation,
            num_samples=query.num_samples,
            pool=pool,
        )
    if isinstance(query, MaximizeQuery):
        return maximize_acceptance_probability(
            graph,
            query.source,
            query.target,
            budget=query.budget,
            num_realizations=query.num_realizations,
            pool=pool,
        )
    raise _unsupported_query(query)


#: Latency samples retained for the percentile window.  Bounds both memory
#: and the per-snapshot sort in a long-lived serve process while keeping
#: the percentiles exact over recent traffic.
LATENCY_WINDOW = 10_000


def _percentile(sorted_values: Sequence[float], fraction: float) -> float | None:
    """Nearest-rank percentile of an already-sorted sequence.

    The nearest-rank definition: the ``ceil(fraction * N)``-th smallest
    value (so p99 of 100 samples is the 99th order statistic, not the
    maximum).  An empty window has no percentiles: the result is ``None``,
    never a misleading 0.0 and never an ``IndexError``; a one-sample window
    reports that sample for every fraction.
    """
    if not sorted_values:
        return None
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True, slots=True)
class ServiceMetrics:
    """A consistent snapshot of the service counters.

    The population counters reconcile exactly:
    ``requests == executed + coalesced + rejected``.

    Attributes
    ----------
    requests:
        Total queries submitted (admitted or not).
    executed:
        Queries that ran an execution of their own.
    coalesced:
        Queries that attached to an equal in-flight (or same-batch)
        execution and received its result without sampling.
    rejected:
        Queries refused by admission control.
    samples_drawn:
        Paths drawn from the engine over the pool's lifetime.
    samples_served:
        Paths handed to estimators (``served - drawn`` is the reuse win).
    latency_p50, latency_p90, latency_p99:
        Nearest-rank per-query latency percentiles, in seconds, over the
        most recent :data:`LATENCY_WINDOW` admitted queries.  ``None``
        before any query completed -- an empty window has no percentiles,
        and 0.0 would read as "instant" in ``stats`` output
        (:func:`~repro.experiments.records.to_jsonable` renders the absent
        value explicitly as JSON ``null``).
    """

    requests: int
    executed: int
    coalesced: int
    rejected: int
    samples_drawn: int
    samples_served: int
    latency_p50: float | None
    latency_p90: float | None
    latency_p99: float | None

    @property
    def coalesce_rate(self) -> float:
        """Fraction of admitted queries served by an in-flight execution."""
        admitted = self.executed + self.coalesced
        return self.coalesced / admitted if admitted else 0.0

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of served samples that were reused rather than drawn."""
        if self.samples_served <= 0:
            return 0.0
        return max(0.0, 1.0 - self.samples_drawn / self.samples_served)


class _InFlight:
    """One execution and the latch its coalesced followers wait on."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class QueryService:
    """Serve pmax / evaluate / maximize queries over one shared sample pool.

    Parameters
    ----------
    graph:
        The weighted friendship graph every query runs against.
    engine:
        Reverse-sampling backend name (``"python"``, ``"numpy"``, ``"auto"``)
        or an engine instance built on ``graph``.
    workers:
        Optional worker-process fan-out for the sampling batches (a positive
        integer or ``"auto"``); results are identical for every worker count.
    seed:
        The shared pool's seed -- the constant that defines every answer.  A
        standalone run against a fresh ``SamplePool(engine, seed=seed)`` is
        byte-identical to the service's answer for the same query.
    pool_budget:
        Optional cap on total cached paths (LRU eviction, see the pool).
    max_in_flight:
        Admission limit on concurrent executions (``None``: unbounded).
    max_query_samples:
        Per-query sample budget (``None``: unbounded).
    coalesce:
        ``False`` disables request coalescing (every admitted query
        executes); the load benchmark's reference arm.  Results are
        identical either way -- only the cost differs.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injected into the
        sampling engine and the pool's spill path -- the chaos harness and
        ``repro serve --fault-seed`` soak runs use this.  Never set in
        production.

    A service's parallel engine runs with ``on_worker_failure="serial"``:
    if sampling workers keep dying past the retry budget, the service
    degrades to in-process sampling (byte-identical answers, reduced
    throughput) instead of failing queries -- the :attr:`degraded` flag
    records the downgrade for ``stats``/``healthz`` (DESIGN.md §11).
    """

    def __init__(
        self,
        graph: SocialGraph,
        *,
        engine="python",
        workers: int | str | None = None,
        seed: int = 0,
        pool_budget: int | None = None,
        max_in_flight: int | None = None,
        max_query_samples: int | None = None,
        coalesce: bool = True,
        fault_plan=None,
    ) -> None:
        if max_in_flight is not None:
            require_positive_int(max_in_flight, "max_in_flight")
        if max_query_samples is not None:
            require_positive_int(max_query_samples, "max_query_samples")
        self._graph = graph
        self._engine = maybe_parallel(
            resolve_engine(graph, engine), workers, on_worker_failure="serial"
        )
        if fault_plan is not None and hasattr(self._engine, "inject_faults"):
            self._engine.inject_faults(fault_plan)
        self._pool = SamplePool(
            self._engine, seed=seed, budget=pool_budget, fault_plan=fault_plan
        )
        self._max_in_flight = max_in_flight
        self._max_query_samples = max_query_samples
        self._coalesce = bool(coalesce)
        # _state_lock guards the counters and the in-flight map; _pool_lock
        # serializes executions over the (not thread-safe) shared pool.
        self._state_lock = threading.Lock()
        self._pool_lock = threading.Lock()
        self._inflight: dict[object, _InFlight] = {}
        self._executing = 0
        self._requests = 0
        self._executed = 0
        self._coalesced = 0
        self._rejected = 0
        # Bounded window: a long-lived serve process must not grow a
        # per-request list forever, nor sort millions of floats under the
        # state lock on every `stats` op.
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> SocialGraph:
        """The graph the service answers queries about."""
        return self._graph

    @property
    def pool(self) -> SamplePool:
        """The shared sample pool.

        The pool is not thread-safe; while other callers may be submitting
        queries, consume it through :meth:`locked_pool` (as
        ``run_raf(..., service=svc)`` does) rather than directly.
        """
        return self._pool

    @contextmanager
    def locked_pool(self):
        """The shared pool, held under the service's execution lock.

        Serializes direct pool consumers (e.g. ``run_raf``'s sampling
        framework) with the service's own query executions, so mixing
        pipeline runs and query traffic over one service cannot corrupt the
        pool's shared LRU/eviction state.
        """
        with self._pool_lock:
            yield self._pool

    @property
    def coalesce(self) -> bool:
        """Whether request coalescing is enabled."""
        return self._coalesce

    @property
    def degraded(self) -> bool:
        """Whether the sampling engine has degraded to in-process serial mode.

        ``True`` once the parallel engine exhausted its crash-retry budget
        and fell back to sampling in the serving process (answers stay
        byte-identical; only throughput suffers).  Always ``False`` for
        engines without a worker pool.
        """
        return bool(getattr(self._engine, "degraded", False))

    def metrics(self) -> ServiceMetrics:
        """A consistent snapshot of the counters (see :class:`ServiceMetrics`).

        Deliberately does *not* take the execution lock (callers poll
        metrics while queries run), so the pool is sampled through its
        lock-free counter properties rather than ``stats()``, whose entry
        iteration races with concurrent executions.
        """
        drawn = self._pool.drawn_paths
        served = self._pool.served_paths
        with self._state_lock:
            latencies = sorted(self._latencies)
            return ServiceMetrics(
                requests=self._requests,
                executed=self._executed,
                coalesced=self._coalesced,
                rejected=self._rejected,
                samples_drawn=drawn,
                samples_served=served,
                latency_p50=_percentile(latencies, 0.50),
                latency_p90=_percentile(latencies, 0.90),
                latency_p99=_percentile(latencies, 0.99),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<QueryService engine={self._engine.name} seed={self._pool.seed} "
            f"coalesce={self._coalesce}>"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has begun; closed services refuse queries."""
        return self._closed

    def close(self) -> None:
        """Release the async executor and any sampling worker pool.

        Marks the service closed *first* -- a submission racing ``close()``
        from another thread fails fast with a typed
        :class:`~repro.exceptions.ServiceClosedError` (see :meth:`_claim`)
        instead of hanging on a latch or hitting a dead executor -- then
        waits for async submissions, then takes the execution lock before
        tearing down the engine, so an already-admitted ``submit`` finishes
        its sampling instead of losing its worker pool mid-query.
        Idempotent.
        """
        with self._state_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        with self._pool_lock:
            close = getattr(self._engine, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The front-ends
    # ------------------------------------------------------------------ #

    def submit(self, query) -> object:
        """Answer one query, blocking until the result is available.

        Equal queries submitted while this one executes coalesce onto it.
        Raises the admission-control errors synchronously and re-raises any
        library error the execution produced (followers observe the same
        error as the leader).
        """
        start = time.perf_counter()
        entry, leader = self._claim(query)
        if leader:
            try:
                entry.result = self._execute(query)
            except BaseException as error:
                entry.error = error
            finally:
                with self._state_lock:
                    self._inflight.pop(query, None)
                    self._executing -= 1
                entry.done.set()
        else:
            entry.done.wait()
        self._record_latency(time.perf_counter() - start)
        if entry.error is not None:
            raise entry.error
        return entry.result

    def submit_many(self, queries: Iterable) -> list:
        """Answer a batch, coalescing duplicates within the batch.

        The batch is answered in first-occurrence order of its distinct
        queries, so the executions -- and every counter they touch -- are
        deterministic regardless of how the batch was assembled.  This is
        the closed-loop load generator's wave primitive: duplicate requests
        in one wave coalesce *exactly* (no race decides whether the
        duplicate arrived while the leader was still in flight).  Results
        are returned in input order; an admission or execution error aborts
        the batch (per-query error handling belongs to :meth:`submit`).
        """
        batch = list(queries)
        if not self._coalesce:
            return [self.submit(query) for query in batch]
        results: list = [None] * len(batch)
        groups: dict[object, list[int]] = {}
        order: list = []
        for index, query in enumerate(batch):
            positions = groups.setdefault(query, [])
            if not positions:
                order.append(query)
            positions.append(index)
        for query in order:
            positions = groups[query]
            start = time.perf_counter()
            value = self.submit(query)
            elapsed = time.perf_counter() - start
            followers = len(positions) - 1
            if followers:
                with self._state_lock:
                    self._requests += followers
                    self._coalesced += followers
                    # In wave mode a follower waits exactly as long as its
                    # leader's execution, so the percentile population stays
                    # one latency sample per admitted query.
                    self._latencies.extend([elapsed] * followers)
            for index in positions:
                results[index] = value
        return results

    async def submit_async(self, query) -> object:
        """Asyncio front-end: awaitable :meth:`submit` on a worker thread.

        Concurrent awaits of equal queries coalesce exactly like concurrent
        :meth:`submit` calls from threads do.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._ensure_executor(), self.submit, query)

    # ------------------------------------------------------------------ #
    # Typed conveniences (the run_raf / harness execution backend)
    # ------------------------------------------------------------------ #

    def estimate_pmax(
        self,
        source: NodeId,
        target: NodeId,
        epsilon: float = 0.1,
        confidence_n: float = 100_000.0,
        max_samples: int = 500_000,
    ) -> PmaxEstimate:
        """Submit a :class:`PmaxQuery` and return its :class:`PmaxEstimate`."""
        return self.submit(
            PmaxQuery(
                source=source,
                target=target,
                epsilon=epsilon,
                confidence_n=confidence_n,
                max_samples=max_samples,
            )
        )

    def evaluate(
        self,
        source: NodeId,
        target: NodeId,
        invitation: Iterable[NodeId],
        num_samples: int = 400,
    ) -> AcceptanceEstimate:
        """Submit an :class:`EvaluateQuery` and return its estimate."""
        return self.submit(
            EvaluateQuery(
                source=source,
                target=target,
                invitation=frozenset(invitation),
                num_samples=num_samples,
            )
        )

    def maximize(
        self,
        source: NodeId,
        target: NodeId,
        budget: int,
        num_realizations: int = 2_000,
    ) -> MaxFriendingResult:
        """Submit a :class:`MaximizeQuery` and return its result."""
        return self.submit(
            MaximizeQuery(
                source=source,
                target=target,
                budget=budget,
                num_realizations=num_realizations,
            )
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._state_lock:
            if self._closed:
                # Never resurrect an executor after close(): an async
                # submission racing shutdown gets the typed error, not a
                # RuntimeError from a dead pool (or a leaked new one).
                raise ServiceClosedError("service is closed")
            if self._executor is None:
                size = self._max_in_flight if self._max_in_flight is not None else 8
                self._executor = ThreadPoolExecutor(
                    max_workers=max(2, size), thread_name_prefix="repro-service"
                )
            return self._executor

    def _claim(self, query) -> tuple[_InFlight, bool]:
        """Admit a query: join an in-flight equal execution or lead a new one."""
        if not isinstance(query, _QUERY_TYPES):
            raise _unsupported_query(query)
        with self._state_lock:
            self._requests += 1
            if self._closed:
                # Counted as a rejection so the reconciliation invariant
                # (requests == executed + coalesced + rejected) survives
                # shutdown races.  Checked before the coalesce lookup: a
                # would-be follower must not latch onto a leader whose
                # service is tearing down.
                self._rejected += 1
                raise ServiceClosedError(
                    "service is closed; the query was not admitted"
                )
            cost = query.sample_cost()
            if self._max_query_samples is not None and cost > self._max_query_samples:
                self._rejected += 1
                raise ServiceRejectedError(
                    f"query requests up to {cost} samples, above the per-query "
                    f"budget of {self._max_query_samples}"
                )
            if self._coalesce:
                entry = self._inflight.get(query)
                if entry is not None:
                    self._coalesced += 1
                    return entry, False
            if self._max_in_flight is not None and self._executing >= self._max_in_flight:
                self._rejected += 1
                raise ServiceOverloadedError(
                    f"{self._executing} executions already in flight "
                    f"(max_in_flight={self._max_in_flight})"
                )
            entry = _InFlight()
            if self._coalesce:
                self._inflight[query] = entry
            self._executing += 1
            self._executed += 1
            return entry, True

    def _execute(self, query) -> object:
        # Serialized: the SamplePool mutates shared state and is not
        # thread-safe; within the execution the ParallelEngine still fans
        # sampling over worker processes.
        with self._pool_lock:
            return execute_query(self._graph, query, self._pool)

    def _record_latency(self, seconds: float) -> None:
        with self._state_lock:
            self._latencies.append(seconds)
