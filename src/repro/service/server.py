"""Network-grade asyncio serving front end over :class:`QueryService`.

``repro serve`` began as a single-client JSON-lines loop over stdin; this
module is the process boundary the ROADMAP's "millions of users" actually
need: one asyncio server accepting many concurrent remote clients, speaking
two wire modes sniffed per connection from the first request line:

* **JSON lines over TCP** -- the stdin protocol, networked.  One JSON
  request object per line, one JSON response line per request *in request
  order per connection*.  Requests carry the stdin ``op`` field plus
  optional envelope fields consumed by the server: ``id`` (echoed back
  verbatim), ``tenant``, ``priority`` and ``deadline_ms``.
* **Minimal HTTP/1.1** -- ``POST /query`` (body: the same JSON request
  object), ``GET /stats`` and ``GET /healthz``, with keep-alive.  Admission
  failures map onto status codes (429 budget, 503 overload/shutdown,
  504 deadline); ``/healthz`` performs no admission at all, so it answers
  even when every execution slot is saturated.

The server layers four serving-grade controls over the service's existing
coalescing + ``max_in_flight`` admission (DESIGN.md §9 is the normative
description):

* **Tenancy.**  The ``tenant`` field names an isolation domain.  Each
  tenant gets its *own* ``QueryService`` -- its own ``SamplePool`` and
  coalesce map over a shared graph, created lazily on first use and capped
  by ``max_tenants``.  Every tenant pool uses the same seed, so answers
  are tenant-independent and byte-identical to standalone fresh-pool runs
  (the pool contract: a sample is a pure function of ``(seed, key, i)``).
* **Token-bucket budgets.**  Per tenant: capacity ``tenant_burst`` sample
  units refilling at ``tenant_rate`` units/second (both ``None`` =
  unlimited).  A request costs its ``sample_cost()``; an uncovered cost is
  refused with ``error_type: "budget"`` *before* touching the service, and
  the bucket is only charged for requests that are actually submitted.
* **Backpressure.**  At most ``connection_window`` requests are in flight
  per connection; when the window is full the server stops *reading* that
  socket until the oldest response is written, so overload propagates to
  the client as TCP backpressure instead of unbounded server-side queueing.
* **Deadlines and priority.**  ``deadline_ms`` (or the server-wide
  ``default_deadline_ms``) bounds the *response* time: on expiry the client
  gets ``error_type: "deadline"`` and the window slot frees immediately,
  while the underlying execution -- which cannot be killed mid-sample --
  completes on its worker thread and warms the pool for the retry.  The
  shared pool lock is never poisoned: expiry detaches the waiter, it never
  interrupts the execution holding the lock.  ``priority`` ∈ ``high`` /
  ``normal`` / ``low`` layers shed-low-first admission over
  ``max_in_flight``: low-priority requests are refused once half the
  execution slots are busy, keeping headroom for the rest.

Determinism: the server adds scheduling, never randomness.  Every admitted
query is answered through ``QueryService.submit_async``, so answers remain
byte-identical to standalone runs regardless of client count, interleaving,
tenancy or transport -- the socket arm of ``bench_service_load`` asserts
exactly that.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import (
    ReproError,
    ServiceBudgetExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceRejectedError,
)
from repro.experiments.records import to_jsonable
from repro.graph.social_graph import SocialGraph
from repro.service.query_service import QUERY_KINDS, QueryService
from repro.utils.validation import require_positive, require_positive_int

__all__ = [
    "TokenBucket",
    "QueryServer",
    "PRIORITIES",
    "serve_forever",
]

#: Recognised ``priority`` envelope values, most urgent first.
PRIORITIES = ("high", "normal", "low")

#: Default per-connection in-flight window (the stdin loop's pipelining
#: depth, applied per remote client).
DEFAULT_CONNECTION_WINDOW = 32

#: Per-connection read limit: a request line (or HTTP header block) larger
#: than this is malformed, not a reason to buffer without bound.
_READ_LIMIT = 1 << 20

_HTTP_METHOD = re.compile(rb"^(GET|HEAD|POST|PUT|DELETE|PATCH|OPTIONS) ")

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: ``error_type`` -> HTTP status code for ``POST /query`` failures.
_ERROR_STATUS = {
    "malformed": 400,
    "rejected": 400,
    "budget": 429,
    "overloaded": 503,
    "closed": 503,
    "deadline": 504,
    # Domain errors (unreachable pair, unknown node, ...) are successful
    # protocol exchanges whose *answer* is an error -- 200 + ``ok: false``,
    # mirroring the JSON-lines mode.
    "domain": 200,
}


class _Malformed(ValueError):
    """A request violating the wire protocol (connection-fatal)."""


class TokenBucket:
    """A token bucket in sample units with an injectable monotonic clock.

    ``capacity`` bounds the burst; ``rate`` tokens accrue per clock second
    up to the capacity.  :meth:`try_acquire` never blocks -- serving sheds
    load explicitly rather than queueing it invisibly.  The clock is
    injectable so budget tests advance time deterministically instead of
    sleeping.
    """

    __slots__ = ("capacity", "rate", "_tokens", "_clock", "_last")

    def __init__(
        self,
        capacity: float,
        rate: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        require_positive(capacity, "capacity")
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self.capacity = float(capacity)
        self.rate = float(rate)
        self._tokens = float(capacity)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0 and self.rate > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Tokens currently available (after refill accrual)."""
        self._refill()
        return self._tokens

    def try_acquire(self, cost: float) -> bool:
        """Debit ``cost`` tokens if the bucket covers them; never blocks."""
        self._refill()
        if cost > self._tokens:
            return False
        self._tokens -= cost
        return True


@dataclass(slots=True)
class _Tenant:
    """One tenant's isolation domain: its pool-owning service and budget."""

    name: str
    service: QueryService
    bucket: TokenBucket | None
    requests: int = 0
    budget_rejected: int = 0


@dataclass(slots=True)
class _ServerCounters:
    """Server-level counters (the service keeps its own per-tenant set)."""

    connections_total: int = 0
    requests_total: int = 0
    responses_total: int = 0
    malformed_total: int = 0
    budget_rejected_total: int = 0
    priority_rejected_total: int = 0
    deadline_expired_total: int = 0
    http_requests_total: int = 0


@dataclass(frozen=True, slots=True)
class _Envelope:
    """The transport-level fields stripped off a request object."""

    op: str
    id: object = None
    tenant: str = "default"
    priority: str = "normal"
    deadline_s: float | None = None
    has_id: bool = False


class QueryServer:
    """Asyncio TCP/HTTP front end multiplexing clients over per-tenant pools.

    Parameters mirror :class:`QueryService` (``graph`` / ``engine`` /
    ``workers`` / ``seed`` / ``pool_budget`` / ``max_in_flight`` /
    ``max_query_samples`` / ``coalesce`` / ``fault_plan`` apply to every
    tenant's service),
    plus the serving controls described in the module docstring:
    ``tenant_burst`` / ``tenant_rate`` (token bucket, sample units),
    ``max_tenants``, ``connection_window``, ``default_deadline_ms``, and an
    injectable ``clock`` for deterministic budget tests.

    Usage::

        server = QueryServer(graph, seed=7, host="127.0.0.1", port=0)
        await server.start()        # server.port is now bound
        ...
        await server.aclose()

    ``engine`` may also be a factory ``() -> engine-instance`` so tests can
    hand each tenant's service its own gated engine.
    """

    def __init__(
        self,
        graph: SocialGraph,
        *,
        engine="python",
        workers: int | str | None = None,
        seed: int = 0,
        pool_budget: int | None = None,
        max_in_flight: int | None = None,
        max_query_samples: int | None = None,
        coalesce: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        tenant_burst: int | None = None,
        tenant_rate: float | None = None,
        max_tenants: int = 64,
        connection_window: int = DEFAULT_CONNECTION_WINDOW,
        default_deadline_ms: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        fault_plan=None,
    ) -> None:
        require_positive_int(max_tenants, "max_tenants")
        require_positive_int(connection_window, "connection_window")
        if tenant_burst is not None:
            require_positive_int(tenant_burst, "tenant_burst")
        if tenant_rate is not None and tenant_rate < 0:
            raise ValueError(f"tenant_rate must be non-negative, got {tenant_rate}")
        if tenant_burst is None and tenant_rate is not None:
            raise ValueError("tenant_rate requires tenant_burst (the bucket capacity)")
        if default_deadline_ms is not None:
            require_positive(default_deadline_ms, "default_deadline_ms")
        self._graph = graph
        self._engine = engine
        self._service_kwargs = dict(
            workers=workers,
            seed=seed,
            pool_budget=pool_budget,
            max_in_flight=max_in_flight,
            max_query_samples=max_query_samples,
            coalesce=coalesce,
            fault_plan=fault_plan,
        )
        self._max_in_flight = max_in_flight
        self._host = host
        self._port = port
        self._tenant_burst = tenant_burst
        self._tenant_rate = tenant_rate if tenant_rate is not None else 0.0
        self._max_tenants = max_tenants
        self._connection_window = connection_window
        self._default_deadline_s = (
            default_deadline_ms / 1000.0 if default_deadline_ms is not None else None
        )
        self._clock = clock
        self._tenants: dict[str, _Tenant] = {}
        self._counters = _ServerCounters()
        self._inflight = 0
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._closing = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``); 0 before :meth:`start`."""
        return self._port

    @property
    def host(self) -> str:
        """The listening host."""
        return self._host

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise ServiceError("server is already started")
        self._server = await asyncio.start_server(
            self._accept, host=self._host, port=self._port, limit=_READ_LIMIT
        )
        sockets = self._server.sockets or ()
        if sockets:
            self._port = sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop accepting, close every connection, tear down tenant services.

        In-flight executions finish on their worker threads (each tenant
        service's ``close()`` waits for them); their responses are not
        delivered -- the sockets are already gone.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        for tenant in self._tenants.values():
            # close() blocks on in-flight work; keep the event loop alive.
            await asyncio.to_thread(tenant.service.close)
        self._tenants.clear()

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def tenant_service(self, name: str = "default") -> QueryService:
        """The named tenant's service (created lazily, like a request would)."""
        return self._tenant(name).service

    def stats(self) -> dict:
        """The structured stats payload served by ``stats`` / ``GET /stats``."""
        counters = self._counters
        tenants = {}
        for name in sorted(self._tenants):
            tenant = self._tenants[name]
            metrics = tenant.service.metrics()
            jsonable = to_jsonable(metrics)
            jsonable.pop("__type__", None)
            jsonable["coalesce_rate"] = metrics.coalesce_rate
            jsonable["pool_hit_rate"] = metrics.pool_hit_rate
            tenants[name] = {
                **jsonable,
                "server_requests": tenant.requests,
                "budget_rejected": tenant.budget_rejected,
                "tokens": None if tenant.bucket is None else tenant.bucket.tokens,
                "degraded": tenant.service.degraded,
            }
        return {
            "server": {
                "connections_total": counters.connections_total,
                "active_connections": len(self._connections),
                "requests_total": counters.requests_total,
                "responses_total": counters.responses_total,
                "malformed_total": counters.malformed_total,
                "budget_rejected_total": counters.budget_rejected_total,
                "priority_rejected_total": counters.priority_rejected_total,
                "deadline_expired_total": counters.deadline_expired_total,
                "http_requests_total": counters.http_requests_total,
                "in_flight": self._inflight,
                "max_in_flight": self._max_in_flight,
                "tenant_count": len(self._tenants),
                "max_tenants": self._max_tenants,
                "connection_window": self._connection_window,
                "degraded": self._degraded(),
            },
            "tenants": tenants,
        }

    def _degraded(self) -> bool:
        """Whether any tenant's engine fell back to serial sampling."""
        return any(tenant.service.degraded for tenant in self._tenants.values())

    def health(self) -> dict:
        """The ``/healthz`` payload: alive-ness, never gated on admission.

        ``degraded`` flips to ``True`` when any tenant's sampling engine
        has fallen back to in-process serial mode after repeated worker
        crashes -- the server still answers (byte-identically) but at
        reduced throughput, so operators can alert on it (DESIGN.md §11).
        """
        return {
            "ok": True,
            "status": "closing" if self._closing else "serving",
            "degraded": self._degraded(),
            "in_flight": self._inflight,
            "tenants": len(self._tenants),
        }

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is not None:
            return tenant
        if len(self._tenants) >= self._max_tenants:
            raise ServiceRejectedError(
                f"tenant limit reached ({self._max_tenants}); "
                f"tenant {name!r} was not created"
            )
        bucket = None
        if self._tenant_burst is not None:
            bucket = TokenBucket(self._tenant_burst, self._tenant_rate, clock=self._clock)
        engine = self._engine
        if callable(engine) and not isinstance(engine, (str, type)):
            engine = engine()
        tenant = _Tenant(
            name=name,
            service=QueryService(self._graph, engine=engine, **self._service_kwargs),
            bucket=bucket,
        )
        self._tenants[name] = tenant
        return tenant

    def _parse_envelope(self, request: dict) -> _Envelope:
        """Strip and validate the transport fields, mutating ``request``."""
        op = request.pop("op", None)
        if op == "stats":
            return _Envelope(op="stats")
        if op not in QUERY_KINDS:
            known = ", ".join(sorted((*QUERY_KINDS, "stats")))
            raise _Malformed(f"unknown op {op!r} (expected {known})")
        has_id = "id" in request
        request_id = request.pop("id", None)
        tenant = request.pop("tenant", "default")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            raise _Malformed("tenant must be a non-empty string of at most 64 chars")
        priority = request.pop("priority", "normal")
        if priority not in PRIORITIES:
            raise _Malformed(
                f"priority must be one of {', '.join(PRIORITIES)}, got {priority!r}"
            )
        deadline_s = self._default_deadline_s
        if "deadline_ms" in request:
            deadline_ms = request.pop("deadline_ms")
            if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool) \
                    or deadline_ms <= 0:
                raise _Malformed("deadline_ms must be a positive number")
            deadline_s = deadline_ms / 1000.0
        return _Envelope(
            op=op, id=request_id, tenant=tenant, priority=priority,
            deadline_s=deadline_s, has_id=has_id,
        )

    def _admit(self, envelope: _Envelope, request: dict):
        """Admission pipeline: build query, priority gate, budget charge.

        Returns ``(tenant, query)``; raises a typed ``ServiceError`` (an
        application-level response) or :class:`_Malformed` (connection-fatal).
        Order matters: a priority-shed request must not be charged tokens.
        """
        self._counters.requests_total += 1
        try:
            query = QUERY_KINDS[envelope.op](**request)
        except (TypeError, ValueError) as error:
            raise _Malformed(str(error)) from None
        if self._closing:
            raise ServiceClosedError("server is shutting down")
        tenant = self._tenant(envelope.tenant)
        tenant.requests += 1
        if envelope.priority == "low" and self._max_in_flight is not None:
            low_limit = max(1, self._max_in_flight // 2)
            if self._inflight >= low_limit:
                self._counters.priority_rejected_total += 1
                raise ServiceOverloadedError(
                    f"low-priority admission refused: {self._inflight} requests "
                    f"in flight (low-priority limit {low_limit} of "
                    f"max_in_flight={self._max_in_flight})"
                )
        if tenant.bucket is not None and not tenant.bucket.try_acquire(query.sample_cost()):
            tenant.budget_rejected += 1
            self._counters.budget_rejected_total += 1
            raise ServiceBudgetExceededError(
                f"tenant {envelope.tenant!r} budget exhausted: request costs "
                f"{query.sample_cost()} sample units, "
                f"{tenant.bucket.tokens:.0f} available "
                f"(burst {self._tenant_burst}, rate {self._tenant_rate}/s)"
            )
        return tenant, query

    async def _execute(self, tenant: _Tenant, query, deadline_s: float | None):
        """Run one admitted query; the in-flight count spans the await."""
        self._inflight += 1
        try:
            call = tenant.service.submit_async(query)
            if deadline_s is not None:
                return await asyncio.wait_for(call, timeout=deadline_s)
            return await call
        finally:
            self._inflight -= 1

    def _error_payload(self, error: BaseException) -> tuple[str, str]:
        """Map an execution/admission failure to ``(error_type, message)``."""
        if isinstance(error, (asyncio.TimeoutError, TimeoutError)):
            self._counters.deadline_expired_total += 1
            return "deadline", "deadline expired before the execution finished"
        if isinstance(error, ServiceBudgetExceededError):
            return "budget", str(error)
        if isinstance(error, ServiceClosedError):
            return "closed", str(error)
        if isinstance(error, ServiceOverloadedError):
            return "overloaded", str(error)
        if isinstance(error, ServiceRejectedError):
            return "rejected", str(error)
        if isinstance(error, ReproError):
            return "domain", str(error)
        raise error

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._counters.connections_total += 1
        task = asyncio.get_running_loop().create_task(self._handle(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                first = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                return
            if not first:
                return
            if _HTTP_METHOD.match(first):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_jsonl(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ----------------------------- JSON lines ------------------------- #

    async def _handle_jsonl(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The JSON-lines session: a reader loop feeding an in-order writer.

        The reader parses, admits and *starts* each request, then hands a
        queue item to the writer coroutine, which awaits the items strictly
        in request order and writes one response line each -- so a response
        goes out as soon as it (and everything before it) is ready, while
        requests behind it keep executing concurrently.  The window
        semaphore is acquired by the reader and released by the writer:
        when ``connection_window`` responses are outstanding the reader
        stops *reading the socket*, which is the backpressure contract.
        ``stats`` rides the same queue, so it is a per-connection barrier:
        its counters cover every request answered before it.  A malformed
        line is answered after all pending responses, then the connection
        closes.
        """
        queue: deque[tuple[str, _Envelope | None, object]] = deque()
        arrived = asyncio.Event()  # writer wake-up: queue became non-empty
        window = asyncio.Semaphore(self._connection_window)

        async def writer_loop() -> None:
            while True:
                while not queue:
                    arrived.clear()
                    await arrived.wait()
                kind, envelope, value = queue.popleft()
                if kind == "eof":
                    return
                if kind == "stats":
                    payload = {"ok": True, "op": "stats", "result": self.stats()}
                elif kind == "malformed":
                    await self._write_line(writer, value)
                    return
                elif kind == "refused":
                    error_type, message = value
                    payload = {"ok": False, "op": envelope.op,
                               "error": message, "error_type": error_type}
                else:  # kind == "query": value is the execution task
                    try:
                        result = await value
                    except BaseException as error:  # noqa: BLE001 - mapped below
                        error_type, message = self._error_payload(error)
                        payload = {"ok": False, "op": envelope.op,
                                   "error": message, "error_type": error_type}
                    else:
                        payload = {"ok": True, "op": envelope.op,
                                   "result": to_jsonable(result)}
                    window.release()
                if envelope is not None and envelope.has_id:
                    payload["id"] = envelope.id
                await self._write_line(writer, payload)

        def enqueue(kind: str, envelope: _Envelope | None, value: object) -> None:
            queue.append((kind, envelope, value))
            arrived.set()

        flusher = asyncio.ensure_future(writer_loop())
        try:
            await self._jsonl_read_loop(first, reader, window, flusher, enqueue)
            await flusher
        finally:
            flusher.cancel()
            # A vanished client must not leave orphaned tasks logging
            # "exception was never retrieved": detach and silence them (the
            # underlying executions still finish and warm the pool).
            for kind, _, value in queue:
                if kind == "query":
                    value.cancel()
            for task in (flusher, *(v for k, _, v in queue if k == "query")):
                try:
                    await task
                except BaseException:  # noqa: BLE001 - deliberately silenced
                    pass
            queue.clear()

    async def _jsonl_read_loop(self, first, reader, window, flusher, enqueue) -> None:
        line: bytes | None = first
        while True:
            if line is None:
                read = asyncio.ensure_future(reader.readline())
                # A dead writer (client stopped reading responses, then
                # closed) must abort the session, not deadlock the reader.
                await asyncio.wait({read, flusher}, return_when=asyncio.FIRST_COMPLETED)
                if flusher.done():
                    read.cancel()
                    try:
                        await read
                    except BaseException:  # noqa: BLE001 - connection is over
                        pass
                    return
                try:
                    line = await read
                except (asyncio.LimitOverrunError, ValueError):
                    enqueue("malformed",
                            None, self._malformed_payload("request line too long"))
                    return
            if not line:
                enqueue("eof", None, None)
                return
            text = line.decode("utf-8", errors="replace").strip()
            line = None
            if not text:
                continue
            try:
                request = json.loads(text)
            except json.JSONDecodeError as error:
                enqueue("malformed", None,
                        self._malformed_payload(f"invalid JSON ({error})"))
                return
            if not isinstance(request, dict):
                enqueue("malformed", None,
                        self._malformed_payload("expected a JSON object"))
                return
            try:
                envelope = self._parse_envelope(request)
            except _Malformed as error:
                enqueue("malformed", None, self._malformed_payload(str(error)))
                return
            if envelope.op == "stats":
                enqueue("stats", envelope, None)
                continue
            # Backpressure: hold a window slot before admitting.  The
            # acquire races the writer so a dead client (writer errored
            # out) aborts the session instead of deadlocking the reader.
            acquire = asyncio.ensure_future(window.acquire())
            await asyncio.wait({acquire, flusher}, return_when=asyncio.FIRST_COMPLETED)
            if not acquire.done() or flusher.done():
                acquire.cancel()
                try:
                    await acquire
                except BaseException:  # noqa: BLE001 - connection is over
                    pass
                return
            try:
                tenant, query = self._admit(envelope, request)
            except _Malformed as error:
                window.release()
                enqueue("malformed", None, self._malformed_payload(str(error)))
                return
            except ServiceError as error:
                window.release()
                enqueue("refused", envelope, self._error_payload(error))
                continue
            enqueue("query", envelope,
                    asyncio.ensure_future(self._execute(tenant, query, envelope.deadline_s)))

    async def _write_line(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
        await writer.drain()
        self._counters.responses_total += 1

    def _malformed_payload(self, message: str) -> dict:
        self._counters.malformed_total += 1
        return {"ok": False, "error": f"malformed request: {message}",
                "error_type": "malformed"}

    # ------------------------------- HTTP ----------------------------- #

    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP/1.1: POST /query, GET /stats, GET /healthz."""
        request_line: bytes | None = first
        while True:
            if request_line is None:
                try:
                    request_line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    return
            if not request_line or not request_line.strip():
                return
            self._counters.http_requests_total += 1
            parts = request_line.decode("latin-1").split()
            request_line = None
            if len(parts) != 3:
                await self._http_reply(writer, 400, {
                    "ok": False, "error": "malformed request line",
                    "error_type": "malformed",
                })
                return
            method, path, _version = parts
            headers: dict[str, str] = {}
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            keep_alive = headers.get("connection", "keep-alive").lower() != "close"
            body = b""
            length = headers.get("content-length")
            if length is not None:
                try:
                    size = int(length)
                except ValueError:
                    await self._http_reply(writer, 400, {
                        "ok": False, "error": "invalid Content-Length",
                        "error_type": "malformed",
                    })
                    return
                if size > _READ_LIMIT:
                    await self._http_reply(writer, 413, {
                        "ok": False, "error": "request body too large",
                        "error_type": "malformed",
                    })
                    return
                if size:
                    try:
                        body = await reader.readexactly(size)
                    except asyncio.IncompleteReadError:
                        return
            status, payload = await self._http_route(method, path, body)
            await self._http_reply(writer, status, payload, keep_alive=keep_alive)
            if not keep_alive:
                return

    async def _http_route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /healthz",
                             "error_type": "malformed"}
            return 200, self.health()
        if path == "/stats":
            if method != "GET":
                return 405, {"ok": False, "error": "use GET /stats",
                             "error_type": "malformed"}
            return 200, {"ok": True, "result": self.stats()}
        if path == "/query":
            if method != "POST":
                return 405, {"ok": False, "error": "use POST /query",
                             "error_type": "malformed"}
            return await self._http_query(body)
        return 404, {"ok": False, "error": f"unknown path {path!r}",
                     "error_type": "malformed"}

    async def _http_query(self, body: bytes) -> tuple[int, dict]:
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, self._malformed_payload(f"invalid JSON body ({error})")
        if not isinstance(request, dict):
            return 400, self._malformed_payload("expected a JSON object body")
        try:
            envelope = self._parse_envelope(request)
        except _Malformed as error:
            return 400, self._malformed_payload(str(error))
        if envelope.op == "stats":
            return 200, {"ok": True, "op": "stats", "result": self.stats()}
        try:
            tenant, query = self._admit(envelope, request)
            result = await self._execute(tenant, query, envelope.deadline_s)
        except _Malformed as error:
            return 400, self._malformed_payload(str(error))
        except BaseException as error:  # noqa: BLE001 - mapped below
            error_type, message = self._error_payload(error)
            payload = {"ok": False, "op": envelope.op,
                       "error": message, "error_type": error_type}
            if envelope.has_id:
                payload["id"] = envelope.id
            return _ERROR_STATUS[error_type], payload
        payload = {"ok": True, "op": envelope.op, "result": to_jsonable(result)}
        if envelope.has_id:
            payload["id"] = envelope.id
        return 200, payload

    async def _http_reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool = False,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        self._counters.responses_total += 1


async def serve_forever(graph: SocialGraph, *, echo=print, on_shutdown=None, **kwargs) -> None:
    """Run a :class:`QueryServer` until cancelled (the CLI's --listen loop).

    ``on_shutdown``, when given, receives the final :meth:`QueryServer.stats`
    payload (captured before the tenant services are torn down) instead of
    the default one-line summary through ``echo``.
    """
    async with QueryServer(graph, **kwargs) as server:
        echo(f"listening on {server.host}:{server.port} "
             "(JSON lines or HTTP/1.1; POST /query, GET /stats, GET /healthz)")
        try:
            await asyncio.Event().wait()
        finally:
            stats = server.stats()
            if on_shutdown is not None:
                on_shutdown(stats)
            else:
                echo(f"shutting down: {stats['server']['responses_total']} "
                     "responses served")
