"""Deterministic seeded load generation for the query service.

The ROADMAP's target workload is heavy multi-user traffic repeating a small
set of hot (source, target) questions.  This module reproduces that shape
*deterministically* so throughput and coalesce-rate numbers are
reproducible and CI-gateable:

* the hot query set is derived from the graph with labeled seed derivation
  (:func:`hot_queries`), so the same seed always yields the same queries;
* the schedule is closed-loop: ``num_clients`` clients each issue one
  request per round and wait for the whole wave to complete before the next
  round begins (:func:`generate_schedule` / :meth:`QueryService.submit_many`).
  Which hot query a client issues in a round is a pure function of
  ``derive_seed(seed, "load-round-<r>-client-<c>")`` -- never of timing --
  so the per-wave duplication (and with it the coalesce counters) is exact,
  not a race outcome;
* every per-query result is serialized to canonical JSON
  (:func:`canonical_result`), so two arms -- or a service run and a
  standalone run -- can be compared for *byte* identity, which is the
  pool's bit-identity contract surfaced end to end.

:func:`run_load_benchmark` wires it together: the same schedule is replayed
against a coalescing service and a no-coalescing reference service (fresh
pools, same pool seed), transcripts are asserted byte-identical (optionally
also against standalone library calls), and the wall-clock ratio is
reported as ``coalesce_speedup`` in the ``compare_bench.py`` schema.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, fields

from repro.diffusion.engine import create_engine
from repro.exceptions import ServiceError
from repro.experiments.pair_selection import screen_pmax
from repro.experiments.records import to_jsonable
from repro.graph.social_graph import SocialGraph
from repro.pool.sample_pool import SamplePool
from repro.service.query_service import (
    EvaluateQuery,
    MaximizeQuery,
    PmaxQuery,
    QueryService,
    _percentile,
    execute_query,
)
from repro.utils.rng import RandomSource, derive_rng, ensure_rng
from repro.utils.validation import require_positive_int

__all__ = [
    "LoadResult",
    "candidate_pairs",
    "hot_queries",
    "generate_schedule",
    "canonical_result",
    "query_to_wire",
    "run_load",
    "run_socket_load",
    "run_standalone",
    "run_load_benchmark",
    "emit_load_report",
    "streaming_edge_arrivals",
    "run_streaming_load",
]


def candidate_pairs(
    graph: SocialGraph,
    count: int,
    rng: RandomSource = None,
    min_pmax: float = 0.02,
    screen_samples: int = 200,
    max_attempts: int | None = None,
) -> list[tuple]:
    """Deterministically pick ``count`` hot (source, target) pairs.

    Pairs are distinct, non-friend (the Lemma-2 requirement of the evaluate
    query) and screened to ``pmax >= min_pmax`` so none of the hot queries
    is hopeless.  Selection and screening both consume streams derived from
    ``rng``, so a seed pins the pair set exactly.
    """
    require_positive_int(count, "count")
    generator = ensure_rng(rng)
    engine = create_engine(graph, "python")
    nodes = graph.node_list()
    pairs: list[tuple] = []
    seen: set[tuple] = set()
    attempts_allowed = max_attempts if max_attempts is not None else 500 * count
    attempts = 0
    while len(pairs) < count and attempts < attempts_allowed:
        attempts += 1
        source, target = generator.sample(nodes, 2)
        key = (source, target)
        if key in seen:
            continue
        seen.add(key)
        if graph.has_edge(source, target):
            continue
        if graph.degree(source) == 0 or graph.degree(target) == 0:
            continue
        pmax = screen_pmax(
            graph,
            source,
            target,
            num_samples=screen_samples,
            rng=derive_rng(generator, f"screen-{attempts}"),
            engine=engine,
        )
        if pmax < min_pmax:
            continue
        pairs.append(key)
    if len(pairs) < count:
        raise ServiceError(
            f"only {len(pairs)} of {count} requested hot pairs passed the "
            f"pmax >= {min_pmax} screen after {attempts} attempts; enlarge the "
            "graph or relax min_pmax"
        )
    return pairs


def hot_queries(
    graph: SocialGraph,
    pairs: list[tuple],
    rng: RandomSource = None,
    *,
    eval_samples: int = 800,
    pmax_epsilon: float = 0.25,
    pmax_confidence_n: float = 200.0,
    pmax_max_samples: int = 50_000,
    budget: int = 4,
    maximize_realizations: int = 1_500,
) -> list:
    """The hot query set: one pmax, evaluate and maximize query per pair.

    The evaluate query's invitation is a seeded sample of the graph's users
    plus the target (a plausible "is this invitation good enough?" probe);
    everything is a pure function of ``(graph, pairs, rng)``.
    """
    queries: list = []
    nodes = graph.node_list()
    for index, (source, target) in enumerate(pairs):
        picker = derive_rng(rng, f"hot-eval-{index}")
        width = min(len(nodes), max(8, len(nodes) // 10))
        invitation = frozenset(picker.sample(nodes, width)) | {target}
        queries.append(
            PmaxQuery(
                source=source,
                target=target,
                epsilon=pmax_epsilon,
                confidence_n=pmax_confidence_n,
                max_samples=pmax_max_samples,
            )
        )
        queries.append(
            EvaluateQuery(
                source=source,
                target=target,
                invitation=invitation,
                num_samples=eval_samples,
            )
        )
        queries.append(
            MaximizeQuery(
                source=source,
                target=target,
                budget=budget,
                num_realizations=maximize_realizations,
            )
        )
    return queries


def generate_schedule(hot: list, num_clients: int, rounds: int, seed: int) -> list[list]:
    """The closed-loop schedule: ``rounds`` waves of ``num_clients`` requests.

    Client ``c``'s request in round ``r`` is ``hot[i]`` with ``i`` drawn from
    a generator derived as ``derive_rng(seed, "load-round-<r>-client-<c>")``
    -- a pure function of the labels, independent of execution timing.
    """
    require_positive_int(num_clients, "num_clients")
    require_positive_int(rounds, "rounds")
    if not hot:
        raise ServiceError("the hot query set is empty")
    return [
        [
            hot[derive_rng(seed, f"load-round-{round_}-client-{client}").randrange(len(hot))]
            for client in range(num_clients)
        ]
        for round_ in range(rounds)
    ]


def canonical_result(result: object) -> str:
    """Canonical JSON of a query result (the byte-identity currency)."""
    return json.dumps(to_jsonable(result), sort_keys=True)


@dataclass(frozen=True, slots=True)
class LoadResult:
    """One arm's replay: canonical per-request transcript plus timings."""

    transcript: tuple
    seconds: float
    requests: int
    executed: int
    coalesced: int
    samples_drawn: int
    coalesce_rate: float
    pool_hit_rate: float
    latency_p50: float | None
    latency_p99: float | None


def run_load(service: QueryService, schedule: list[list]) -> LoadResult:
    """Replay a schedule against a service, wave by wave (closed loop)."""
    start = time.perf_counter()
    transcript = tuple(
        tuple(canonical_result(result) for result in service.submit_many(wave))
        for wave in schedule
    )
    seconds = time.perf_counter() - start
    metrics = service.metrics()
    return LoadResult(
        transcript=transcript,
        seconds=seconds,
        requests=metrics.requests,
        executed=metrics.executed,
        coalesced=metrics.coalesced,
        samples_drawn=metrics.samples_drawn,
        coalesce_rate=metrics.coalesce_rate,
        pool_hit_rate=metrics.pool_hit_rate,
        latency_p50=metrics.latency_p50,
        latency_p99=metrics.latency_p99,
    )


def query_to_wire(query) -> dict:
    """The JSON-lines request object for ``query`` (the socket envelope).

    Inverse of the server's ``QUERY_KINDS[op](**fields)`` construction:
    frozensets become sorted lists (JSON has no sets; the query coerces
    them back in ``__post_init__``), everything else ships as-is.
    """
    payload: dict = {"op": query.kind}
    for spec in fields(query):
        value = getattr(query, spec.name)
        if isinstance(value, frozenset):
            value = sorted(value)
        payload[spec.name] = value
    return payload


def run_socket_load(
    graph: SocialGraph,
    schedule: list[list],
    *,
    pool_seed: int,
    engine: str = "python",
    workers: int | str | None = None,
    coalesce: bool = True,
    tenant: str = "default",
) -> LoadResult:
    """Replay a schedule over real TCP connections, wave by wave.

    Starts an in-process :class:`~repro.service.server.QueryServer`, opens
    one socket per schedule column (client) and replays the waves closed
    loop: every client writes its round-``r`` request as one JSON line and
    the wave completes when all responses have arrived.  The transcript
    re-canonicalizes the ``result`` object from each response line, so it
    compares byte-for-byte against the in-process arms and the standalone
    reference -- the bit-identity contract across a process-boundary
    transport.  ``latency_p50``/``latency_p99`` are *client-side* seconds
    (write-to-response, including wire and event-loop time), unlike the
    in-process arms' service-side execution latencies.
    """
    import asyncio

    from repro.service.server import QueryServer

    if not schedule:
        raise ServiceError("the schedule is empty")
    num_clients = len(schedule[0])
    latencies: list[float] = []

    async def _request(streams, query) -> str:
        reader, writer = streams
        line = json.dumps(query_to_wire(query), sort_keys=True).encode("utf-8") + b"\n"
        start = time.perf_counter()
        writer.write(line)
        await writer.drain()
        raw = await reader.readline()
        latencies.append(time.perf_counter() - start)
        if not raw:
            raise ServiceError("server closed the connection mid-schedule")
        response = json.loads(raw)
        if not response.get("ok"):
            raise ServiceError(f"socket request refused: {response!r}")
        return json.dumps(response["result"], sort_keys=True)

    async def _run() -> tuple:
        async with QueryServer(
            graph, engine=engine, workers=workers, seed=pool_seed, coalesce=coalesce
        ) as server:
            clients = [
                await asyncio.open_connection(server.host, server.port)
                for _ in range(num_clients)
            ]
            try:
                start = time.perf_counter()
                waves = []
                for wave in schedule:
                    answers = await asyncio.gather(*(
                        _request(clients[index], query)
                        for index, query in enumerate(wave)
                    ))
                    waves.append(tuple(answers))
                transcript = tuple(waves)
                seconds = time.perf_counter() - start
                # Metrics must be read before aclose() tears the tenant down.
                metrics = server.tenant_service(tenant).metrics()
                return transcript, seconds, metrics
            finally:
                for _, writer in clients:
                    writer.close()

    transcript, seconds, metrics = asyncio.run(_run())
    ordered = sorted(latencies)
    return LoadResult(
        transcript=transcript,
        seconds=seconds,
        requests=metrics.requests,
        executed=metrics.executed,
        coalesced=metrics.coalesced,
        samples_drawn=metrics.samples_drawn,
        coalesce_rate=metrics.coalesce_rate,
        pool_hit_rate=metrics.pool_hit_rate,
        latency_p50=_percentile(ordered, 0.50),
        latency_p99=_percentile(ordered, 0.99),
    )


def run_standalone(graph: SocialGraph, query, pool_seed: int, engine: str = "python") -> str:
    """One query answered without any service: a fresh pool, same seed.

    This is the reference side of the bit-identity contract: the same
    dispatch the service executes (:func:`~repro.service.query_service.execute_query`)
    against a private fresh pool -- no shared cache, no coalescing, no
    concurrency -- must equal the service's answer for the same query.
    """
    pool = SamplePool(create_engine(graph, engine), seed=pool_seed)
    return canonical_result(execute_query(graph, query, pool))


def run_load_benchmark(
    graph: SocialGraph,
    *,
    hot_pairs: int = 2,
    num_clients: int = 48,
    rounds: int = 16,
    seed: int = 2019,
    pool_seed: int = 77,
    engine: str = "python",
    workers: int | str | None = None,
    verify_standalone: bool = True,
    socket_transport: bool = False,
) -> dict:
    """Replay one deterministic workload through both service arms.

    Returns a report in the ``compare_bench.py`` schema whose ``coalesce``
    row carries ``coalesce_speedup`` (wall-clock of the no-coalescing arm
    over the coalescing arm, both on fresh pools with the same seed).
    With ``socket_transport``, the same schedule is additionally replayed
    over real TCP connections (:func:`run_socket_load`, one socket per
    client) in both coalescing flavours; the ``socket`` row carries its own
    ``coalesce_speedup`` (socket arm over socket arm, so the wire overhead
    cancels) plus ``socket_p50_ms``/``socket_p99_ms`` client-side
    latencies.  Raises :class:`~repro.exceptions.ServiceError` if any two
    arms -- or, with ``verify_standalone``, the service and standalone
    calls -- are not byte-identical.
    """
    pairs = candidate_pairs(graph, hot_pairs, rng=derive_rng(seed, "load-pairs"))
    hot = hot_queries(graph, pairs, rng=derive_rng(seed, "load-hot"))
    schedule = generate_schedule(hot, num_clients=num_clients, rounds=rounds, seed=seed)

    arms: dict[str, LoadResult] = {}
    for name, coalesce in (("no-coalesce", False), ("coalesce", True)):
        with QueryService(
            graph, engine=engine, workers=workers, seed=pool_seed, coalesce=coalesce
        ) as service:
            arms[name] = run_load(service, schedule)

    if arms["coalesce"].transcript != arms["no-coalesce"].transcript:
        raise ServiceError("coalesced results diverged from independent execution")
    if socket_transport:
        for name, coalesce in (("socket-no-coalesce", False), ("socket", True)):
            arms[name] = run_socket_load(
                graph, schedule, pool_seed=pool_seed, engine=engine,
                workers=workers, coalesce=coalesce,
            )
        for socket_name, inproc_name in (
            ("socket", "coalesce"), ("socket-no-coalesce", "no-coalesce"),
        ):
            if arms[socket_name].transcript != arms[inproc_name].transcript:
                raise ServiceError(
                    f"the {socket_name} transcript diverged from the "
                    f"in-process {inproc_name} arm"
                )
    if verify_standalone:
        for query in {query for wave in schedule for query in wave}:
            expected = run_standalone(graph, query, pool_seed, engine=engine)
            observed = _transcript_lookup(schedule, arms["coalesce"].transcript, query)
            if expected != observed:
                raise ServiceError(
                    f"service answer for {query!r} diverged from the standalone call"
                )

    speedups = {
        "no-coalesce": 1.0,
        "coalesce": round(arms["no-coalesce"].seconds / arms["coalesce"].seconds, 2),
    }
    if socket_transport:
        speedups["socket-no-coalesce"] = 1.0
        speedups["socket"] = round(
            arms["socket-no-coalesce"].seconds / arms["socket"].seconds, 2
        )
    results = {}
    for name, arm in arms.items():
        results[name] = {
            "seconds": round(arm.seconds, 4),
            "requests": arm.requests,
            "executed": arm.executed,
            "coalesced": arm.coalesced,
            "paths_drawn": arm.samples_drawn,
            "coalesce_rate": round(arm.coalesce_rate, 4),
            "pool_hit_rate": round(arm.pool_hit_rate, 4),
            "latency_p50": None if arm.latency_p50 is None else round(arm.latency_p50, 6),
            "latency_p99": None if arm.latency_p99 is None else round(arm.latency_p99, 6),
            "coalesce_speedup": speedups[name],
        }
    if socket_transport:
        # Only the coalescing socket row carries the CI-gated wire latency
        # (one gated row keeps the drift gate's flake surface minimal).
        results["socket"]["socket_p50_ms"] = round(arms["socket"].latency_p50 * 1000.0, 3)
        results["socket"]["socket_p99_ms"] = round(arms["socket"].latency_p99 * 1000.0, 3)
    return {
        "benchmark": "service_load",
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "workload": {
            "hot_pairs": hot_pairs,
            "hot_queries": len(hot),
            "num_clients": num_clients,
            "rounds": rounds,
            "seed": seed,
            "pool_seed": pool_seed,
            "engine": engine,
            "workers": workers if workers is None else str(workers),
            "socket_transport": socket_transport,
        },
        "bit_identical": True,
        "results": results,
    }


def emit_load_report(
    report: dict,
    output=None,
    min_speedup: float | None = None,
    min_socket_speedup: float | None = None,
    max_socket_p99_ms: float | None = None,
) -> int:
    """Write, print and (optionally) gate a load-benchmark report.

    The shared tail of ``repro bench-load`` and
    ``benchmarks/bench_service_load.py``: writes the canonical JSON to
    ``output`` (if given), prints the report and the speedup summary, and
    returns a process exit code -- 1 with a stderr diagnostic when the
    coalescing arm falls short of ``min_speedup``, the socket arm falls
    short of ``min_socket_speedup``, or the socket arm's client-side p99
    exceeds the ``max_socket_p99_ms`` absolute ceiling; 0 otherwise.
    The socket arm has its own (lower) speedup bar because the wire and
    event-loop overhead is paid per *request*, coalesced or not, which
    dilutes the execution savings the in-process arms see undiluted.
    Asking for a socket gate without a socket arm in the report fails
    rather than passing vacuously.
    """
    import sys
    from pathlib import Path

    if output is not None:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    failed = False
    speedup = report["results"]["coalesce"]["coalesce_speedup"]
    print(f"\ncoalesce speedup: {speedup}x over the no-coalescing arm "
          "(bit-identical results, standalone-verified)")
    socket_row = report["results"].get("socket")
    if socket_row is not None:
        print(f"socket transport: {socket_row['coalesce_speedup']}x coalesce speedup, "
              f"client-side p99 {socket_row['socket_p99_ms']} ms "
              "(byte-identical to the in-process arms)")
    if min_speedup is not None and speedup < min_speedup:
        print(f"FAIL: speedup {speedup}x below required {min_speedup}x", file=sys.stderr)
        failed = True
    if min_socket_speedup is not None:
        if socket_row is None:
            print("FAIL: --min-socket-speedup given but the report has no socket arm",
                  file=sys.stderr)
            failed = True
        elif socket_row["coalesce_speedup"] < min_socket_speedup:
            print(f"FAIL: socket speedup {socket_row['coalesce_speedup']}x below "
                  f"required {min_socket_speedup}x", file=sys.stderr)
            failed = True
    if max_socket_p99_ms is not None:
        if socket_row is None:
            print("FAIL: --max-socket-p99-ms given but the report has no socket arm",
                  file=sys.stderr)
            failed = True
        elif socket_row["socket_p99_ms"] > max_socket_p99_ms:
            print(f"FAIL: socket p99 {socket_row['socket_p99_ms']} ms above the "
                  f"{max_socket_p99_ms} ms ceiling", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def streaming_edge_arrivals(
    graph: SocialGraph,
    round_index: int,
    count: int,
    seed: int,
    nodes: list | None = None,
) -> list[tuple]:
    """Deterministic edge arrivals for one round of a streaming workload.

    Returns up to ``count`` concrete ``(u, v, w_uv, w_vu)`` tuples -- new
    friendships between currently non-adjacent members of ``nodes``
    (default: all users), with each directional familiarity set to half the
    receiving node's remaining incoming-weight headroom (capped at 0.2), so
    applying them never violates the model's ``sum_u w(u, v) <= 1``
    normalization.  A node pair drawn with no headroom arrives with weight
    0.0 -- a brand-new friendship with no familiarity yet.  The tuples are
    a pure function of ``(graph state, round_index, seed, nodes)``;
    recording them lets a verification arm replay the exact same topology
    evolution on a fresh copy of the graph.
    """
    require_positive_int(count, "count")
    picker = derive_rng(seed, f"stream-round-{round_index}")
    population = list(nodes) if nodes is not None else graph.node_list()
    if len(population) < 2:
        raise ServiceError("streaming arrivals need at least two candidate nodes")
    arrivals: list[tuple] = []
    taken: set[tuple] = set()
    for _ in range(50 * count):
        if len(arrivals) >= count:
            break
        u, v = picker.sample(population, 2)
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if key in taken or graph.has_edge(u, v):
            continue
        taken.add(key)
        w_uv = min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(v)))
        w_vu = min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(u)))
        arrivals.append((u, v, w_uv, w_vu))
    return arrivals


def run_streaming_load(
    graph: SocialGraph,
    *,
    hot_pairs: int = 2,
    num_clients: int = 8,
    rounds: int = 4,
    mutations_per_round: int = 1,
    seed: int = 2019,
    pool_seed: int = 77,
    engine: str = "python",
    mutation_nodes: list | None = None,
    verify: bool = True,
) -> dict:
    """A streaming-updates workload: edge arrivals interleaved with queries.

    Each round first applies a deterministic batch of edge arrivals
    (:func:`streaming_edge_arrivals`, optionally restricted to
    ``mutation_nodes``) to the *live* graph, then replays one query wave
    through a long-lived :class:`~repro.service.query_service.QueryService`
    -- so the service's shared sample pool sees the mutations exactly the
    way a production deployment would: mid-traffic, between waves.  The
    pool's delta-scoped invalidation (DESIGN.md §10) decides per key
    whether the cached stream survives; the report's ``streaming`` row
    carries the cumulative ``retained_hit_rate`` (retained / touched keys
    across all re-snapshots) next to the usual load counters.

    With ``verify`` (the default), every wave's answers are re-derived
    standalone -- a fresh pool on a fresh graph copy that replayed the same
    arrivals -- and compared byte-for-byte: retention must be
    indistinguishable from cold re-draws on the mutated topology.
    """
    pairs = candidate_pairs(graph, hot_pairs, rng=derive_rng(seed, "load-pairs"))
    hot = hot_queries(graph, pairs, rng=derive_rng(seed, "load-hot"))
    schedule = generate_schedule(hot, num_clients=num_clients, rounds=rounds, seed=seed)
    base_graph = graph.copy() if verify else None

    applied: list[list[tuple]] = []
    start = time.perf_counter()
    with QueryService(graph, engine=engine, seed=pool_seed) as service:
        transcript = []
        for round_index, wave in enumerate(schedule):
            arrivals = streaming_edge_arrivals(
                graph, round_index, mutations_per_round, seed, mutation_nodes
            )
            for u, v, w_uv, w_vu in arrivals:
                graph.add_edge(u, v, w_uv, w_vu)
            applied.append(arrivals)
            transcript.append(
                tuple(canonical_result(result) for result in service.submit_many(wave))
            )
        seconds = time.perf_counter() - start
        stats = service.pool.stats()
        metrics = service.metrics()

    bit_identical = True
    if verify:
        replay = base_graph
        for round_index, wave in enumerate(schedule):
            for u, v, w_uv, w_vu in applied[round_index]:
                replay.add_edge(u, v, w_uv, w_vu)
            for query, answer in zip(wave, transcript[round_index]):
                expected = run_standalone(replay, query, pool_seed, engine=engine)
                if expected != answer:
                    raise ServiceError(
                        f"streaming answer for {query!r} in round {round_index} "
                        "diverged from a cold re-draw on the same topology"
                    )

    touched = stats.retained_keys + stats.flushed_keys
    retained_hit_rate = stats.retained_keys / touched if touched else 1.0
    return {
        "benchmark": "service_streaming_load",
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "workload": {
            "hot_pairs": hot_pairs,
            "hot_queries": len(hot),
            "num_clients": num_clients,
            "rounds": rounds,
            "mutations_per_round": mutations_per_round,
            "seed": seed,
            "pool_seed": pool_seed,
            "engine": engine,
        },
        "bit_identical": bit_identical,
        "results": {
            "streaming": {
                "seconds": round(seconds, 4),
                "requests": metrics.requests,
                "paths_drawn": metrics.samples_drawn,
                "pool_hit_rate": round(metrics.pool_hit_rate, 4),
                "invalidations": stats.invalidations,
                "retained_keys": stats.retained_keys,
                "flushed_keys": stats.flushed_keys,
                "retained_hit_rate": round(retained_hit_rate, 4),
            },
        },
    }


def _transcript_lookup(schedule: list[list], transcript: tuple, query) -> str:
    """The recorded canonical answer of ``query`` (first occurrence)."""
    for wave, answers in zip(schedule, transcript):
        for request, answer in zip(wave, answers):
            if request == query:
                return answer
    raise ServiceError(f"query {query!r} does not appear in the schedule")
