"""Plain fixed-budget Monte Carlo estimation.

Used by the experiment harness wherever a simple mean over a fixed number
of simulations suffices (estimating ``f(I)`` of a candidate invitation set,
screening (s, t) pairs, ...).  The adaptive, accuracy-guaranteed estimator
used inside RAF is in :mod:`repro.estimation.stopping_rule`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive_int

__all__ = [
    "MonteCarloResult",
    "indicator_batch_sum",
    "monte_carlo_mean",
    "monte_carlo_mean_batched",
]


def indicator_batch_sum(values) -> int | None:
    """Exact integer sum of a 0/1 indicator byte batch, else ``None``.

    The engines' columnar reductions hand the estimators ``bytes`` of 0/1
    type/coverage indicators; for those, integer summation is exact, so a
    whole batch can be folded at once with a result identical to
    per-element float folding.  Returns ``None`` for anything that is not
    such a batch (non-bytes, or bytes with values outside {0, 1} -- the
    caller's per-element path then owns validation), so both batched
    estimators share one definition of the fast-path contract.
    """
    if isinstance(values, (bytes, bytearray)) and (not values or max(values) <= 1):
        return sum(values)
    return None


@dataclass(frozen=True, slots=True)
class MonteCarloResult:
    """The outcome of a fixed-budget Monte Carlo estimation.

    Attributes
    ----------
    mean:
        The sample mean.
    num_samples:
        Number of draws used.
    variance:
        The (biased, population-style) sample variance; 0 for a single draw.
    """

    mean: float
    num_samples: int
    variance: float

    @property
    def std_error(self) -> float:
        """Standard error of the mean."""
        if self.num_samples == 0:
            return float("inf")
        return math.sqrt(self.variance / self.num_samples)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval around the mean."""
        half = z * self.std_error
        return (self.mean - half, self.mean + half)


def monte_carlo_mean(
    sampler: Callable[[], float],
    num_samples: int,
    rng: RandomSource = None,
) -> MonteCarloResult:
    """Estimate ``E[X]`` by averaging ``num_samples`` calls to ``sampler``.

    The ``rng`` argument is accepted for interface symmetry with the other
    estimators; samplers that need randomness should close over their own
    generator (typically derived from the same seed), since the sampler
    signature takes no arguments.
    """
    require_positive_int(num_samples, "num_samples")
    ensure_rng(rng)  # validates the argument even though it is unused here
    total = 0.0
    total_sq = 0.0
    for _ in range(num_samples):
        value = float(sampler())
        total += value
        total_sq += value * value
    mean = total / num_samples
    variance = max(total_sq / num_samples - mean * mean, 0.0)
    return MonteCarloResult(mean=mean, num_samples=num_samples, variance=variance)


def monte_carlo_mean_batched(
    batch_sampler: Callable[[int], Sequence[float]],
    num_samples: int,
    batch_size: int = 8192,
) -> MonteCarloResult:
    """Estimate ``E[X]`` from a batched sampler, drawing in bounded chunks.

    The batched counterpart of :func:`monte_carlo_mean` for samplers that
    amortize per-call overhead over whole batches (the reverse-sampling
    engines).  Exactly ``num_samples`` draws are requested in total.
    """
    require_positive_int(num_samples, "num_samples")
    require_positive_int(batch_size, "batch_size")
    total = 0.0
    total_sq = 0.0
    remaining = num_samples
    while remaining > 0:
        size = min(batch_size, remaining)
        values = batch_sampler(size)
        batch_sum = indicator_batch_sum(values)
        if batch_sum is not None:
            # Indicator batch: v² == v, so both sums are the same integer.
            total += batch_sum
            total_sq += batch_sum
        else:
            for value in values:
                value = float(value)
                total += value
                total_sq += value * value
        remaining -= size
    mean = total / num_samples
    variance = max(total_sq / num_samples - mean * mean, 0.0)
    return MonteCarloResult(mean=mean, num_samples=num_samples, variance=variance)
