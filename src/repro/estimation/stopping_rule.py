"""The Dagum–Karp–Luby–Ross stopping-rule estimator (Alg. 2 / Lemma 3).

The paper estimates ``pmax = E[y(ĝ)]`` -- the probability that a random
realization is type-1 -- with the *stopping rule* of Dagum et al. (2000):
keep drawing i.i.d. samples ``X_i ∈ [0, 1]`` until their running sum
reaches the threshold

    Υ = 1 + 4 (e − 2) (1 + ε) ln(2/δ) / ε²,

then output ``Υ / i`` where ``i`` is the number of samples consumed.  The
output is within relative error ``ε`` of the true mean with probability at
least ``1 − δ``, using ``O(Υ / μ)`` samples in expectation.

Note on the paper's Alg. 2: it writes ``ln(2/N)`` where ``N`` is the
confidence parameter with failure probability ``1/N``; that expression is
negative for ``N > 2`` and is a typo for ``ln(2N) = ln(2/δ)``, which is
what Dagum et al. prescribe and what is implemented here (recorded in
DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.estimation.monte_carlo import indicator_batch_sum
from repro.exceptions import EstimationError
from repro.utils.validation import require, require_positive, require_positive_int

__all__ = [
    "StoppingRuleResult",
    "stopping_rule_threshold",
    "stopping_rule_estimate",
    "stopping_rule_estimate_batched",
    "expected_sample_bound",
]

#: Euler's number minus 2, the constant appearing in the stopping rule.
_E_MINUS_2 = math.e - 2.0


@dataclass(frozen=True, slots=True)
class StoppingRuleResult:
    """Output of the stopping-rule estimator.

    Attributes
    ----------
    estimate:
        The ``(ε, δ)``-approximation of the mean.
    num_samples:
        How many samples the rule consumed.
    threshold:
        The stopping threshold Υ that was used.
    epsilon, delta:
        The requested accuracy and failure probability.
    """

    estimate: float
    num_samples: int
    threshold: float
    epsilon: float
    delta: float


def stopping_rule_threshold(epsilon: float, delta: float) -> float:
    """Compute the stopping threshold Υ(ε, δ) = 1 + 4(e−2)(1+ε)ln(2/δ)/ε²."""
    require_positive(epsilon, "epsilon")
    require(epsilon <= 1.0, "epsilon must be at most 1")
    require(0.0 < delta < 1.0, "delta must lie in (0, 1)")
    return 1.0 + 4.0 * _E_MINUS_2 * (1.0 + epsilon) * math.log(2.0 / delta) / (epsilon**2)


def expected_sample_bound(epsilon: float, delta: float, mean: float) -> float:
    """The asymptotic sample-count bound ``l0`` of Lemma 3 (Eq. 6).

    ``l0 = (2 + ...)·ln(2/δ)... / (ε² · μ)`` -- written here exactly as the
    paper states it, with ``N = 1/δ``: the number of simulations is
    asymptotically ``(ε² + 4(e−2)(1+ε) ln(N/2)) / (ε² · pmax)``.
    """
    require_positive(epsilon, "epsilon")
    require(0.0 < delta < 1.0, "delta must lie in (0, 1)")
    require_positive(mean, "mean")
    capital_n = 1.0 / delta
    numerator = epsilon**2 + 4.0 * _E_MINUS_2 * (1.0 + epsilon) * math.log(max(capital_n / 2.0, 1.0 + 1e-12))
    return numerator / (epsilon**2 * mean)


def stopping_rule_estimate(
    sampler: Callable[[], float],
    epsilon: float,
    delta: float,
    max_samples: int | None = None,
) -> StoppingRuleResult:
    """Run the stopping rule on an i.i.d. ``[0, 1]``-valued sampler.

    Parameters
    ----------
    sampler:
        A zero-argument callable returning one sample in ``[0, 1]``.  For
        the paper's Alg. 2 this draws a random realization and returns its
        type indicator ``y(ĝ)``.
    epsilon:
        Target relative error (``0 < ε ≤ 1``).
    delta:
        Failure probability (the paper's ``1/N``).
    max_samples:
        Optional hard cap.  The stopping rule needs ``Θ(Υ/μ)`` samples, so
        a vanishing mean makes it run arbitrarily long; a cap turns that
        into an :class:`EstimationError` instead of a hang.  ``None`` means
        no cap.

    Raises
    ------
    EstimationError
        If ``max_samples`` draws were consumed before the threshold was
        reached, or if a sample falls outside ``[0, 1]``.
    """
    threshold = stopping_rule_threshold(epsilon, delta)
    if max_samples is not None:
        require_positive_int(max_samples, "max_samples")
    total = 0.0
    count = 0
    while total < threshold:
        if max_samples is not None and count >= max_samples:
            raise EstimationError(
                f"stopping rule did not terminate within {max_samples} samples "
                f"(accumulated {total:.2f} of threshold {threshold:.2f}); the mean being "
                "estimated is likely (near) zero"
            )
        value = float(sampler())
        if value < 0.0 or value > 1.0:
            raise EstimationError(f"stopping-rule samples must lie in [0, 1], got {value}")
        total += value
        count += 1
    return StoppingRuleResult(
        estimate=threshold / count,
        num_samples=count,
        threshold=threshold,
        epsilon=epsilon,
        delta=delta,
    )


def stopping_rule_estimate_batched(
    batch_sampler: Callable[[int], Sequence[float]],
    epsilon: float,
    delta: float,
    max_samples: int | None = None,
    initial_batch: int = 64,
    batch_growth: float = 2.0,
    max_batch: int = 65536,
    warm_start: Iterable[float] | None = None,
) -> StoppingRuleResult:
    """Run the stopping rule on a *batched* sampler.

    Identical in output to :func:`stopping_rule_estimate` when the batched
    sampler draws from the same i.i.d. stream: samples are consumed in
    order and the rule stops at exactly the same sample index, so the
    estimate and ``num_samples`` match the one-at-a-time rule.  Batching
    exists so engine-backed samplers (which amortize per-call overhead over
    whole batches of reverse-sampled realizations) can drive Alg. 2: batch
    sizes grow geometrically from ``initial_batch`` up to ``max_batch``,
    and are clipped so no more than ``max_samples`` draws are requested in
    total.

    Parameters
    ----------
    batch_sampler:
        Callable mapping a batch size ``k`` to ``k`` samples in ``[0, 1]``.
    epsilon, delta, max_samples:
        As in :func:`stopping_rule_estimate`.
    initial_batch, batch_growth, max_batch:
        Geometric chunk schedule for the draws.
    warm_start:
        Already-materialized leading samples of the *same* stream the
        batched sampler continues (e.g. the cached prefix of a
        :class:`~repro.pool.SamplePool` key).  They are consumed first --
        lazily, one at a time, under exactly the per-sample semantics of
        the main loop, so a generator is fine and nothing past the halting
        sample is forced -- and a warm-started run returns the same result
        as a cold run over the same stream: the rule stops at the same
        sample index either way; only the number of *fresh* draws differs.
        ``batch_sampler`` must yield the samples *after* the warm prefix.

    Raises
    ------
    EstimationError
        If ``max_samples`` draws were consumed before the threshold was
        reached, or if a sample falls outside ``[0, 1]``.
    """
    threshold = stopping_rule_threshold(epsilon, delta)
    require_positive_int(initial_batch, "initial_batch")
    require(batch_growth >= 1.0, "batch_growth must be at least 1")
    require_positive_int(max_batch, "max_batch")
    if max_samples is not None:
        require_positive_int(max_samples, "max_samples")
    total = 0.0
    count = 0

    def out_of_samples() -> EstimationError:
        return EstimationError(
            f"stopping rule did not terminate within {max_samples} samples "
            f"(accumulated {total:.2f} of threshold {threshold:.2f}); the mean being "
            "estimated is likely (near) zero"
        )

    def consume(values) -> bool:
        """Fold a run of samples into the running sum; True when done."""
        nonlocal total, count
        # Indicator batches (the engines' columnar 0/1 bytes): integer sums
        # are exact, so folding the whole batch at once leaves the running
        # total -- and therefore the halting index -- identical to
        # per-element folding.  A batch that would cross the threshold
        # falls through to the loop to stop at the exact sample (nothing
        # was consumed yet in that case).
        batch_sum = indicator_batch_sum(values)
        if batch_sum is not None and total + batch_sum < threshold:
            total += batch_sum
            count += len(values)
            return False
        for value in values:
            value = float(value)
            if value < 0.0 or value > 1.0:
                raise EstimationError(f"stopping-rule samples must lie in [0, 1], got {value}")
            total += value
            count += 1
            if total >= threshold:
                return True
        return False

    stopped = False
    if warm_start is not None:
        for value in warm_start:
            stopped = consume((value,))
            if stopped:
                break
            if max_samples is not None and count >= max_samples:
                raise out_of_samples()

    batch = initial_batch
    while not stopped:
        if max_samples is not None and count >= max_samples:
            raise out_of_samples()
        size = batch if max_samples is None else min(batch, max_samples - count)
        stopped = consume(batch_sampler(size))
        batch = min(int(batch * batch_growth), max_batch)
    return StoppingRuleResult(
        estimate=threshold / count,
        num_samples=count,
        threshold=threshold,
        epsilon=epsilon,
        delta=delta,
    )
