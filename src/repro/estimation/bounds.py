"""Concentration bounds and sample-size formulas used by the analysis.

The RAF analysis rests on the multiplicative Chernoff bound of Eq. (9),

    Pr[|ΣX_i − lμ| ≥ δ·lμ] ≤ 2 exp(− lμδ² / (2 + δ)),

a union bound over the 2^n invitation sets, and the resulting realization
count ``l*`` of Eq. (16).  These formulas are exposed directly so tests and
ablations can compare the theoretical prescription with the practical
sample counts actually needed (Sec. IV-E / Fig. 6).
"""

from __future__ import annotations

import math

from repro.utils.validation import require, require_positive, require_positive_int

__all__ = [
    "chernoff_bound",
    "chernoff_sample_size",
    "hoeffding_bound",
    "hoeffding_sample_size",
    "union_bound_failure",
    "theoretical_realization_count",
]


def chernoff_bound(num_samples: int, mean: float, delta: float) -> float:
    """Upper bound on ``Pr[|ΣX_i − lμ| ≥ δlμ]`` from Eq. (9), clipped to 1."""
    require_positive_int(num_samples, "num_samples")
    require_positive(mean, "mean")
    require_positive(delta, "delta")
    exponent = -num_samples * mean * delta * delta / (2.0 + delta)
    return min(1.0, 2.0 * math.exp(exponent))


def chernoff_sample_size(mean: float, delta: float, failure_probability: float) -> int:
    """Smallest ``l`` for which the Eq. (9) bound drops below the failure probability."""
    require_positive(mean, "mean")
    require_positive(delta, "delta")
    require(0.0 < failure_probability < 1.0, "failure_probability must lie in (0, 1)")
    needed = (2.0 + delta) * math.log(2.0 / failure_probability) / (mean * delta * delta)
    return max(1, math.ceil(needed))


def hoeffding_bound(num_samples: int, tolerance: float) -> float:
    """Two-sided Hoeffding bound ``2 exp(−2lt²)`` for [0,1]-valued samples."""
    require_positive_int(num_samples, "num_samples")
    require_positive(tolerance, "tolerance")
    return min(1.0, 2.0 * math.exp(-2.0 * num_samples * tolerance * tolerance))


def hoeffding_sample_size(tolerance: float, failure_probability: float) -> int:
    """Samples needed for an additive ``tolerance`` error with the given confidence."""
    require_positive(tolerance, "tolerance")
    require(0.0 < failure_probability < 1.0, "failure_probability must lie in (0, 1)")
    needed = math.log(2.0 / failure_probability) / (2.0 * tolerance * tolerance)
    return max(1, math.ceil(needed))


def union_bound_failure(per_event_failure: float, num_events: int) -> float:
    """Total failure probability after a union bound over ``num_events`` events."""
    require(per_event_failure >= 0.0, "per_event_failure must be non-negative")
    require_positive_int(num_events, "num_events")
    return min(1.0, per_event_failure * num_events)


def theoretical_realization_count(
    num_nodes: int,
    confidence_n: float,
    epsilon_one: float,
    epsilon_zero: float,
    pmax_estimate: float,
) -> int:
    """The realization count ``l*`` of Eq. (16).

    ``l* = (ln 2 + ln N + n ln 2) · (2 + ε1(1 − ε0)) / (ε1²(1 − ε0)²·p*max)``

    This is the paper's worst-case prescription: it carries the ``n ln 2``
    term from the union bound over all 2^n invitation sets, which makes it
    astronomically conservative for realistic graphs (see DESIGN.md and the
    sampling ablation).  ``ε0`` must be strictly less than 1 for the bound
    to be meaningful.
    """
    require_positive_int(num_nodes, "num_nodes")
    require_positive(confidence_n, "confidence_n")
    require_positive(epsilon_one, "epsilon_one")
    require(0.0 <= epsilon_zero < 1.0, "epsilon_zero must lie in [0, 1) for Eq. (16)")
    require_positive(pmax_estimate, "pmax_estimate")
    log_term = math.log(2.0) + math.log(confidence_n) + num_nodes * math.log(2.0)
    numerator = log_term * (2.0 + epsilon_one * (1.0 - epsilon_zero))
    denominator = (epsilon_one**2) * ((1.0 - epsilon_zero) ** 2) * pmax_estimate
    return max(1, math.ceil(numerator / denominator))
