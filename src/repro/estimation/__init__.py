"""Monte Carlo estimation utilities: stopping rules and concentration bounds.

The RAF algorithm needs two statistical ingredients:

* an ``(ε, δ)``-relative-error estimate of ``pmax`` (Alg. 2), obtained with
  the Dagum–Karp–Luby–Ross stopping rule
  (:mod:`repro.estimation.stopping_rule`), and
* a sample-size bound ``l*`` (Eq. 16) derived from the Chernoff bound and a
  union bound over invitation sets (:mod:`repro.estimation.bounds`).

:mod:`repro.estimation.monte_carlo` provides the plain fixed-budget
estimator shared by the experiment harness.
"""

from repro.estimation.monte_carlo import MonteCarloResult, monte_carlo_mean
from repro.estimation.stopping_rule import (
    StoppingRuleResult,
    expected_sample_bound,
    stopping_rule_estimate,
    stopping_rule_threshold,
)
from repro.estimation.bounds import (
    chernoff_bound,
    chernoff_sample_size,
    hoeffding_bound,
    hoeffding_sample_size,
    theoretical_realization_count,
    union_bound_failure,
)

__all__ = [
    "MonteCarloResult",
    "monte_carlo_mean",
    "StoppingRuleResult",
    "stopping_rule_estimate",
    "stopping_rule_threshold",
    "expected_sample_bound",
    "chernoff_bound",
    "chernoff_sample_size",
    "hoeffding_bound",
    "hoeffding_sample_size",
    "union_bound_failure",
    "theoretical_realization_count",
]
