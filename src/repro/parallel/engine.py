"""Deterministic multi-process fan-out for the sampling engines.

The whole RAF pipeline consumes i.i.d. reverse-sampled realizations -- the
stopping-rule ``pmax`` estimator (Alg. 2), the ``l`` realizations of the
sampling framework (Alg. 3), pair screening and the Lemma-2 Monte Carlo
evaluation -- so it is embarrassingly parallel at the sampling layer.
:class:`ParallelEngine` adds that parallelism *behind* the
:class:`~repro.diffusion.engine.SamplingEngine` protocol: it wraps any base
engine and fans each ``sample_paths`` request out over a ``multiprocessing``
worker pool, so every layer above (estimation, core, experiments, CLI)
parallelizes without code changes.

Determinism contract (see DESIGN.md §3):

* A request for ``count`` paths is split into fixed-size chunks of
  ``chunk_size`` paths.  The chunk layout depends only on ``count`` and
  ``chunk_size`` -- never on the worker count.
* Chunk ``i`` draws from its own generator, rebuilt from an integer seed
  derived from the caller's ``rng`` via SHA-256 label mixing
  (:func:`repro.utils.rng.derive_seed` with label ``"parallel-chunk-<i>"``).
  Seeds are derived sequentially in chunk order, so the caller's stream is
  consumed identically regardless of how chunks are later scheduled.
* Results are concatenated in chunk order, so the merged path list -- and
  therefore everything downstream, including the exact sample index at
  which the stopping rule halts -- is bit-stable across runs and identical
  for ``workers=1`` and ``workers=N``.

Execution falls back to an in-process loop (same chunking, same seeds, same
results) when ``workers <= 1``, when the request is a single chunk, or when
the platform lacks the ``fork`` start method (workers inherit the compiled
graph by forking; shipping it by pickle to spawned processes would cost more
than it saves).  The pool is created lazily on first parallel dispatch,
reused across calls, and torn down when the engine is closed or collected.

Transport (DESIGN.md §7): with a batch-native base engine, finished
columnar chunks travel back from the workers either pickled through the
result pipe (``transport="pickle"``) or as zero-copy shared-memory
segments (``transport="shm"``, the default where available): the worker
publishes the columns once into a named segment and ships only a tiny
descriptor; the parent adopts views over the segment with a ref-counted,
unlink-on-release lifecycle (:mod:`repro.parallel.shm`).  The transport
never changes results -- the adopted columns are byte-for-byte the
pickled ones -- and degrades per-chunk to pickling whenever a segment
cannot be created.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import time
import weakref
from typing import Iterable

from repro.diffusion.engine import SamplingEngine, TargetPath, collect_type1_paths
from repro.diffusion.path_batch import PathBatch
from repro.exceptions import EngineError, WorkerCrashError
from repro.faults import SITE_SHM_PUBLISH, SITE_SLOW_CHUNK, SITE_WORKER_KILL, FaultPlan
from repro.graph.compiled import CompiledGraph
from repro.parallel import shm as shm_transport
from repro.parallel.shm import ShmBatchRef, resolve_transport
from repro.types import NodeId
from repro.utils.rng import RandomSource, derive_seed, ensure_rng
from repro.utils.validation import require_non_negative_int, require_positive_int

__all__ = [
    "WORKERS_AUTO",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_CHUNK_RETRIES",
    "FAILURE_MODES",
    "ParallelEngine",
    "fork_available",
    "resolve_worker_count",
    "maybe_parallel",
    "sample_type1_indicators",
    "sample_covered_indicators",
    "collect_type1",
]

#: CLI/config sentinel meaning "one worker per available CPU".
WORKERS_AUTO = "auto"

#: Paths per chunk.  Fixed (worker-count independent) so the chunk layout --
#: and with it every derived seed -- never depends on the degree of
#: parallelism.  Large enough to amortize task pickling, small enough that a
#: typical stopping-rule batch still spreads over several workers.
DEFAULT_CHUNK_SIZE = 2048

#: How many respawn-and-retry rounds a lost chunk gets before the engine
#: gives up (raises :class:`~repro.exceptions.WorkerCrashError`) or degrades
#: to serial execution, per ``on_worker_failure``.
DEFAULT_CHUNK_RETRIES = 2

#: What a dispatch does when a worker process dies mid-chunk: ``"retry"``
#: re-derives the lost chunks on a respawned pool up to the retry budget and
#: then raises; ``"serial"`` retries the same way but degrades to in-process
#: execution (slower, never wrong) when the budget runs out; ``"raise"``
#: fails fast on the first crash.
FAILURE_MODES = ("retry", "serial", "raise")

#: How long (seconds) a pending chunk future is polled before the worker
#: processes are re-checked for deaths.  Latency-only: detection happens
#: within one interval, results never depend on it.
_CRASH_POLL_SECONDS = 0.05


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_worker_count(workers: int | str | None) -> int | None:
    """Normalize a worker-count argument.

    ``None`` means "no parallel wrapper" and is returned unchanged;
    ``"auto"`` resolves to the CPU count; a positive integer passes through.
    Anything else raises :class:`~repro.exceptions.EngineError` (strings) or
    ``ValueError``/``TypeError`` (bad integers).
    """
    if workers is None:
        return None
    if isinstance(workers, str):
        if workers.lower() == WORKERS_AUTO:
            return max(1, os.cpu_count() or 1)
        raise EngineError(
            f"workers must be a positive integer or {WORKERS_AUTO!r}, got {workers!r}"
        )
    require_positive_int(workers, "workers")
    return int(workers)


# --------------------------------------------------------------------------- #
# Worker-process plumbing
# --------------------------------------------------------------------------- #

#: The base engine of the owning ParallelEngine, inherited by pool workers at
#: fork time through the pool initializer (no pickling of the compiled graph).
_WORKER_ENGINE: SamplingEngine | None = None

#: Result transport for columnar chunks ("pickle" or "shm") and the parent's
#: shared-memory name prefix, both set by the pool initializer at fork time.
_WORKER_TRANSPORT: str = "pickle"
_WORKER_SHM_PREFIX: str | None = None


def _init_worker(
    engine: SamplingEngine, transport: str = "pickle", shm_prefix: "str | None" = None
) -> None:
    global _WORKER_ENGINE, _WORKER_TRANSPORT, _WORKER_SHM_PREFIX
    _WORKER_ENGINE = engine
    _WORKER_TRANSPORT = transport
    _WORKER_SHM_PREFIX = shm_prefix
    # A memory-mapped snapshot is re-opened read-only by path in each worker
    # rather than sampled through the mappings inherited from the parent at
    # fork time: every worker then holds its own file-backed views (the OS
    # page cache still shares the physical pages, so per-worker RSS stays
    # flat) and keeps a valid snapshot even if the parent's mapping goes
    # away.  Digest equality is checked inside reopen(), so a snapshot
    # swapped on disk between fork and first chunk fails loudly instead of
    # silently sampling different topology than the parent.
    compiled = getattr(engine, "compiled", None)
    if compiled is not None and getattr(compiled, "is_mapped", False):
        compiled.reopen()
        rebind = getattr(engine, "_rebind", None)
        if rebind is not None:
            rebind(compiled)


def _ship_batch(batch: PathBatch):
    """Worker-side egress: publish to shared memory, or fall through to pickle.

    The descriptor is a few dozen bytes regardless of batch size; if the
    segment cannot be created (shared memory unavailable, ``/dev/shm``
    exhausted, non-numpy columns) the batch itself is returned and crosses
    the pipe pickled -- same columns either way.
    """
    if _WORKER_TRANSPORT == "shm":
        ref = shm_transport.publish_batch(batch, prefix=_WORKER_SHM_PREFIX)
        if ref is not None:
            return ref
    return batch


def _adopt_chunks(chunks: list) -> list:
    """Parent-side ingress: attach any shared-memory descriptors in place."""
    return [
        shm_transport.adopt(chunk) if isinstance(chunk, ShmBatchRef) else chunk
        for chunk in chunks
    ]


def _sample_chunk_on(
    engine: SamplingEngine, payload: tuple[NodeId, frozenset, int, int]
) -> list[TargetPath]:
    """Draw one chunk on ``engine`` from its own seed-rebuilt generator."""
    target, stop_set, count, seed = payload
    return engine.sample_paths(target, stop_set, count, rng=random.Random(seed))


def _sample_chunk(payload: tuple[NodeId, frozenset, int, int]) -> list[TargetPath]:
    assert _WORKER_ENGINE is not None, "worker pool used before initialization"
    return _sample_chunk_on(_WORKER_ENGINE, payload)


def _sample_batch_chunk_on(
    engine: SamplingEngine, payload: tuple[NodeId, frozenset, int, int]
) -> PathBatch:
    """Draw one chunk as a columnar batch (same seed contract as chunks).

    Returned batches pickle as packed array buffers -- the graph reference
    is dropped in transit and the parent re-attaches its own snapshot --
    so shipping full paths between processes costs a few flat arrays
    instead of one pickled :class:`TargetPath` per sample.
    """
    target, stop_set, count, seed = payload
    return engine.sample_path_batch(target, stop_set, count, rng=random.Random(seed))


def _sample_batch_chunk(payload: tuple[NodeId, frozenset, int, int]):
    assert _WORKER_ENGINE is not None, "worker pool used before initialization"
    return _ship_batch(_sample_batch_chunk_on(_WORKER_ENGINE, payload))


def _chunk_sampler_for(engine: SamplingEngine):
    """Worker-side chunk sampler: columnar for batch-native base engines."""
    if getattr(engine, "native_batches", False):
        return _sample_batch_chunk_on
    return _sample_chunk_on


def _reduce_chunk_on(engine: SamplingEngine, payload) -> object:
    reducer, target, stop_set, count, seed, arg = payload
    chunk = _chunk_sampler_for(engine)(engine, (target, stop_set, count, seed))
    return reducer(chunk, arg)


def _reduce_chunk(payload) -> object:
    assert _WORKER_ENGINE is not None, "worker pool used before initialization"
    return _reduce_chunk_on(_WORKER_ENGINE, payload)


def _run_with_fault(directives, run_pooled, payload):
    """Apply a chunk's injected-fault directives, then run it normally.

    The parent decides the directives (from its :class:`FaultPlan`) when
    the chunk is dispatched; the worker only executes them: ``"slow"``
    sleeps, ``"shm-fail"`` forces this chunk's shared-memory publish to
    decline (pickle fallback), ``"kill"`` SIGKILLs the worker process --
    the real crash the recovery path must survive, not a simulation of
    one.  Directives never touch the chunk's seed or contents.
    """
    sleep_seconds = 0.0
    kill = False
    for directive in directives:
        if directive == "kill":
            kill = True
        elif directive == "shm-fail":
            shm_transport.set_publish_failures(1)
        else:  # ("slow", seconds)
            sleep_seconds += float(directive[1])
    if sleep_seconds:
        time.sleep(sleep_seconds)
    if kill:
        os.kill(os.getpid(), signal.SIGKILL)
    return run_pooled(payload)


# Chunk reducers.  Applied worker-side so a chunk's IPC cost is one byte per
# sample (indicators) or only the useful paths (type-1 filtering) instead of
# every pickled TargetPath; must be top-level functions so they pickle by
# reference.  Each accepts either chunk form: a columnar PathBatch (reduced
# on the arrays, no per-path objects) or a plain path list.
def _type1_indicator_bytes(chunk, _arg) -> bytes:
    if isinstance(chunk, PathBatch):
        return chunk.type1_bytes()
    return bytes(1 if path.is_type1 else 0 for path in chunk)


def _covered_indicator_bytes(chunk, invited: frozenset) -> bytes:
    if isinstance(chunk, PathBatch):
        return chunk.covered_bytes(invited)
    return bytes(1 if path.covered_by(invited) else 0 for path in chunk)


def _type1_paths_only(chunk, _arg):
    if isinstance(chunk, PathBatch):
        return chunk.select_type1()  # ships as packed columns, type-1 only
    return [path for path in chunk if path.is_type1]


def _shutdown_pool(pool) -> None:
    pool.terminate()
    pool.join()


# --------------------------------------------------------------------------- #
# The engine wrapper
# --------------------------------------------------------------------------- #


class ParallelEngine:
    """A :class:`SamplingEngine` that fans chunked batches over worker processes.

    Wraps any base engine (python or numpy backed).  Satisfies the engine
    protocol, so it threads through ``resolve_engine`` and every consumer of
    engines unchanged; results are deterministic for a fixed seed and
    identical across worker counts (see the module docstring for the
    contract).
    """

    def __init__(
        self,
        base: SamplingEngine,
        workers: int | str = WORKERS_AUTO,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        transport: str = "auto",
        *,
        max_chunk_retries: int = DEFAULT_CHUNK_RETRIES,
        on_worker_failure: str = "retry",
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if isinstance(base, ParallelEngine):
            raise EngineError("cannot wrap a ParallelEngine in another ParallelEngine")
        resolved = resolve_worker_count(workers)
        if resolved is None:
            raise EngineError("ParallelEngine requires an explicit worker count (or 'auto')")
        require_positive_int(chunk_size, "chunk_size")
        require_non_negative_int(max_chunk_retries, "max_chunk_retries")
        if on_worker_failure not in FAILURE_MODES:
            raise EngineError(
                f"on_worker_failure must be one of {', '.join(FAILURE_MODES)}, "
                f"got {on_worker_failure!r}"
            )
        self._base = base
        self._workers = resolved
        self._chunk_size = int(chunk_size)
        self._transport = resolve_transport(
            transport, native_batches=getattr(base, "native_batches", False)
        )
        self._max_chunk_retries = int(max_chunk_retries)
        self._on_worker_failure = on_worker_failure
        self._fault_plan = fault_plan
        self._degraded = False
        self._worker_crashes = 0
        self._pool = None
        self._pool_finalizer = None
        self._pool_snapshot = None
        self.name = f"parallel[{base.name}x{resolved}]"

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def base(self) -> SamplingEngine:
        """The wrapped single-process engine."""
        return self._base

    @property
    def workers(self) -> int:
        """The configured worker-process count."""
        return self._workers

    @property
    def chunk_size(self) -> int:
        """Paths per chunk (worker-count independent)."""
        return self._chunk_size

    @property
    def transport(self) -> str:
        """How columnar chunks return from the workers: ``"shm"`` (zero-copy
        shared-memory segments, with per-chunk pickling fallback) or
        ``"pickle"`` (packed columns through the result pipe).  Never
        affects results, only the wire."""
        return self._transport

    @property
    def compiled(self) -> CompiledGraph:
        """The frozen CSR snapshot the wrapped engine samples from."""
        return self._base.compiled

    @property
    def source_graph(self):
        """The wrapped engine's live graph (None when snapshot-pinned)."""
        return getattr(self._base, "source_graph", None)

    @property
    def native_batches(self) -> bool:
        """Columnar when the wrapped engine is (batches then travel as
        packed array buffers between the workers and the parent)."""
        return getattr(self._base, "native_batches", False)

    @property
    def max_chunk_retries(self) -> int:
        """Respawn-and-retry rounds a lost chunk gets before giving up."""
        return self._max_chunk_retries

    @property
    def on_worker_failure(self) -> str:
        """Crash policy: ``"retry"``, ``"serial"`` or ``"raise"``."""
        return self._on_worker_failure

    @property
    def degraded(self) -> bool:
        """Whether the engine has fallen back to permanent serial execution.

        Set (only) by the ``on_worker_failure="serial"`` escape hatch when
        the retry budget runs out: every later dispatch runs in-process --
        slower, but byte-identical to the fanned-out results, so a service
        above keeps answering correctly while surfacing this flag.
        """
        return self._degraded

    @property
    def worker_crashes(self) -> int:
        """Worker-pool crashes detected (and recovered or escalated) so far."""
        return self._worker_crashes

    def inject_faults(self, fault_plan: "FaultPlan | None") -> None:
        """Attach (or clear) a :class:`~repro.faults.FaultPlan`.

        While attached, each dispatched chunk consults the plan for
        worker-kill / shm-publish-failure / slow-chunk directives.  Faults
        alter scheduling and cost, never chunk seeds or contents: a faulted
        run that completes is byte-identical to a fault-free one.
        """
        self._fault_plan = fault_plan

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<ParallelEngine base={self._base!r} workers={self._workers}>"

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_pool(self):
        # Workers inherit the base engine's CSR snapshot at fork time, so a
        # pool forked before the source graph was mutated would keep sampling
        # the dead snapshot.  Reading base.compiled re-snapshots the base
        # engine (see repro.diffusion.engine._EngineBase); a pool forked on a
        # different snapshot is torn down and re-forked on the current one.
        current = self._base.compiled
        if self._pool is not None and self._pool_snapshot is not current:
            self.close()
        if self._pool is None:
            if self._transport == "shm":
                shm_transport.register_exit_cleanup()
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(
                self._workers,
                initializer=_init_worker,
                initargs=(self._base, self._transport, shm_transport.default_prefix()),
            )
            self._pool_finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
            self._pool_snapshot = current
        return self._pool

    def close(self) -> None:
        """Tear down the worker pool (idempotent; the engine stays usable --
        a later parallel dispatch simply forks a fresh pool).  Also sweeps
        shared-memory orphans: with the pool gone no descriptor is in
        flight, so any surviving segment under this process's prefix is the
        leftover of a crashed worker and is unlinked."""
        had_pool = self._pool is not None
        if self._pool_finalizer is not None:
            self._pool_finalizer()
            self._pool_finalizer = None
        self._pool = None
        self._pool_snapshot = None
        if had_pool and self._transport == "shm":
            shm_transport.sweep_orphans()

    async def aclose(self) -> None:
        """Async counterpart of :meth:`close` (same idempotence guarantee).

        Runs the teardown -- pool terminate/join plus the shared-memory
        orphan sweep -- on a worker thread so an event loop hosting the
        serving front end never blocks on process joins.  Safe to call
        multiple times, concurrently with :meth:`close`, and after a
        worker crash.
        """
        import asyncio

        await asyncio.to_thread(self.close)

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample_path(
        self, target: NodeId, stop_set: Iterable[NodeId], rng: RandomSource = None
    ) -> TargetPath:
        """Draw one backward trace from ``target``."""
        return self.sample_paths(target, stop_set, 1, rng=rng)[0]

    def sample_paths(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> list[TargetPath]:
        """Draw ``count`` independent backward traces from ``target``.

        The request is split into fixed-size chunks, each chunk is drawn
        from its own derived-seed generator (possibly on a worker process),
        and the chunks are concatenated in chunk order -- so the result is
        independent of the worker count and of chunk scheduling.
        """
        chunks = self._run_chunks(target, stop_set, count, rng)
        return [path for chunk in chunks for path in chunk]

    def sample_path_batch(
        self, target: NodeId, stop_set: Iterable[NodeId], count: int, rng: RandomSource = None
    ) -> PathBatch:
        """Draw ``count`` traces as one columnar batch (chunked fan-out).

        Chunk layout and seeds are exactly those of :meth:`sample_paths`,
        so the batch's lazy views materialize the identical path list; with
        a batch-native base engine each worker ships packed columns instead
        of pickled paths, and the per-chunk batches are concatenated in
        chunk order on the parent.
        """
        compiled = self.compiled
        if not self.native_batches:
            return PathBatch.from_paths(
                self.sample_paths(target, stop_set, count, rng=rng), compiled
            )
        chunks = self._run_chunks(target, stop_set, count, rng, batches=True)
        return PathBatch.concat([chunk.attach(compiled) for chunk in chunks], compiled)

    def sample_seeded_chunks(
        self,
        target: NodeId,
        stop_set: Iterable[NodeId],
        sized_seeds: "list[tuple[int, int]]",
    ) -> list[list[TargetPath]]:
        """Draw explicitly seeded chunks, fanned over the worker pool.

        ``sized_seeds`` is a list of ``(count, seed)`` pairs; chunk ``i`` is
        drawn as ``sample_paths(target, stop_set, count_i,
        rng=random.Random(seed_i))`` and the per-chunk path lists are
        returned in input order.  This is the fan-out the sample pool
        (:mod:`repro.pool`) uses to extend a key by several chunks at once:
        the caller owns the seed schedule (so the chunk contents are a pure
        function of the seeds, worker-count independent), and each worker's
        shard is merged back deterministically by position.
        """
        return self._run_seeded(target, stop_set, sized_seeds, _sample_chunk, _sample_chunk_on)

    def sample_seeded_batches(
        self,
        target: NodeId,
        stop_set: Iterable[NodeId],
        sized_seeds: "list[tuple[int, int]]",
    ) -> list[PathBatch]:
        """Columnar variant of :meth:`sample_seeded_chunks`.

        Chunk ``i`` is ``sample_path_batch(target, stop_set, count_i,
        rng=random.Random(seed_i))`` on the base engine, so its lazy views
        materialize exactly the paths :meth:`sample_seeded_chunks` would
        have returned for the same seeds -- but full-path collection now
        ships packed array columns across the process boundary instead of
        one pickled :class:`TargetPath` per sample.  This is the fan-out
        the sample pool uses to extend columnar keys.
        """
        compiled = self.compiled
        chunks = self._run_seeded(
            target, stop_set, sized_seeds, _sample_batch_chunk, _sample_batch_chunk_on
        )
        return [chunk.attach(compiled) for chunk in chunks]

    def _run_seeded(self, target, stop_set, sized_seeds, run_pooled, run_local) -> list:
        stop = stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set)
        payloads = []
        for size, seed in sized_seeds:
            require_non_negative_int(size, "count")
            payloads.append((target, stop, size, seed))
        return self._dispatch(payloads, run_pooled, run_local)

    def sample_reduced(
        self,
        target: NodeId,
        stop_set: Iterable[NodeId],
        count: int,
        rng: RandomSource,
        reducer,
        arg=None,
    ) -> list:
        """Draw ``count`` traces and apply ``reducer`` to each chunk worker-side.

        ``reducer(paths, arg)`` must be a top-level (picklable) function; its
        per-chunk results are returned in chunk order.  Chunk layout and
        seeds are exactly those of :meth:`sample_paths`, so a reduction over
        ``sample_reduced`` sees the same paths ``sample_paths`` would return
        -- the reduction only moves *where* the paths are consumed, keeping
        the inter-process traffic proportional to the reduced size rather
        than to the raw path count.
        """
        return self._run_chunks(target, stop_set, count, rng, reducer=reducer, arg=arg)

    def _run_chunks(
        self, target, stop_set, count, rng, reducer=None, arg=None, batches=False
    ) -> list:
        require_non_negative_int(count, "count")
        generator = ensure_rng(rng)
        stop = stop_set if isinstance(stop_set, frozenset) else frozenset(stop_set)
        payloads = []
        offset = 0
        while offset < count:
            size = min(self._chunk_size, count - offset)
            label = f"parallel-chunk-{len(payloads)}"
            payloads.append((target, stop, size, derive_seed(generator, label)))
            offset += size
        if not payloads:
            return []
        if reducer is not None:
            payloads = [(reducer, *payload, arg) for payload in payloads]
            run_pooled, run_local = _reduce_chunk, _reduce_chunk_on
        elif batches:
            run_pooled, run_local = _sample_batch_chunk, _sample_batch_chunk_on
        else:
            run_pooled, run_local = _sample_chunk, _sample_chunk_on
        return self._dispatch(payloads, run_pooled, run_local)

    # ------------------------------------------------------------------ #
    # Dispatch and crash recovery
    # ------------------------------------------------------------------ #

    def _dispatch(self, payloads, run_pooled, run_local) -> list:
        """Run the chunk payloads, pooled where possible, serially otherwise.

        The serial path (one worker, one chunk, no fork support, or a
        degraded engine) runs the same payloads on the base engine; chunk
        contents are pure functions of their seeds, so both paths return
        the identical list.
        """
        if not payloads:
            return []
        if (
            self._workers > 1
            and len(payloads) > 1
            and fork_available()
            and not self._degraded
        ):
            return self._dispatch_pooled(payloads, run_pooled, run_local)
        return [run_local(self._base, payload) for payload in payloads]

    def _worker_pids(self) -> frozenset:
        """Current pids of the pool's worker processes (empty without a pool)."""
        processes = getattr(self._pool, "_pool", None) or ()
        return frozenset(process.pid for process in processes)

    def _pool_damaged(self, initial_pids: frozenset) -> bool:
        """Whether a worker died since dispatch (the lost-chunk sentinel).

        ``multiprocessing.Pool`` silently drops the task a killed worker
        was running (and may respawn the worker), so a chunk future would
        otherwise be awaited forever.  A pid that disappeared or a process
        that is no longer alive is the crash signal; either observation is
        definitive because pool workers are never recycled by this engine
        outside a crash.
        """
        processes = getattr(self._pool, "_pool", None) or ()
        if any(not process.is_alive() for process in processes):
            return True
        return self._worker_pids() != initial_pids

    def _chunk_directives(self) -> tuple:
        """The attached fault plan's directives for the next dispatched chunk."""
        plan = self._fault_plan
        directives: list = []
        if plan is None:
            return ()
        if plan.fires(SITE_SLOW_CHUNK):
            directives.append(("slow", plan.slow_seconds))
        if plan.fires(SITE_SHM_PUBLISH):
            directives.append("shm-fail")
        if plan.fires(SITE_WORKER_KILL):
            directives.append("kill")
        return tuple(directives)

    def _apply_async(self, pool, run_pooled, payload):
        if self._fault_plan is None:
            return pool.apply_async(run_pooled, (payload,))
        return pool.apply_async(_run_with_fault, (self._chunk_directives(), run_pooled, payload))

    def _crash_error(self, lost: list, attempts: int) -> WorkerCrashError:
        return WorkerCrashError(
            f"worker pool crashed with chunks {lost} in flight "
            f"(after {attempts} dispatch attempt(s), "
            f"max_chunk_retries={self._max_chunk_retries})",
            chunks=tuple(lost),
        )

    def _dispatch_pooled(self, payloads, run_pooled, run_local) -> list:
        """Fan the payloads over the pool, recovering from worker crashes.

        Every chunk is dispatched as its own future and polled with a
        timeout; when a worker death is detected the damaged pool is torn
        down (which sweeps shared-memory orphans), a fresh pool is forked,
        and only the unfinished chunks are re-dispatched with their
        original payloads -- each chunk is a pure function of its seed, so
        the recovered results are byte-identical to a fault-free run.
        Completed shared-memory chunks are adopted as they arrive, which
        keeps their segments out of the orphan sweep.  Chunks still lost
        after ``max_chunk_retries`` rounds escalate per
        ``on_worker_failure`` (typed error, or permanent serial degrade).
        """
        results: list = [None] * len(payloads)
        retries = [0] * len(payloads)
        pending = list(range(len(payloads)))
        while pending:
            pool = self._ensure_pool()
            initial_pids = self._worker_pids()
            inflight = {
                index: self._apply_async(pool, run_pooled, payloads[index])
                for index in pending
            }
            crashed = False
            while inflight and not crashed:
                for index in list(inflight):
                    try:
                        value = inflight[index].get(timeout=_CRASH_POLL_SECONDS)
                    except multiprocessing.TimeoutError:
                        if self._pool_damaged(initial_pids):
                            crashed = True
                            break
                        continue
                    if isinstance(value, ShmBatchRef):
                        value = shm_transport.adopt(value)
                    results[index] = value
                    del inflight[index]
            if not inflight:
                return results
            # Crash path: the chunks still in flight are (possibly) lost.
            lost = sorted(inflight)
            self._worker_crashes += 1
            self.close()  # terminate the damaged pool; sweep shm orphans
            if self._on_worker_failure == "raise":
                raise self._crash_error(lost, attempts=max(retries[i] for i in lost) + 1)
            for index in lost:
                retries[index] += 1
            exhausted = max(retries[index] for index in lost) > self._max_chunk_retries
            if exhausted:
                if self._on_worker_failure == "serial":
                    self._degraded = True
                    for index in lost:
                        results[index] = run_local(self._base, payloads[index])
                    return results
                raise self._crash_error(lost, attempts=max(retries[i] for i in lost))
            pending = lost
        return results


def maybe_parallel(
    engine: SamplingEngine,
    workers: int | str | None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    on_worker_failure: str = "retry",
) -> SamplingEngine:
    """Wrap ``engine`` in a :class:`ParallelEngine` when a worker count is given.

    ``workers=None`` returns the engine unchanged (the historical
    single-stream path, bit-compatible with pre-parallel releases); any
    explicit count -- including 1 -- selects the chunked deterministic
    fan-out path, so results for ``workers=1`` and ``workers=N`` coincide.
    An engine that is already parallel passes through untouched (its own
    worker count *and* crash policy win; wrapping pools in pools would
    only add overhead).  ``on_worker_failure`` sets the crash policy of a
    newly created wrapper (the serving layer passes ``"serial"`` so a
    crashed pool degrades instead of failing queries).
    """
    resolved = resolve_worker_count(workers)
    if resolved is None or isinstance(engine, ParallelEngine):
        return engine
    return ParallelEngine(
        engine, workers=resolved, chunk_size=chunk_size, on_worker_failure=on_worker_failure
    )


# --------------------------------------------------------------------------- #
# Engine-agnostic sampling reductions
# --------------------------------------------------------------------------- #
#
# The estimation layers consume *functions of* the sampled paths -- type-1
# indicators for pmax (Alg. 2 / Corollary 2), covered-trace indicators for
# f(I) (Lemma 2), the type-1 subset for the MSC instance (Alg. 3).  These
# helpers dispatch on the engine: a ParallelEngine reduces worker-side (so
# only the reduced form crosses the process boundary), any other engine
# samples and reduces in-process on the caller's own stream -- which keeps
# the workers=None path bit-compatible with pre-parallel releases.


def sample_type1_indicators(
    engine: SamplingEngine,
    target: NodeId,
    stop_set: Iterable[NodeId],
    count: int,
    rng: RandomSource = None,
) -> bytes:
    """The type indicators ``y(ĝ)`` of ``count`` reverse samples, one byte each."""
    if isinstance(engine, ParallelEngine):
        return b"".join(engine.sample_reduced(target, stop_set, count, rng, _type1_indicator_bytes))
    if getattr(engine, "native_batches", False):
        return engine.sample_path_batch(target, stop_set, count, rng=rng).type1_bytes()
    return _type1_indicator_bytes(engine.sample_paths(target, stop_set, count, rng=rng), None)


def sample_covered_indicators(
    engine: SamplingEngine,
    target: NodeId,
    stop_set: Iterable[NodeId],
    count: int,
    invitation: frozenset,
    rng: RandomSource = None,
) -> bytes:
    """Covered-trace indicators (Lemma 2) of ``count`` reverse samples."""
    if isinstance(engine, ParallelEngine):
        return b"".join(
            engine.sample_reduced(
                target, stop_set, count, rng, _covered_indicator_bytes, arg=invitation
            )
        )
    if getattr(engine, "native_batches", False):
        return engine.sample_path_batch(target, stop_set, count, rng=rng).covered_bytes(invitation)
    return _covered_indicator_bytes(
        engine.sample_paths(target, stop_set, count, rng=rng), invitation
    )


def collect_type1(
    engine: SamplingEngine,
    target: NodeId,
    stop_set: Iterable[NodeId],
    count: int,
    rng: RandomSource = None,
) -> tuple[list[TargetPath], int]:
    """Draw ``count`` traces, keeping only the type-1 ones.

    The parallel counterpart of
    :func:`repro.diffusion.engine.collect_type1_paths` (to which it defers
    for non-parallel engines): with a :class:`ParallelEngine` the type-0
    paths are dropped inside the workers and never cross the process
    boundary.
    """
    if isinstance(engine, ParallelEngine):
        compiled = engine.compiled
        chunks = engine.sample_reduced(target, stop_set, count, rng, _type1_paths_only)
        paths: list[TargetPath] = []
        for chunk in chunks:
            if isinstance(chunk, PathBatch):
                # Packed type-1 columns off the wire; objects built here,
                # once, only for the paths the MSC instance will consume.
                paths.extend(chunk.attach(compiled).to_paths())
            else:
                paths.extend(chunk)
        return paths, len(paths)
    return collect_type1_paths(engine, target, stop_set, count, rng=rng)
