"""Multi-process fan-out for the sampling layer.

:class:`~repro.parallel.engine.ParallelEngine` wraps any
:class:`~repro.diffusion.engine.SamplingEngine` and drains chunked batch
requests over a worker pool with deterministic per-chunk seed derivation --
same seed, same results, for any worker count.  Columnar chunks return from
the workers as zero-copy shared-memory segments where available
(:mod:`repro.parallel.shm`), pickled packed columns otherwise.  See
:mod:`repro.parallel.engine` for the determinism contract and DESIGN.md §3
(fan-out) / §7 (transport) for the architecture notes.
"""

from repro.parallel.engine import (
    DEFAULT_CHUNK_SIZE,
    WORKERS_AUTO,
    ParallelEngine,
    collect_type1,
    fork_available,
    maybe_parallel,
    resolve_worker_count,
    sample_covered_indicators,
    sample_type1_indicators,
)
from repro.parallel.shm import (
    TRANSPORTS,
    ShmBatchRef,
    resolve_transport,
    shm_available,
    sweep_orphans,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "TRANSPORTS",
    "WORKERS_AUTO",
    "ParallelEngine",
    "ShmBatchRef",
    "collect_type1",
    "fork_available",
    "maybe_parallel",
    "resolve_transport",
    "resolve_worker_count",
    "sample_covered_indicators",
    "sample_type1_indicators",
    "shm_available",
    "sweep_orphans",
]
