"""Multi-process fan-out for the sampling layer.

:class:`~repro.parallel.engine.ParallelEngine` wraps any
:class:`~repro.diffusion.engine.SamplingEngine` and drains chunked batch
requests over a worker pool with deterministic per-chunk seed derivation --
same seed, same results, for any worker count.  See
:mod:`repro.parallel.engine` for the determinism contract and DESIGN.md §3
for the architecture notes.
"""

from repro.parallel.engine import (
    DEFAULT_CHUNK_SIZE,
    WORKERS_AUTO,
    ParallelEngine,
    collect_type1,
    fork_available,
    maybe_parallel,
    resolve_worker_count,
    sample_covered_indicators,
    sample_type1_indicators,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "WORKERS_AUTO",
    "ParallelEngine",
    "collect_type1",
    "fork_available",
    "maybe_parallel",
    "resolve_worker_count",
    "sample_covered_indicators",
    "sample_type1_indicators",
]
