"""Zero-copy shared-memory transport for columnar :class:`PathBatch` chunks.

The fork-based :class:`~repro.parallel.engine.ParallelEngine` historically
shipped finished chunks back to the parent by pickling their packed columns
through the pool's result pipe: one serialize, one pipe write, one pipe
read, one deserialize per chunk.  This module replaces that wire with POSIX
shared memory (:mod:`multiprocessing.shared_memory`): a worker copies the
four columns of a finished batch into one freshly created segment and ships
only a tiny :class:`ShmBatchRef` descriptor -- the segment name plus the
two lengths that fully determine the column layout -- over the pipe.  The
parent attaches the segment and wraps numpy *views* over its buffer
directly into a :class:`~repro.diffusion.path_batch.PathBatch`: the sampled
data crosses the process boundary exactly once (the worker's copy-in) and
is never serialized, copied or parsed again.

Lifecycle protocol (see DESIGN.md §7)
-------------------------------------

* **Naming.**  Segments are named ``repro-pb-<parent pid>-<random hex>``.
  The parent passes its prefix to the workers at fork time, so every
  segment a pool ever creates is attributable to (and sweepable by) the
  parent that owns the pool, and unrelated processes never collide.
* **Publish (worker).**  :func:`publish_batch` creates the segment, copies
  the columns in, *unregisters it from the worker's resource tracker*
  (ownership moves to the parent -- a worker exiting must not unlink data
  the parent is still reading), closes its own mapping and returns the
  descriptor.  Any failure (shared memory unavailable, ``/dev/shm`` full,
  non-numpy columns) returns ``None`` and the caller falls back to pickling
  the batch -- the transport degrades, the results do not change.
* **Adopt (parent).**  :func:`adopt` attaches the segment, builds the
  column views, and registers the segment in a per-process table of live
  adoptions.  A finalizer on the returned batch releases the segment --
  close plus unlink -- when the batch is garbage collected, so segment
  lifetime is exactly the lifetime of the (usually short-lived) batch
  object that views it.
* **Crash safety.**  Every adopted-but-unreleased segment is released at
  interpreter exit (``atexit``), and :func:`sweep_orphans` unlinks any
  on-disk segment carrying this process's prefix that is *not* currently
  adopted -- the leftovers of a worker that died between publish and
  delivery.  :class:`~repro.parallel.engine.ParallelEngine` sweeps on
  ``close()`` and the module sweeps at exit, so no orphan outlives its
  owning process.

Everything here is optional: :func:`shm_available` gates on the platform
and on numpy, and every caller has a pickling fallback.
"""

from __future__ import annotations

import atexit
import os
import uuid
import weakref
from dataclasses import dataclass

from repro.diffusion.path_batch import PathBatch
from repro.exceptions import EngineError

try:  # optional: POSIX shared memory (absent on some exotic platforms)
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _shared_memory = None

try:  # optional dependency: zero-copy views require numpy columns
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = [
    "TRANSPORTS",
    "ShmBatchRef",
    "shm_available",
    "resolve_transport",
    "default_prefix",
    "segment_name",
    "publish_batch",
    "set_publish_failures",
    "adopt",
    "sweep_orphans",
    "release_all",
    "register_exit_cleanup",
    "live_segments",
]

#: Transport names accepted by :class:`~repro.parallel.engine.ParallelEngine`.
TRANSPORTS = ("auto", "shm", "pickle")

#: Where POSIX shared memory is visible as files (the orphan sweep scans it).
_SHM_DIR = "/dev/shm"

#: Live adoptions: segment name -> the attached SharedMemory object.  A
#: segment leaves this table exactly once, through :func:`_release_segment`.
_ADOPTED: dict = {}

_ATEXIT_REGISTERED = False

#: Pending injected publish failures (the chaos harness's seam): while
#: positive, :func:`publish_batch` declines -- exactly as if the segment
#: could not be created -- and the caller takes its pickling fallback.
_FORCED_PUBLISH_FAILURES = 0


def set_publish_failures(count: int) -> None:
    """Make the next ``count`` :func:`publish_batch` calls fail (per process).

    The fault-injection seam used by :mod:`repro.faults` via the worker
    directives of :class:`~repro.parallel.engine.ParallelEngine`: a forced
    failure is indistinguishable from a real segment-creation failure, so
    it exercises the graceful per-chunk pickle fallback without touching
    shared-memory internals.  Results never change -- only the wire.
    """
    global _FORCED_PUBLISH_FAILURES
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise ValueError(f"count must be a non-negative int, got {count!r}")
    _FORCED_PUBLISH_FAILURES = count


def shm_available() -> bool:
    """Whether the zero-copy transport can run here (platform + numpy)."""
    return _shared_memory is not None and _np is not None


def resolve_transport(transport: str, native_batches: bool = True) -> str:
    """Normalize a transport argument to ``"shm"`` or ``"pickle"``.

    ``"auto"`` selects shared memory when it is available *and* the base
    engine produces columnar batches (object-path chunks have nothing to
    place in a segment).  An explicit ``"shm"`` is honoured even when the
    runtime later falls back per-chunk -- the fallback is graceful, not an
    error.  Unknown names raise :class:`~repro.exceptions.EngineError`.
    """
    if not isinstance(transport, str) or transport.lower() not in TRANSPORTS:
        raise EngineError(
            f"transport must be one of {', '.join(TRANSPORTS)}, got {transport!r}"
        )
    key = transport.lower()
    if key == "auto":
        return "shm" if (shm_available() and native_batches) else "pickle"
    return key


def default_prefix() -> str:
    """This process's segment-name prefix (embeds the pid for sweepability)."""
    return f"repro-pb-{os.getpid()}-"


def segment_name(prefix: "str | None" = None) -> str:
    """A fresh collision-free segment name under ``prefix``."""
    return (prefix or default_prefix()) + uuid.uuid4().hex[:16]


@dataclass(frozen=True, slots=True)
class ShmBatchRef:
    """The wire descriptor of one published batch: everything the parent
    needs to attach and view the columns, and nothing else.

    ``num_paths``/``num_nodes`` fully determine the segment layout (see
    :func:`_layout`); the columns themselves never travel over the pipe.
    """

    name: str
    num_paths: int
    num_nodes: int


def _layout(num_paths: int, num_nodes: int):
    """Byte offsets of the four columns inside a segment.

    Fixed-width dtypes, 8-byte-aligned sections first: ``offsets`` (int64,
    ``num_paths + 1``), ``node_indices`` (int64), ``anchor_indices``
    (int64), then ``is_type1`` (one bool byte per path) last so nothing
    needs padding.  Returns ``(total_bytes, offsets_off, nodes_off,
    anchors_off, flags_off)``.
    """
    offsets_off = 0
    nodes_off = offsets_off + (num_paths + 1) * 8
    anchors_off = nodes_off + num_nodes * 8
    flags_off = anchors_off + num_paths * 8
    total = flags_off + num_paths
    return total, offsets_off, nodes_off, anchors_off, flags_off


def _unregister_from_tracker(shm) -> None:
    """Detach a worker-created segment from the worker's resource tracker.

    The tracker would otherwise unlink the segment when the *worker* exits,
    yanking the data out from under the parent; ownership of the name moves
    to the adopting parent instead.  Best-effort by design: a tracker that
    does not know the name has nothing to forget.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def publish_batch(batch: PathBatch, prefix: "str | None" = None) -> "ShmBatchRef | None":
    """Copy a columnar batch into a fresh segment; return its descriptor.

    Returns ``None`` -- meaning "fall back to pickling" -- when shared
    memory is unavailable, the batch's columns are not numpy arrays, or the
    segment cannot be created.  The worker's own mapping is closed before
    returning; the parent is the segment's owner from here on.
    """
    global _FORCED_PUBLISH_FAILURES
    if _FORCED_PUBLISH_FAILURES > 0:
        _FORCED_PUBLISH_FAILURES -= 1
        return None
    if not shm_available():
        return None
    if not isinstance(batch.offsets, _np.ndarray):
        return None
    num_paths = len(batch)
    num_nodes = int(batch.offsets[-1])
    total, offsets_off, nodes_off, anchors_off, flags_off = _layout(num_paths, num_nodes)
    try:
        shm = _shared_memory.SharedMemory(
            name=segment_name(prefix), create=True, size=max(total, 1)
        )
    except OSError:
        return None
    try:
        buf = shm.buf

        def column(offset, length, dtype):
            return _np.ndarray((length,), dtype=dtype, buffer=buf, offset=offset)

        column(offsets_off, num_paths + 1, _np.int64)[:] = batch.offsets
        column(nodes_off, num_nodes, _np.int64)[:] = batch.node_indices
        column(anchors_off, num_paths, _np.int64)[:] = batch.anchor_indices
        column(flags_off, num_paths, _np.bool_)[:] = batch.is_type1
        del buf
        _unregister_from_tracker(shm)
    finally:
        shm.close()
    return ShmBatchRef(name=shm.name, num_paths=num_paths, num_nodes=num_nodes)


def _release_segment(name: str) -> None:
    """Close and unlink one adopted segment (idempotent per name)."""
    shm = _ADOPTED.pop(name, None)
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a column view outlived its batch
        pass  # unlink below still removes the name; the pages die with the maps
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def release_all() -> None:
    """Release every still-adopted segment (the ``atexit`` safety net)."""
    for name in list(_ADOPTED):
        _release_segment(name)


def _exit_cleanup() -> None:  # pragma: no cover - runs at interpreter exit
    release_all()
    sweep_orphans()


def register_exit_cleanup() -> None:
    """Arm the at-exit safety net (idempotent).

    Called on the first adoption *and* when a pool with the shm transport
    is forked, so a parent that dies between a worker's publish and its own
    adopt still sweeps its segments on any non-brutal exit.
    """
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_exit_cleanup)
        _ATEXIT_REGISTERED = True


def adopt(ref: ShmBatchRef) -> PathBatch:
    """Attach a published segment and wrap zero-copy views into a batch.

    The returned batch is detached (``graph is None``) exactly like a
    pickled batch off the wire; the caller re-``attach()``-es its snapshot.
    A finalizer ties the segment's lifetime to the batch object: when the
    batch is collected, the segment is closed and unlinked.
    """
    if not shm_available():
        raise EngineError("cannot adopt a shared-memory batch: shared memory unavailable")
    shm = _shared_memory.SharedMemory(name=ref.name)
    _, offsets_off, nodes_off, anchors_off, flags_off = _layout(ref.num_paths, ref.num_nodes)
    buf = shm.buf
    batch = PathBatch(
        _np.ndarray((ref.num_paths + 1,), dtype=_np.int64, buffer=buf, offset=offsets_off),
        _np.ndarray((ref.num_nodes,), dtype=_np.int64, buffer=buf, offset=nodes_off),
        _np.ndarray((ref.num_paths,), dtype=_np.bool_, buffer=buf, offset=flags_off),
        _np.ndarray((ref.num_paths,), dtype=_np.int64, buffer=buf, offset=anchors_off),
        None,
    )
    _ADOPTED[ref.name] = shm
    weakref.finalize(batch, _release_segment, ref.name)
    register_exit_cleanup()
    return batch


def live_segments() -> tuple:
    """Names of the currently adopted (attached, not yet released) segments."""
    return tuple(_ADOPTED)


def sweep_orphans(prefix: "str | None" = None) -> list[str]:
    """Unlink stranded segments carrying ``prefix`` (default: this process's).

    An orphan is a segment that exists on disk but is not currently
    adopted: its publisher died (or was torn down) between publish and
    delivery, so no finalizer will ever release it.  Call only while no
    request is in flight on the owning pool -- an in-flight descriptor's
    segment looks exactly like an orphan until the parent adopts it.
    Returns the names swept; silently does nothing where shared memory is
    not file-backed.
    """
    prefix = prefix or default_prefix()
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-/dev/shm platforms
        return []
    swept: list[str] = []
    for entry in entries:
        if entry.startswith(prefix) and entry not in _ADOPTED:
            try:
                os.unlink(os.path.join(_SHM_DIR, entry))
            except OSError:  # pragma: no cover - raced with another release
                continue
            swept.append(entry)
    return swept
