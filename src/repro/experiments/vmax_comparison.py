"""Experiment E5: the Vmax comparison of Table II.

For each pair (at α = 0.1, the paper's choice), compute the exact minimum
invitation set ``Vmax`` achieving ``pmax`` (Lemma 7) and compare its size
with the RAF solution's size.  The paper reports, per dataset, the averages
of ``|Vmax|``, ``|I_RAF|`` and their ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import run_raf
from repro.core.vmax import compute_vmax
from repro.exceptions import AlgorithmError
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.graph.social_graph import SocialGraph
from repro.types import PairSpec
from repro.utils.rng import RandomSource, derive_rng

__all__ = ["VmaxComparisonResult", "run_vmax_comparison", "format_vmax_comparison"]


@dataclass(frozen=True)
class VmaxComparisonResult:
    """Table II row for one dataset."""

    dataset: str
    alpha: float
    num_pairs: int
    avg_vmax_size: float
    avg_raf_size: float
    avg_ratio: float
    per_pair: tuple[dict, ...]

    def as_row(self) -> dict:
        """The Table II row (averages only)."""
        return {
            "dataset": self.dataset,
            "avg_|Vmax|": round(self.avg_vmax_size, 2),
            "avg_|I_RAF|": round(self.avg_raf_size, 2),
            "avg_|Vmax|/|I_RAF|": round(self.avg_ratio, 2),
            "pairs": self.num_pairs,
        }


def run_vmax_comparison(
    graph: SocialGraph,
    pairs: list[PairSpec],
    config: ExperimentConfig,
    alpha: float = 0.1,
    dataset_name: str = "",
    rng: RandomSource = None,
) -> VmaxComparisonResult:
    """Run the Table II protocol on pre-selected pairs of one dataset."""
    per_pair: list[dict] = []
    for index, pair in enumerate(pairs):
        pair_rng = derive_rng(rng, f"vmax-{index}")
        problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=alpha)
        vmax = compute_vmax(graph, pair.source, pair.target)
        if not vmax:
            continue
        try:
            raf = run_raf(problem, config.raf_config(alpha), rng=pair_rng)
        except AlgorithmError:
            continue
        per_pair.append(
            {
                "source": pair.source,
                "target": pair.target,
                "vmax_size": len(vmax),
                "raf_size": raf.size,
                "ratio": len(vmax) / max(1, raf.size),
            }
        )
    count = len(per_pair)
    if count == 0:
        return VmaxComparisonResult(
            dataset=dataset_name, alpha=alpha, num_pairs=0,
            avg_vmax_size=0.0, avg_raf_size=0.0, avg_ratio=0.0, per_pair=(),
        )
    avg_vmax = sum(row["vmax_size"] for row in per_pair) / count
    avg_raf = sum(row["raf_size"] for row in per_pair) / count
    avg_ratio = sum(row["ratio"] for row in per_pair) / count
    return VmaxComparisonResult(
        dataset=dataset_name,
        alpha=alpha,
        num_pairs=count,
        avg_vmax_size=avg_vmax,
        avg_raf_size=avg_raf,
        avg_ratio=avg_ratio,
        per_pair=tuple(per_pair),
    )


def format_vmax_comparison(results: list[VmaxComparisonResult]) -> str:
    """Render Table II (one row per dataset)."""
    rows = [result.as_row() for result in results]
    return format_table(rows, title="Table II -- comparing RAF with Vmax (alpha = 0.1)")
