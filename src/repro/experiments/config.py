"""Configuration shared by the experiment runners.

The paper's full protocol (500 pairs per dataset, graphs up to 1.1M nodes,
ε = 0.01, N = 100000) takes hours on a server; the defaults here are scaled
down so the complete benchmark suite reproduces every figure's *shape* on a
laptop in minutes.  Every knob is exposed, so the full-scale protocol is a
configuration change, not a code change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import SamplePolicy
from repro.core.raf import RAFConfig
from repro.diffusion.engine import require_engine_name
from repro.exceptions import ExperimentError
from repro.parallel.engine import resolve_worker_count
from repro.utils.validation import require, require_positive, require_positive_int

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the Sec. IV experiment protocol.

    Attributes
    ----------
    num_pairs:
        Number of (initiator, target) pairs per dataset (paper: 500).
    pmax_threshold:
        Pairs whose estimated ``pmax`` is below this are discarded
        (paper: 0.01).
    pmax_ceiling:
        Pairs above this ``pmax`` are also discarded.  The paper's large
        sparse graphs rarely produce near-certain pairs; on the scaled-down
        stand-ins a ceiling keeps the selected pairs in the same regime as
        the paper (distant, genuinely hard pairs) instead of neighbours-of-
        neighbours with ``pmax`` close to 1.
    min_distance:
        Minimum graph distance between initiator and target (2 means "not
        already friends"; 3 reproduces the paper's regime better).
    pair_screen_samples:
        Realizations used to screen each candidate pair's ``pmax``.
    eval_samples:
        Process-1 simulations used to estimate ``f(I)`` of a produced
        invitation set.
    alphas:
        The α sweep of the basic experiment (Fig. 3).
    raf_epsilon, confidence_n:
        The ``ε`` and ``N`` of the RAF guarantee (paper: 0.01 and 100000).
    realizations:
        Realization count ``l`` used by the RAF sampling framework (the
        FIXED policy; Sec. IV-E shows performance saturates well below the
        theoretical prescription).
    engine:
        Reverse-sampling backend name used by the RAF runs and the pair
        screens (``"python"``, ``"numpy"`` or ``"auto"``).
    workers:
        Sampling worker processes used by the RAF runs (a positive integer
        or ``"auto"``; ``None`` keeps the single-stream path).  Seeded
        results are identical for every explicit worker count.
    pool:
        When true, RAF runs draw their reverse samples through a shared
        :class:`~repro.pool.SamplePool` (see :class:`repro.core.raf.RAFConfig`),
        reusing cached samples across the runs of one experiment.
    pool_budget:
        Optional cap on the total paths such a pool keeps cached.
    seed:
        Base seed controlling the whole experiment.
    """

    num_pairs: int = 10
    pmax_threshold: float = 0.01
    pmax_ceiling: float = 0.5
    min_distance: int = 3
    pair_screen_samples: int = 400
    eval_samples: int = 400
    alphas: tuple[float, ...] = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3)
    raf_epsilon: float = 0.01
    confidence_n: float = 100_000.0
    realizations: int = 4_000
    engine: str = "python"
    workers: int | str | None = None
    pool: bool = False
    pool_budget: int | None = None
    seed: int = 2019

    def __post_init__(self) -> None:
        require_positive_int(self.num_pairs, "num_pairs")
        require_positive(self.pmax_threshold, "pmax_threshold")
        require_positive(self.pmax_ceiling, "pmax_ceiling")
        require(
            self.pmax_threshold < self.pmax_ceiling,
            "pmax_threshold must be below pmax_ceiling",
        )
        require_positive_int(self.min_distance, "min_distance")
        require_positive_int(self.pair_screen_samples, "pair_screen_samples")
        require_positive_int(self.eval_samples, "eval_samples")
        require_positive_int(self.realizations, "realizations")
        if not self.alphas:
            raise ExperimentError("at least one alpha value is required")
        for alpha in self.alphas:
            if not 0.0 < alpha <= 1.0:
                raise ExperimentError(f"alpha values must lie in (0, 1], got {alpha}")
        require_positive(self.raf_epsilon, "raf_epsilon")
        require_positive(self.confidence_n, "confidence_n")
        require_engine_name(self.engine)
        resolve_worker_count(self.workers)
        if self.pool_budget is not None:
            require_positive_int(self.pool_budget, "pool_budget")

    def raf_config(self, alpha: float | None = None) -> RAFConfig:
        """Build the :class:`RAFConfig` used for one RAF run.

        ``alpha`` is only needed to cap ``ε`` (which must stay below α).
        """
        smallest_alpha = min(self.alphas) if alpha is None else alpha
        epsilon = min(self.raf_epsilon, smallest_alpha / 2.0)
        return RAFConfig(
            epsilon=epsilon,
            confidence_n=self.confidence_n,
            sample_policy=SamplePolicy.FIXED,
            fixed_realizations=self.realizations,
            pmax_epsilon=0.1,
            pmax_max_samples=max(10 * self.realizations, 50_000),
            engine=self.engine,
            workers=self.workers,
            pool=self.pool,
            pool_budget=self.pool_budget,
        )
