"""Experiment E6: the realization-count sweep of Fig. 6 (Sec. IV-E).

Fix one (s, t) pair and the covering fraction ``β``, vary the number of
realizations ``l`` fed to the sampling framework (Alg. 3), and measure the
acceptance probability of the resulting invitation set.  The paper uses
this to show that performance saturates far below the theoretical
prescription for ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import solve_parameters
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import run_sampling_framework
from repro.exceptions import AlgorithmError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import evaluate_invitation
from repro.experiments.reporting import format_table
from repro.graph.social_graph import SocialGraph
from repro.types import PairSpec
from repro.utils.rng import RandomSource, derive_rng

__all__ = ["RealizationSweepResult", "run_realization_sweep", "format_realization_sweep"]


@dataclass(frozen=True)
class RealizationSweepResult:
    """The Fig. 6 series for one pair.

    ``rows`` holds one mapping per swept ``l`` with keys ``realizations``,
    ``invitation_size`` and ``acceptance_probability``.
    """

    dataset: str
    source: object
    target: object
    alpha: float
    beta: float
    rows: tuple[dict, ...]

    def series(self) -> list[tuple[float, float]]:
        """The (number of realizations, acceptance probability) curve."""
        return [(row["realizations"], row["acceptance_probability"]) for row in self.rows]


def run_realization_sweep(
    graph: SocialGraph,
    pair: PairSpec,
    config: ExperimentConfig,
    realization_counts: tuple[int, ...] = (250, 500, 1000, 2000, 4000, 8000),
    alpha: float = 0.1,
    dataset_name: str = "",
    rng: RandomSource = None,
) -> RealizationSweepResult:
    """Run the Fig. 6 protocol for one pair.

    ``β`` is held fixed at the value the parameter solver produces for
    (α, ε), exactly as in the paper ("Now we fix β and reduce the number
    [of] used realizations").
    """
    problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=alpha)
    parameters = solve_parameters(
        alpha=alpha,
        epsilon=min(config.raf_epsilon, alpha / 2.0),
        num_nodes=graph.num_nodes,
    )
    rows: list[dict] = []
    for index, count in enumerate(sorted(realization_counts)):
        sweep_rng = derive_rng(rng, f"sweep-{index}")
        try:
            invitation, _diag = run_sampling_framework(
                problem,
                beta=parameters.beta,
                num_realizations=count,
                rng=sweep_rng,
            )
        except AlgorithmError:
            continue
        probability = evaluate_invitation(
            graph,
            pair.source,
            pair.target,
            invitation,
            num_samples=config.eval_samples,
            rng=derive_rng(sweep_rng, "eval"),
        )
        rows.append(
            {
                "realizations": count,
                "invitation_size": len(invitation),
                "acceptance_probability": probability,
            }
        )
    return RealizationSweepResult(
        dataset=dataset_name,
        source=pair.source,
        target=pair.target,
        alpha=alpha,
        beta=parameters.beta,
        rows=tuple(rows),
    )


def format_realization_sweep(result: RealizationSweepResult) -> str:
    """Render the Fig. 6 series."""
    title = (
        f"Fig. 6 -- acceptance probability vs number of realizations "
        f"({result.dataset or 'dataset'}; pair {result.source}->{result.target}; "
        f"beta={result.beta:.3f})"
    )
    return format_table(list(result.rows), title=title)
