"""Experiment E1: the dataset statistics of Table I.

Builds each synthetic stand-in, measures its statistics, and reports them
side by side with the numbers the paper gives for the original SNAP graphs
so the scaling substitution is always visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.graph.metrics import compute_stats
from repro.experiments.reporting import format_table
from repro.utils.rng import RandomSource, derive_rng

__all__ = ["DatasetRow", "run_datasets_table", "format_datasets_table"]


@dataclass(frozen=True, slots=True)
class DatasetRow:
    """One row of the Table I reproduction."""

    dataset: str
    nodes: int
    edges: int
    avg_degree: float
    paper_nodes: int
    paper_edges: int
    paper_avg_degree: float
    scale: float

    def as_dict(self) -> dict:
        """Row in reporting order."""
        return {
            "dataset": self.dataset,
            "nodes": self.nodes,
            "edges": self.edges,
            "avg_degree": round(self.avg_degree, 2),
            "paper_nodes": self.paper_nodes,
            "paper_edges": self.paper_edges,
            "paper_avg_degree": self.paper_avg_degree,
            "scale": self.scale,
        }


def run_datasets_table(
    datasets: tuple[str, ...] = DATASET_NAMES,
    scale: float | None = None,
    rng: RandomSource = None,
) -> list[DatasetRow]:
    """Build every stand-in and collect its Table-I statistics."""
    rows: list[DatasetRow] = []
    for name in datasets:
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=scale, rng=derive_rng(rng, f"dataset-{name}"))
        stats = compute_stats(graph, name=name)
        rows.append(
            DatasetRow(
                dataset=name,
                nodes=stats.num_nodes,
                edges=stats.num_edges,
                avg_degree=stats.avg_degree,
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
                paper_avg_degree=spec.paper_avg_degree,
                scale=scale if scale is not None else spec.default_scale,
            )
        )
    return rows


def format_datasets_table(rows: list[DatasetRow]) -> str:
    """Render the Table I reproduction."""
    return format_table([row.as_dict() for row in rows], title="Table I -- dataset statistics")
