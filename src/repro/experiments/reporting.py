"""Plain-text rendering of experiment tables and series.

The benchmarks print their results through these helpers so the console
output mirrors the rows of the paper's tables and the data series behind
its figures (this reproduction does not plot; the numbers are the
deliverable and EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    points: Iterable[tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, title=title)
