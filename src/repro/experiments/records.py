"""Persisting experiment results.

Every experiment runner returns a small frozen dataclass.  This module
converts those results (and the algorithm results they embed) into plain
JSON-serializable structures and writes/reads them, so a benchmark run can
be archived and compared against later runs without re-executing anything.

The conversion is generic: dataclasses become dicts (with an added
``"__type__"`` tag), sets become sorted lists, enums become their values,
and mappings/sequences are converted recursively.  Loading returns plain
dicts/lists -- the goal is archival and diffing, not object round-tripping.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Union

from repro.types import ordered

__all__ = ["to_jsonable", "save_record", "load_record"]

PathLike = Union[str, Path]


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable primitives.

    Supported inputs: dataclass instances, enums, mappings, sets/frozensets,
    sequences, and JSON primitives.  Anything else falls back to ``repr``
    (better an inspectable string in the archive than a crash).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        payload["__type__"] = type(value).__name__
        return payload
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return [to_jsonable(item) for item in ordered(value)]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def save_record(path: PathLike, name: str, result: Any, metadata: dict | None = None) -> dict:
    """Serialize an experiment result to a JSON file and return the payload.

    Parameters
    ----------
    path:
        Destination file (created or overwritten).
    name:
        Experiment identifier (e.g. ``"fig3/wiki"``).
    result:
        The result object returned by an experiment runner (or any structure
        supported by :func:`to_jsonable`).
    metadata:
        Optional extra context (configuration, seeds, graph provenance).
    """
    record = {
        "name": name,
        "metadata": to_jsonable(metadata or {}),
        "result": to_jsonable(result),
    }
    Path(path).write_text(json.dumps(record, indent=2, sort_keys=True), encoding="utf-8")
    return record


def load_record(path: PathLike) -> dict:
    """Load a record previously written by :func:`save_record`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
