"""Persisting experiment results.

Every experiment runner returns a small frozen dataclass.  This module
converts those results (and the algorithm results they embed) into plain
JSON-serializable structures and writes/reads them, so a benchmark run can
be archived and compared against later runs without re-executing anything.

The conversion is generic: dataclasses become dicts (with an added
``"__type__"`` tag), sets become sorted lists, enums become their values,
and mappings/sequences are converted recursively.  Loading returns plain
dicts/lists -- the goal is archival and diffing, not object round-tripping.

:class:`RecordStore` layers a directory of one-record-per-file JSON archives
on top: records are keyed by name, written as they are produced (streaming),
and a name that already has a file is detectable up front -- which is what
lets the scenario-matrix runner (:mod:`repro.experiments.matrix`) resume
from the cells a previous run completed.  The JSON encoding is canonical
(sorted keys, fixed indentation), so two runs that compute the same record
produce byte-identical files.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import re
from pathlib import Path
from typing import Any, Iterator, Union

from repro.types import ordered

__all__ = ["to_jsonable", "save_record", "load_record", "RecordStore"]

PathLike = Union[str, Path]

#: Characters allowed verbatim in a record filename; anything else maps to "-".
_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]")


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable primitives.

    Supported inputs: dataclass instances, enums, mappings, sets/frozensets,
    sequences, and JSON primitives.  Anything else falls back to ``repr``
    (better an inspectable string in the archive than a crash).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        payload["__type__"] = type(value).__name__
        return payload
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return [to_jsonable(item) for item in ordered(value)]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def save_record(path: PathLike, name: str, result: Any, metadata: dict | None = None) -> dict:
    """Serialize an experiment result to a JSON file and return the payload.

    Parameters
    ----------
    path:
        Destination file (created or overwritten).
    name:
        Experiment identifier (e.g. ``"fig3/wiki"``).
    result:
        The result object returned by an experiment runner (or any structure
        supported by :func:`to_jsonable`).
    metadata:
        Optional extra context (configuration, seeds, graph provenance).
    """
    record = {
        "name": name,
        "metadata": to_jsonable(metadata or {}),
        "result": to_jsonable(result),
    }
    path = Path(path)
    # Write-then-rename so an interrupted run never leaves a truncated
    # record behind (a half-written file would satisfy resume checks).
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_text(json.dumps(record, indent=2, sort_keys=True), encoding="utf-8")
    os.replace(scratch, path)
    return record


def load_record(path: PathLike) -> dict:
    """Load a record previously written by :func:`save_record`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


class RecordStore:
    """A directory of JSON records, one file per record name.

    The store is deliberately dumb -- files named ``<name>.json`` under one
    directory -- so its contents stay greppable, diffable and usable without
    the library.  Names are sanitized to filesystem-safe characters; two
    distinct names that sanitize identically would collide, so callers
    should stick to ``[A-Za-z0-9._-]`` keys (the matrix runner's cell ids
    do).
    """

    def __init__(self, directory: PathLike) -> None:
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        """The directory holding the record files."""
        return self._directory

    def path_for(self, name: str) -> Path:
        """The file a record of this name is (or would be) stored at."""
        return self._directory / f"{_SAFE_NAME.sub('-', name)}.json"

    def has(self, name: str) -> bool:
        """Whether a record of this name has been saved."""
        return self.path_for(name).is_file()

    def save(self, name: str, result: Any, metadata: dict | None = None) -> dict:
        """Write one record (creating the directory on first use)."""
        self._directory.mkdir(parents=True, exist_ok=True)
        return save_record(self.path_for(name), name, result, metadata=metadata)

    def load(self, name: str) -> dict:
        """Load one record by name (``FileNotFoundError`` if absent)."""
        return load_record(self.path_for(name))

    def names(self) -> list[str]:
        """Sorted names of all saved records (from the files' own payloads)."""
        if not self._directory.is_dir():
            return []
        return sorted(
            load_record(path)["name"] for path in self._directory.glob("*.json")
        )

    def __iter__(self) -> Iterator[dict]:
        """Iterate the saved records in sorted-filename order."""
        if not self._directory.is_dir():
            return iter(())
        return iter(load_record(path) for path in sorted(self._directory.glob("*.json")))

    def __len__(self) -> int:
        if not self._directory.is_dir():
            return 0
        return sum(1 for _ in self._directory.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<RecordStore {str(self._directory)!r} records={len(self)}>"
