"""Shared helpers for the experiment runners."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.problem import ActiveFriendingProblem
from repro.diffusion.engine import SamplingEngine, resolve_engine
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.exceptions import ExperimentError
from repro.graph.social_graph import SocialGraph
from repro.parallel.engine import maybe_parallel
from repro.pool.sample_pool import SamplePool
from repro.types import NodeId
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive_int

__all__ = ["evaluate_invitation", "growth_curve"]


def evaluate_invitation(
    graph: SocialGraph,
    source: NodeId,
    target: NodeId,
    invitation: Iterable[NodeId],
    num_samples: int = 400,
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
    service=None,
) -> float:
    """Monte Carlo estimate of ``f(invitation)`` used throughout the harness.

    ``engine=None`` evaluates by forward Process-1 simulation (the paper's
    protocol, independent of the sampler being evaluated); passing a
    sampling engine (instance or backend name) switches to the covered-trace
    estimator of Lemma 2, whose batches ``workers`` optionally fans over a
    worker pool.  A ``pool`` (:class:`~repro.pool.SamplePool`) serves the
    Lemma-2 traces from its cached evaluation stream, so scoring many
    candidate invitations for one pair samples the paths once.  A
    ``service`` (:class:`~repro.service.QueryService`) submits the
    evaluation as a query instead, so identical concurrent evaluations
    coalesce and every evaluation shares the service's warm pool
    (``graph`` must be the service's graph; the other sampling arguments
    are ignored -- the service owns engine, workers and streams).
    """
    require_positive_int(num_samples, "num_samples")
    if service is not None:
        if service.graph is not graph:
            raise ExperimentError(
                "the service was built on a different graph than the one being evaluated"
            )
        return service.evaluate(source, target, invitation, num_samples=num_samples).probability
    estimate = estimate_acceptance_probability(
        graph,
        source,
        target,
        invitation,
        num_samples=num_samples,
        rng=rng,
        engine=engine,
        workers=workers,
        pool=pool,
    )
    return estimate.probability


def growth_curve(
    problem: ActiveFriendingProblem,
    ranking: Sequence[NodeId],
    target_probability: float,
    num_samples: int = 400,
    size_step: int | None = None,
    max_size: int | None = None,
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
    service=None,
) -> list[tuple[int, float]]:
    """Grow a ranked invitation set until it matches a target probability.

    Used by the Fig. 4 / Fig. 5 comparisons: the baseline's ranking is
    consumed prefix by prefix, estimating ``f(prefix)`` at each step, until
    the estimated probability reaches ``target_probability`` or the ranking
    is exhausted.  Returns the ``(size, probability)`` trajectory, including
    the final point.

    ``size_step`` controls the growth granularity (default: roughly 20
    evaluation points across the full ranking, at least 1), which keeps the
    number of expensive Monte Carlo evaluations bounded on large rankings.

    A ``pool`` makes the whole trajectory reuse one cached evaluation
    stream: every prefix is scored against the *same* traces (common random
    numbers -- the curve is monotone in the prefix by construction), and
    only the first evaluation pays the sampling cost.  A ``service`` does
    the same through its shared pool, additionally coalescing with any
    identical evaluation traffic other callers submit concurrently.
    """
    require_positive_int(num_samples, "num_samples")
    generator = ensure_rng(rng)
    if service is not None:
        engine = None
        workers = None
        pool = None
    elif pool is not None:
        engine = None
        workers = None
    elif engine is not None:
        # Wrap once before the loop: per-prefix wrapping would fork (and
        # tear down) a fresh worker pool for every evaluation point.
        engine = maybe_parallel(resolve_engine(problem.graph, engine), workers)
        workers = None
    limit = len(ranking) if max_size is None else min(max_size, len(ranking))
    if limit == 0:
        return []
    if size_step is None:
        size_step = max(1, limit // 20)
    require_positive_int(size_step, "size_step")

    trajectory: list[tuple[int, float]] = []
    size = 0
    while size < limit:
        size = min(size + size_step, limit)
        prefix = frozenset(ranking[:size])
        probability = evaluate_invitation(
            problem.graph,
            problem.source,
            problem.target,
            prefix,
            num_samples=num_samples,
            rng=generator,
            engine=engine,
            workers=workers,
            pool=pool,
            service=service,
        )
        trajectory.append((size, probability))
        if probability >= target_probability:
            break
    return trajectory
