"""Experiment harness reproducing every table and figure of Sec. IV.

Each experiment module exposes a ``run_*`` function returning a small,
serializable result object with the same rows/series the paper reports,
plus a ``format_*`` helper used by the benchmarks and examples to print
them.  The mapping to the paper is:

========================  =============================================
paper artefact            module
========================  =============================================
Table I (datasets)        :mod:`repro.experiments.datasets_table`
Fig. 3 (basic)            :mod:`repro.experiments.basic_experiment`
Fig. 4 (vs HD)            :mod:`repro.experiments.ratio_comparison`
Fig. 5 (vs SP)            :mod:`repro.experiments.ratio_comparison`
Table II (vs Vmax)        :mod:`repro.experiments.vmax_comparison`
Fig. 6 (realizations)     :mod:`repro.experiments.realization_sweep`
========================  =============================================

Beyond the paper's artefacts, :mod:`repro.experiments.matrix` runs whole
scenario grids -- (dataset × algorithm × budget × engine) cells executed in
parallel with resumable, byte-stable per-cell JSON records
(:class:`~repro.experiments.records.RecordStore`).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.pair_selection import select_pairs
from repro.experiments.harness import evaluate_invitation, growth_curve
from repro.experiments.datasets_table import DatasetRow, format_datasets_table, run_datasets_table
from repro.experiments.basic_experiment import (
    BasicExperimentResult,
    format_basic_experiment,
    run_basic_experiment,
)
from repro.experiments.ratio_comparison import (
    RatioComparisonResult,
    format_ratio_comparison,
    run_ratio_comparison,
)
from repro.experiments.vmax_comparison import (
    VmaxComparisonResult,
    format_vmax_comparison,
    run_vmax_comparison,
)
from repro.experiments.realization_sweep import (
    RealizationSweepResult,
    format_realization_sweep,
    run_realization_sweep,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.records import RecordStore, load_record, save_record, to_jsonable
from repro.experiments.matrix import (
    MATRIX_ALGORITHM_NAMES,
    MatrixCell,
    MatrixResult,
    MatrixSpec,
    format_matrix,
    run_matrix,
    run_matrix_cell,
)

__all__ = [
    "to_jsonable",
    "save_record",
    "load_record",
    "RecordStore",
    "MATRIX_ALGORITHM_NAMES",
    "MatrixCell",
    "MatrixResult",
    "MatrixSpec",
    "run_matrix",
    "run_matrix_cell",
    "format_matrix",
    "ExperimentConfig",
    "select_pairs",
    "evaluate_invitation",
    "growth_curve",
    "DatasetRow",
    "run_datasets_table",
    "format_datasets_table",
    "BasicExperimentResult",
    "run_basic_experiment",
    "format_basic_experiment",
    "RatioComparisonResult",
    "run_ratio_comparison",
    "format_ratio_comparison",
    "VmaxComparisonResult",
    "run_vmax_comparison",
    "format_vmax_comparison",
    "RealizationSweepResult",
    "run_realization_sweep",
    "format_realization_sweep",
    "format_table",
    "format_series",
]
