"""Experiments E3 and E4: the size-ratio comparisons of Figs. 4 and 5.

Protocol (Sec. IV-B / IV-C): for each pair, run RAF to get ``I_RAF`` and
``f(I_RAF)``; then grow the baseline's invitation set (HD for Fig. 4, SP
for Fig. 5) until it reaches the same acceptance probability, recording the
``(f(I_B)/f(I_RAF), |I_B|/|I_RAF|)`` trajectory along the way.  The paper
bins the x axis into five intervals over (0, 1] and plots the average size
ratio per bin; this module reproduces exactly those binned series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.high_degree import rank_by_degree
from repro.baselines.shortest_path import rank_by_shortest_paths
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import run_raf
from repro.exceptions import AlgorithmError, ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import evaluate_invitation, growth_curve
from repro.experiments.reporting import format_table
from repro.graph.social_graph import SocialGraph
from repro.types import Interval, PairSpec
from repro.utils.rng import RandomSource, derive_rng

__all__ = ["RatioComparisonResult", "run_ratio_comparison", "format_ratio_comparison"]

#: Ranking functions for the two baselines compared in the paper.
_BASELINE_RANKINGS = {
    "HD": rank_by_degree,
    "SP": rank_by_shortest_paths,
}


@dataclass(frozen=True)
class RatioComparisonResult:
    """Binned size-ratio curve of Fig. 4 (baseline = HD) or Fig. 5 (SP).

    ``bins`` holds one mapping per x-axis bin with keys
    ``probability_ratio`` (bin midpoint), ``size_ratio`` (average
    ``|I_B|/|I_RAF|`` of the trajectory points falling in the bin) and
    ``points`` (how many trajectory points the bin aggregates).
    """

    dataset: str
    baseline: str
    alpha: float
    num_pairs: int
    bins: tuple[dict, ...]
    raw_points: tuple[tuple[float, float], ...]

    def series(self) -> list[tuple[float, float]]:
        """The (probability ratio, size ratio) curve, one point per bin."""
        return [(row["probability_ratio"], row["size_ratio"]) for row in self.bins]


def _bin_points(
    points: list[tuple[float, float]], num_bins: int = 5
) -> tuple[dict, ...]:
    """Average the size ratios within equal-width probability-ratio bins."""
    intervals = Interval.partition(0.0, 1.0, num_bins)
    rows: list[dict] = []
    for interval in intervals:
        members = [size for ratio, size in points if interval.contains(min(ratio, 1.0 - 1e-12))]
        if not members:
            continue
        rows.append(
            {
                "probability_ratio": round(interval.midpoint, 3),
                "size_ratio": sum(members) / len(members),
                "points": len(members),
            }
        )
    return tuple(rows)


def run_ratio_comparison(
    graph: SocialGraph,
    pairs: list[PairSpec],
    config: ExperimentConfig,
    baseline: str = "HD",
    alpha: float = 0.1,
    dataset_name: str = "",
    max_growth_factor: int = 40,
    rng: RandomSource = None,
) -> RatioComparisonResult:
    """Run the Fig. 4 / Fig. 5 protocol for one baseline on one dataset.

    ``max_growth_factor`` caps the baseline's invitation budget at
    ``max_growth_factor · |I_RAF|`` so a baseline that never catches up (HD
    on large graphs) cannot make the experiment run forever; the paper's
    y-axis saturating in the thousands corresponds to the same phenomenon.
    """
    try:
        ranking_function = _BASELINE_RANKINGS[baseline]
    except KeyError:
        raise ExperimentError(
            f"unknown baseline {baseline!r}; expected one of {', '.join(_BASELINE_RANKINGS)}"
        ) from None

    points: list[tuple[float, float]] = []
    used_pairs = 0
    for index, pair in enumerate(pairs):
        pair_rng = derive_rng(rng, f"ratio-{baseline}-{index}")
        problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=alpha)
        try:
            raf = run_raf(problem, config.raf_config(alpha), rng=pair_rng)
        except AlgorithmError:
            continue
        raf_probability = evaluate_invitation(
            graph,
            pair.source,
            pair.target,
            raf.invitation,
            num_samples=config.eval_samples,
            rng=derive_rng(pair_rng, "raf-eval"),
        )
        if raf_probability <= 0.0:
            continue
        used_pairs += 1
        ranking = ranking_function(problem)
        trajectory = growth_curve(
            problem,
            ranking,
            target_probability=raf_probability,
            num_samples=config.eval_samples,
            max_size=max_growth_factor * max(1, raf.size),
            rng=derive_rng(pair_rng, "growth"),
        )
        for size, probability in trajectory:
            points.append((probability / raf_probability, size / max(1, raf.size)))

    return RatioComparisonResult(
        dataset=dataset_name,
        baseline=baseline,
        alpha=alpha,
        num_pairs=used_pairs,
        bins=_bin_points(points),
        raw_points=tuple(points),
    )


def format_ratio_comparison(result: RatioComparisonResult) -> str:
    """Render the binned Fig. 4 / Fig. 5 series for one dataset."""
    figure = "Fig. 4" if result.baseline == "HD" else "Fig. 5"
    title = (
        f"{figure} -- invitation-size ratio vs {result.baseline} "
        f"({result.dataset or 'dataset'}; alpha={result.alpha}; {result.num_pairs} pairs)"
    )
    return format_table(list(result.bins), title=title)
