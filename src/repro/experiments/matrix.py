"""Scenario-matrix experiment runner.

The experiment harness reproduces the paper's figures one at a time; serving
many scenarios -- the ROADMAP's "heavy traffic" story -- instead needs a
*grid*: every combination of (dataset × algorithm × budget × engine) run as
an independent cell.  This module provides that runner:

* :class:`MatrixSpec` declares the grid axes plus the shared protocol knobs
  (scale, alpha, realization and evaluation budgets, screening rule, seed).
* :func:`run_matrix` executes the cells -- in parallel over a worker pool
  when ``workers`` is given -- and **streams** each finished cell as one
  structured JSON record into a :class:`~repro.experiments.records.RecordStore`
  directory.  A rerun over the same directory *resumes*: cells that already
  have a record are skipped, so an interrupted sweep only pays for what is
  missing.  Records are stamped with a fingerprint of the protocol knobs,
  and resuming over records produced under a *different* protocol (other
  seed, scale, alpha, ...) fails loudly instead of returning stale
  results; extending the grid axes over an existing directory is fine.

Every cell is a pure function of ``(spec, cell)``: its graph, its screened
(initiator, target) pair and every random stream it consumes are derived
from ``spec.seed`` with SHA-256 label mixing
(:func:`repro.utils.rng.derive_rng`), never from global state or from the
order in which cells happen to execute.  Records therefore contain no
wall-clock or host-dependent fields and are byte-identical across runs,
worker counts and resume boundaries -- ``diff -r`` of two output
directories is the integrity check.

Reverse samples flow through a per-(dataset, engine) shared
:class:`~repro.pool.SamplePool` whose streams are canonical functions of
``(spec.seed, dataset, engine)`` (DESIGN.md §4): the realization samples
and the evaluation samples of every cell of one dataset are prefixes of
the same two streams, so cells sharing a dataset reuse each other's
samples instead of re-drawing them.  ``spec.pool`` toggles only that
*reuse* -- with ``pool=False`` every cell re-draws the same canonical
streams -- so records are byte-identical across pool settings too, and the
pool knobs are deliberately excluded from the resume fingerprint.

The cells share *budget* semantics: every algorithm is given the same
invitation budget and the recorded metric is the estimated acceptance
probability ``f(I)``.  The ``raf`` algorithm is the paper's realization
machinery under that budget (the budgeted extension of
:func:`repro.core.maximization.maximize_acceptance_probability`, i.e. sample
backward traces, cover as much trace weight as the budget allows); ``hd``,
``sp`` and ``random`` are the corresponding baselines.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass
from typing import Callable

from repro.baselines.high_degree import high_degree_invitation
from repro.baselines.random_invite import random_invitation
from repro.baselines.shortest_path import shortest_path_invitation
from repro.core.maximization import maximize_acceptance_probability
from repro.core.problem import ActiveFriendingProblem
from repro.diffusion.engine import create_engine, require_engine_name
from repro.exceptions import ExperimentError
from repro.experiments.harness import evaluate_invitation
from repro.experiments.pair_selection import select_pairs
from repro.experiments.records import RecordStore, to_jsonable
from repro.experiments.reporting import format_table
from repro.graph.compiled import CompiledGraph, read_snapshot_meta
from repro.graph.datasets import DATASET_NAMES, load_dataset
from repro.parallel.engine import fork_available, resolve_worker_count
from repro.pool.sample_pool import SamplePool
from repro.types import ordered
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.validation import require, require_positive, require_positive_int

__all__ = [
    "MATRIX_ALGORITHM_NAMES",
    "MatrixCell",
    "MatrixSpec",
    "MatrixResult",
    "run_matrix",
    "run_matrix_cell",
    "format_matrix",
]


@dataclass(frozen=True, slots=True)
class MatrixCell:
    """One grid point: a dataset, an algorithm, a budget and an engine."""

    dataset: str
    algorithm: str
    budget: int
    engine: str

    @property
    def cell_id(self) -> str:
        """Stable identifier, used as the record name (and file stem)."""
        return f"{self.dataset}__{self.algorithm}__b{self.budget}__{self.engine}"


@dataclass(frozen=True)
class MatrixSpec:
    """The grid axes and shared protocol knobs of one matrix run.

    Attributes
    ----------
    datasets, algorithms, budgets, engines:
        The grid axes.  Cells are the full cartesian product, enumerated in
        the declared order (datasets outermost, engines innermost).
    scale:
        Generation scale for the dataset stand-ins (``None`` uses each
        dataset's default).
    alpha:
        Target fraction of ``pmax`` used to define the problem instances.
    realizations:
        Backward traces sampled by the realization-based algorithm.
    eval_samples:
        Reverse samples used to estimate ``f(I)`` of each cell's output.
    screen_samples, pmax_threshold, pmax_ceiling, min_distance:
        The pair-screening rule (one pair per dataset, shared by all of the
        dataset's cells so algorithms are compared on identical instances).
    seed:
        Base seed; every per-cell stream is derived from it by label.
    pool:
        Whether the per-(dataset, engine) sample pool *caches* (default).
        ``False`` re-draws every request from the same canonical streams:
        slower, byte-identical records (so the knob is excluded from the
        resume fingerprint).
    pool_budget:
        Optional cap on the paths each pool keeps cached (also
        byte-neutral: evicted keys re-draw the same canonical chunks).
    """

    datasets: tuple[str, ...] = ("wiki", "hepth")
    algorithms: tuple[str, ...] = ("raf", "hd")
    budgets: tuple[int, ...] = (4, 8)
    engines: tuple[str, ...] = ("python",)
    scale: float | None = None
    alpha: float = 0.2
    realizations: int = 2_000
    eval_samples: int = 400
    screen_samples: int = 300
    pmax_threshold: float = 0.02
    pmax_ceiling: float = 0.9
    min_distance: int = 3
    seed: int = 2019
    pool: bool = True
    pool_budget: int | None = None
    snapshot: str | None = None

    def __post_init__(self) -> None:
        require(bool(self.datasets), "at least one dataset is required")
        require(bool(self.algorithms), "at least one algorithm is required")
        require(bool(self.budgets), "at least one budget is required")
        require(bool(self.engines), "at least one engine is required")
        allowed = DATASET_NAMES if self.snapshot is None else (*DATASET_NAMES, "snapshot")
        for name in self.datasets:
            if name not in allowed:
                raise ExperimentError(
                    f"unknown dataset {name!r}; available datasets: {', '.join(allowed)}"
                )
        if self.snapshot is None and "snapshot" in self.datasets:
            raise ExperimentError(
                "the 'snapshot' dataset requires the snapshot field (a compiled "
                "snapshot directory, e.g. --snapshot on the CLI)"
            )
        for name in self.algorithms:
            if name not in MATRIX_ALGORITHM_NAMES:
                raise ExperimentError(
                    f"unknown matrix algorithm {name!r}; "
                    f"available algorithms: {', '.join(MATRIX_ALGORITHM_NAMES)}"
                )
        for budget in self.budgets:
            require_positive_int(budget, "budget")
        for name in self.engines:
            require_engine_name(name)
        if self.scale is not None:
            require_positive(self.scale, "scale")
        require(0.0 < self.alpha <= 1.0, "alpha must lie in (0, 1]")
        require_positive_int(self.realizations, "realizations")
        require_positive_int(self.eval_samples, "eval_samples")
        require_positive_int(self.screen_samples, "screen_samples")
        require_positive(self.pmax_threshold, "pmax_threshold")
        require_positive(self.pmax_ceiling, "pmax_ceiling")
        require_positive_int(self.min_distance, "min_distance")
        if self.pool_budget is not None:
            require_positive_int(self.pool_budget, "pool_budget")

    def cells(self) -> tuple[MatrixCell, ...]:
        """The grid cells in deterministic enumeration order."""
        return tuple(
            MatrixCell(dataset=dataset, algorithm=algorithm, budget=budget, engine=engine)
            for dataset in self.datasets
            for algorithm in self.algorithms
            for budget in self.budgets
            for engine in self.engines
        )

    def fingerprint(self) -> str:
        """Digest of the *record-affecting* protocol knobs.

        Stored in each record's metadata and checked on resume, so a
        directory recorded under one protocol can never silently masquerade
        as the results of another (different seed, scale, alpha, ...).  The
        grid axes are deliberately excluded: a cell's record is a pure
        function of (protocol, cell), independent of which other cells the
        sweep happens to contain, so a grid may be *extended* over an
        existing directory (more budgets, more datasets) and still resume.
        The ``pool``/``pool_budget`` knobs are excluded too: they decide
        whether canonical samples are cached or re-drawn, never which
        samples a cell observes, so records from pooled and pool-free runs
        are interchangeable.
        """
        protocol = {
            # Version of the sampling-stream contract the cells follow.
            # Bumped when a release changes *which* samples a cell observes
            # (e.g. the PR-3 move to pool canonical streams), so records
            # from an older regime are rejected on resume instead of being
            # silently mixed with new ones.
            "stream_protocol": "pool-v1",
            "scale": self.scale,
            "alpha": self.alpha,
            "realizations": self.realizations,
            "eval_samples": self.eval_samples,
            "screen_samples": self.screen_samples,
            "pmax_threshold": self.pmax_threshold,
            "pmax_ceiling": self.pmax_ceiling,
            "min_distance": self.min_distance,
            "seed": self.seed,
        }
        if self.snapshot is not None:
            # The mapped snapshot IS protocol: records sampled from one
            # on-disk graph must never resume against another, so the
            # snapshot's CSR digest (not its path, which may be moved or
            # rewritten) is bound into the fingerprint.  Absent for
            # snapshot-free runs, keeping their fingerprints unchanged.
            protocol["snapshot_digest"] = read_snapshot_meta(self.snapshot)["digest"]
        canonical = json.dumps(protocol, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class MatrixResult:
    """Outcome of one :func:`run_matrix` call.

    ``rows`` summarizes every cell of the grid (in enumeration order, loaded
    back from the record files so resumed and fresh cells are
    indistinguishable); ``computed`` and ``skipped`` list the cell ids this
    particular call executed vs found already recorded.
    """

    rows: tuple[dict, ...]
    output_dir: str
    computed: tuple[str, ...]
    skipped: tuple[str, ...]


# --------------------------------------------------------------------------- #
# Cell algorithms (shared budget semantics: invitation of <= budget users)
# --------------------------------------------------------------------------- #


def _run_raf_cell(problem, cell, spec, rng, pool):
    result = maximize_acceptance_probability(
        problem.graph,
        problem.source,
        problem.target,
        budget=cell.budget,
        num_realizations=spec.realizations,
        rng=rng,
        engine=cell.engine,
        pool=pool,
    )
    extras = {
        "num_realizations": result.num_realizations,
        "num_type1": result.num_type1,
        "covered_weight": result.covered_weight,
        "estimated_fraction_of_pmax": result.estimated_fraction_of_pmax,
    }
    return result.invitation, extras


def _run_hd_cell(problem, cell, spec, rng, pool):
    return high_degree_invitation(problem, cell.budget).invitation, {}


def _run_sp_cell(problem, cell, spec, rng, pool):
    return shortest_path_invitation(problem, cell.budget).invitation, {}


def _run_random_cell(problem, cell, spec, rng, pool):
    return random_invitation(problem, cell.budget, rng=rng).invitation, {}


_MATRIX_ALGORITHMS: dict[str, Callable] = {
    "raf": _run_raf_cell,
    "hd": _run_hd_cell,
    "sp": _run_sp_cell,
    "random": _run_random_cell,
}

#: Algorithm names accepted on the ``algorithms`` axis (and the CLI flag).
MATRIX_ALGORITHM_NAMES: tuple[str, ...] = tuple(_MATRIX_ALGORITHMS)


# --------------------------------------------------------------------------- #
# Cell execution
# --------------------------------------------------------------------------- #

#: Per-process cache of loaded graphs and screened pairs, keyed by the
#: instance-affecting spec fields + dataset.  Cells of one dataset share the
#: graph and the pair; caching them saves a re-generation per cell both
#: serially and inside each pool worker.  Bounded FIFO so long-lived
#: processes sweeping many specs do not accumulate graphs forever.
_DATASET_CACHE: dict = {}
_DATASET_CACHE_LIMIT = 8

#: Per-process cache of the shared sample pools, one per (dataset, engine)
#: under one protocol.  With multi-process cell execution each worker grows
#: its own shard lazily; because pool streams are canonical functions of
#: ``(spec.seed, dataset, engine)``, the shards observe identical samples at
#: identical indices, so the sharding (like the worker count) never shows up
#: in a record's bytes.
_POOL_CACHE: dict = {}
_POOL_CACHE_LIMIT = 8


def _dataset_instance(spec: MatrixSpec, dataset: str):
    key = (
        dataset,
        spec.snapshot,
        spec.scale,
        spec.seed,
        spec.screen_samples,
        spec.pmax_threshold,
        spec.pmax_ceiling,
        spec.min_distance,
    )
    if key not in _DATASET_CACHE:
        while len(_DATASET_CACHE) >= _DATASET_CACHE_LIMIT:
            _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
        if dataset == "snapshot":
            # A memory-mapped on-disk snapshot: opened per process (workers
            # re-map by path), screened with the same derived stream as any
            # other dataset so records stay worker-count independent.
            graph = CompiledGraph.open(spec.snapshot)
        else:
            graph = load_dataset(
                dataset, scale=spec.scale, rng=derive_rng(spec.seed, f"matrix-graph-{dataset}")
            )
        pair = select_pairs(
            graph,
            1,
            pmax_threshold=spec.pmax_threshold,
            pmax_ceiling=spec.pmax_ceiling,
            min_distance=spec.min_distance,
            screen_samples=spec.screen_samples,
            rng=derive_rng(spec.seed, f"matrix-pair-{dataset}"),
            engine="python",
        )[0]
        _DATASET_CACHE[key] = (graph, pair)
    return _DATASET_CACHE[key]


def _cell_pool(spec: MatrixSpec, cell: MatrixCell, graph) -> SamplePool:
    key = (
        cell.dataset,
        cell.engine,
        spec.scale,
        spec.seed,
        spec.pool,
        spec.pool_budget,
    )
    cached = _POOL_CACHE.get(key)
    # The pool's engine is compiled from one specific graph *object*; if the
    # dataset cache rebuilt the graph since (eviction, or a spec differing in
    # an instance-affecting knob outside this key), the pool must be rebuilt
    # on the live object.  Rebuilding is cheap and byte-neutral: the streams
    # are functions of the seed, so a fresh pool re-draws identical samples.
    if cached is None or cached[0] is not graph:
        while len(_POOL_CACHE) >= _POOL_CACHE_LIMIT:
            _POOL_CACHE.pop(next(iter(_POOL_CACHE)))
        pool = SamplePool(
            create_engine(graph, cell.engine),
            seed=derive_seed(spec.seed, f"matrix-pool-{cell.dataset}-{cell.engine}"),
            budget=spec.pool_budget,
            reuse=spec.pool,
        )
        _POOL_CACHE[key] = (graph, pool)
    return _POOL_CACHE[key][1]


def run_matrix_cell(spec: MatrixSpec, cell: MatrixCell) -> dict:
    """Execute one cell and return its JSON-ready record payload.

    The payload is a pure function of ``(spec, cell)``: all randomness comes
    from streams derived from ``spec.seed`` by cell-scoped labels, and no
    wall-clock or host-dependent field is included, so the same cell always
    produces the same bytes once serialized canonically.
    """
    graph, pair = _dataset_instance(spec, cell.dataset)
    pool = _cell_pool(spec, cell, graph)
    problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=spec.alpha)
    run_algorithm = _MATRIX_ALGORITHMS[cell.algorithm]
    invitation, extras = run_algorithm(
        problem, cell, spec, derive_rng(spec.seed, f"matrix-run-{cell.cell_id}"), pool
    )
    acceptance = evaluate_invitation(
        graph,
        pair.source,
        pair.target,
        invitation,
        num_samples=spec.eval_samples,
        rng=derive_rng(spec.seed, f"matrix-eval-{cell.cell_id}"),
        engine=cell.engine,
        pool=pool,
    )
    return {
        "cell": {
            "dataset": cell.dataset,
            "algorithm": cell.algorithm,
            "budget": cell.budget,
            "engine": cell.engine,
        },
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges, "scale": spec.scale},
        "pair": {"source": pair.source, "target": pair.target, "screened_pmax": pair.pmax},
        "invitation": list(ordered(invitation)),
        "size": len(invitation),
        "acceptance": acceptance,
        "eval_samples": spec.eval_samples,
        "extras": extras,
        "seed": spec.seed,
        "alpha": spec.alpha,
    }


def _compute_cell(payload: tuple[MatrixSpec, MatrixCell]) -> tuple[str, dict]:
    spec, cell = payload
    return cell.cell_id, run_matrix_cell(spec, cell)


def run_matrix(
    spec: MatrixSpec,
    output_dir,
    workers: int | str | None = None,
    resume: bool = True,
    echo: Callable[[str], None] | None = None,
) -> MatrixResult:
    """Run every cell of the grid, streaming records to ``output_dir``.

    Parameters
    ----------
    spec:
        The grid definition.
    output_dir:
        Directory for the per-cell JSON records (one file per cell id,
        written by the parent process as each cell finishes).
    workers:
        Worker-process count for cell execution (``"auto"`` for the CPU
        count).  Cells are independent, so parallel execution changes only
        wall-clock time -- never a record's bytes.  Falls back to in-process
        execution when ``workers`` is ``None``/1 or ``fork`` is unavailable.
    resume:
        When true (default), cells whose record file already exists *and*
        carries this spec's protocol fingerprint are skipped; a record
        produced under a different protocol (other seed, scale, alpha,
        ...) raises :class:`~repro.exceptions.ExperimentError` instead of
        silently standing in for the requested results.  Pass ``False``
        to recompute everything.
    echo:
        Optional progress sink (e.g. ``print``); receives one line per cell.
    """
    say = echo if echo is not None else (lambda message: None)
    store = RecordStore(output_dir)
    cells = spec.cells()
    fingerprint = spec.fingerprint()
    archived_spec = to_jsonable(spec)
    # The pool knobs never influence a record's bytes (they toggle caching of
    # canonical streams, not the streams themselves), so they are kept out of
    # the archived spec -- like the fingerprint, record files are identical
    # across pool settings.  The snapshot *path* is likewise excluded: it is
    # host-dependent, and the content that matters is already bound into the
    # fingerprint as snapshot_digest.
    for knob in ("pool", "pool_budget", "snapshot"):
        archived_spec.pop(knob, None)
    metadata = {"spec_fingerprint": fingerprint, "spec": archived_spec}
    pending: list[MatrixCell] = []
    skipped: list[str] = []
    for cell in cells:
        if resume and store.has(cell.cell_id):
            recorded = store.load(cell.cell_id)["metadata"].get("spec_fingerprint")
            if recorded != fingerprint:
                raise ExperimentError(
                    f"record {cell.cell_id!r} in {store.directory} was produced by a "
                    "different matrix spec (fingerprint "
                    f"{recorded} != {fingerprint}); rerun with resume disabled "
                    "(--fresh) or point --output at a different directory"
                )
            skipped.append(cell.cell_id)
        else:
            pending.append(cell)

    count = resolve_worker_count(workers) or 1
    say(
        f"matrix: {len(cells)} cells ({len(skipped)} already recorded, "
        f"{len(pending)} to run, workers={count})"
    )
    if pending:
        payloads = [(spec, cell) for cell in pending]
        if count > 1 and len(pending) > 1 and fork_available():
            context = multiprocessing.get_context("fork")
            with context.Pool(min(count, len(pending))) as pool:
                for cell_id, record in pool.imap_unordered(_compute_cell, payloads):
                    store.save(cell_id, record, metadata=metadata)
                    say(f"matrix: recorded {cell_id}")
        else:
            for payload in payloads:
                cell_id, record = _compute_cell(payload)
                store.save(cell_id, record, metadata=metadata)
                say(f"matrix: recorded {cell_id}")

    rows = tuple(store.load(cell.cell_id)["result"] for cell in cells)
    return MatrixResult(
        rows=rows,
        output_dir=str(store.directory),
        computed=tuple(cell.cell_id for cell in pending),
        skipped=tuple(skipped),
    )


def format_matrix(result: MatrixResult) -> str:
    """Human-readable summary table of a matrix run."""
    rows = [
        {
            "dataset": record["cell"]["dataset"],
            "algorithm": record["cell"]["algorithm"],
            "budget": record["cell"]["budget"],
            "engine": record["cell"]["engine"],
            "size": record["size"],
            "acceptance": record["acceptance"],
        }
        for record in result.rows
    ]
    title = (
        f"Scenario matrix ({len(result.rows)} cells; "
        f"{len(result.computed)} computed, {len(result.skipped)} resumed)"
    )
    return format_table(rows, title=title)
