"""Selecting (initiator, target) pairs for the experiments.

The paper randomly selects 500 pairs per dataset with ``pmax ≥ 0.01`` so
that the friending process is not hopeless.  The selection here follows the
same protocol, screening ``pmax`` with cheap reverse-sampling realizations,
and adds two practical filters (documented in DESIGN.md): a minimum graph
distance and a ``pmax`` ceiling, which keep the selected pairs in the same
"distant but reachable" regime as the paper when the stand-in graphs are
much smaller than the originals.
"""

from __future__ import annotations

from repro.diffusion.engine import SamplingEngine, resolve_engine
from repro.exceptions import ExperimentError
from repro.parallel.engine import maybe_parallel, sample_type1_indicators
from repro.pool.sample_pool import STREAM_PMAX, SamplePool
from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import bfs_distances
from repro.types import PairSpec
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.validation import require_positive, require_positive_int

__all__ = ["screen_pmax", "select_pairs"]


def screen_pmax(
    graph: SocialGraph,
    source,
    target,
    num_samples: int = 400,
    rng: RandomSource = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
) -> float:
    """Cheap ``pmax`` estimate: the fraction of type-1 reverse samples.

    By Corollary 2 the type indicator of a random realization is an
    unbiased estimator of ``pmax``, and a reverse sample costs only the
    traced path length, so this screen is far cheaper than simulating
    Process 1.  The samples are drawn as one engine batch, optionally
    fanned over ``workers`` processes (deterministic per seed for any
    worker count; see :mod:`repro.parallel.engine`).

    With a ``pool`` (:class:`~repro.pool.SamplePool`), the samples are the
    first ``num_samples`` of the pool's pmax stream for this (target, N_s)
    key: re-screening a pair -- or estimating its ``pmax`` properly later
    with :func:`repro.core.raf.estimate_pmax`, which shares the stream --
    reuses them instead of re-drawing (``engine``/``workers``/``rng`` are
    ignored in pool mode).
    """
    require_positive_int(num_samples, "num_samples")
    generator = ensure_rng(rng)
    source_friends = graph.neighbor_set(source)
    if pool is not None:
        resolve_engine(graph, pool.engine)
        hits = sum(pool.type1_indicators(target, source_friends, num_samples, stream=STREAM_PMAX))
        return hits / num_samples
    resolved = maybe_parallel(resolve_engine(graph, engine), workers)
    hits = sum(sample_type1_indicators(resolved, target, source_friends, num_samples, rng=generator))
    return hits / num_samples


def select_pairs(
    graph: SocialGraph,
    num_pairs: int,
    pmax_threshold: float = 0.01,
    pmax_ceiling: float = 1.0,
    min_distance: int = 2,
    screen_samples: int = 400,
    rng: RandomSource = None,
    max_attempts: int | None = None,
    engine: "SamplingEngine | str | None" = None,
    workers: int | str | None = None,
    pool: "SamplePool | None" = None,
) -> list[PairSpec]:
    """Randomly select experiment pairs satisfying the screening criteria.

    Parameters
    ----------
    graph:
        The weighted friendship graph.
    num_pairs:
        How many pairs to return.
    pmax_threshold, pmax_ceiling:
        Accepted range of the screened ``pmax`` (inclusive lower bound,
        inclusive upper bound).
    min_distance:
        Minimum unweighted graph distance between the two users; at least 2
        (the pair must not already be friends).
    screen_samples:
        Reverse samples used for the ``pmax`` screen.
    max_attempts:
        Candidate pairs examined before giving up (default
        ``200 * num_pairs``).
    engine:
        Reverse-sampling backend (instance or name) used for the screens;
        ``None`` selects the default pure-Python engine.
    workers:
        Optional worker-process count fanning each screen's samples over a
        pool (screened pmax values are identical for any worker count
        under a fixed seed).
    pool:
        Optional :class:`~repro.pool.SamplePool` serving the screens from
        its canonical cached streams (see :func:`screen_pmax`); the pool's
        engine takes precedence over ``engine``/``workers`` for the
        screening draws, while candidate *selection* still consumes ``rng``.

    Raises
    ------
    ExperimentError
        If not enough qualifying pairs were found within ``max_attempts``.
    """
    require_positive_int(num_pairs, "num_pairs")
    require_positive(pmax_threshold, "pmax_threshold")
    require_positive_int(min_distance, "min_distance")
    if min_distance < 2:
        raise ExperimentError("min_distance must be at least 2 (non-friend pairs)")
    generator = ensure_rng(rng)
    resolved = maybe_parallel(resolve_engine(graph, engine), workers)
    nodes = graph.node_list()
    if len(nodes) < 2:
        raise ExperimentError("the graph has fewer than two users")
    attempts_allowed = max_attempts if max_attempts is not None else 200 * num_pairs

    pairs: list[PairSpec] = []
    seen: set[tuple] = set()
    attempts = 0
    while len(pairs) < num_pairs and attempts < attempts_allowed:
        attempts += 1
        source, target = generator.sample(nodes, 2)
        key = (source, target)
        if key in seen:
            continue
        seen.add(key)
        if graph.has_edge(source, target):
            continue
        if graph.degree(source) == 0 or graph.degree(target) == 0:
            continue
        if min_distance > 2:
            distances = bfs_distances(graph, source)
            distance = distances.get(target)
            if distance is None or distance < min_distance:
                continue
        pmax = screen_pmax(
            graph, source, target, num_samples=screen_samples, rng=generator, engine=resolved,
            pool=pool,
        )
        if pmax < pmax_threshold or pmax > pmax_ceiling:
            continue
        pairs.append(PairSpec(source=source, target=target, pmax=pmax))

    if len(pairs) < num_pairs:
        raise ExperimentError(
            f"only {len(pairs)} of the requested {num_pairs} pairs satisfied the screening "
            f"criteria after {attempts} attempts; relax the thresholds or enlarge the graph"
        )
    return pairs
