"""Experiment E2: the basic experiment of Fig. 3.

For each α in the sweep and each selected (s, t) pair, run RAF to obtain an
invitation set, then give HD and SP the *same invitation budget* and
compare the resulting acceptance probabilities against each other and
against ``pmax``.  The paper reports, per dataset, four curves over α:
``pmax``, RAF, HD and SP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.high_degree import high_degree_invitation
from repro.baselines.shortest_path import shortest_path_invitation
from repro.core.problem import ActiveFriendingProblem
from repro.core.raf import run_raf
from repro.exceptions import AlgorithmError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import evaluate_invitation
from repro.experiments.reporting import format_table
from repro.graph.social_graph import SocialGraph
from repro.types import PairSpec
from repro.utils.rng import RandomSource, derive_rng

__all__ = ["BasicExperimentResult", "run_basic_experiment", "format_basic_experiment"]


@dataclass(frozen=True)
class BasicExperimentResult:
    """Per-α averages of the Fig. 3 experiment for one dataset.

    ``rows`` holds one mapping per α value with keys ``alpha``, ``pmax``,
    ``raf``, ``hd``, ``sp`` and ``avg_size`` (the shared invitation budget).
    """

    dataset: str
    num_pairs: int
    rows: tuple[dict, ...]

    def series(self, algorithm: str) -> list[tuple[float, float]]:
        """The (α, acceptance probability) curve of one algorithm."""
        return [(row["alpha"], row[algorithm]) for row in self.rows]


def run_basic_experiment(
    graph: SocialGraph,
    pairs: list[PairSpec],
    config: ExperimentConfig,
    dataset_name: str = "",
    rng: RandomSource = None,
) -> BasicExperimentResult:
    """Run the Fig. 3 protocol on pre-selected pairs of one dataset."""
    rows: list[dict] = []
    for alpha in config.alphas:
        raf_probabilities: list[float] = []
        hd_probabilities: list[float] = []
        sp_probabilities: list[float] = []
        pmax_values: list[float] = []
        sizes: list[int] = []
        for index, pair in enumerate(pairs):
            pair_rng = derive_rng(rng, f"basic-{alpha}-{index}")
            problem = ActiveFriendingProblem(graph, pair.source, pair.target, alpha=alpha)
            try:
                raf = run_raf(problem, config.raf_config(alpha), rng=pair_rng)
            except AlgorithmError:
                # The pair turned out to be unreachable at this sampling
                # budget; skip it for every algorithm so averages stay
                # comparable.
                continue
            budget = max(1, raf.size)
            hd = high_degree_invitation(problem, budget)
            sp = shortest_path_invitation(problem, budget)
            eval_rng = derive_rng(pair_rng, "evaluation")
            raf_probabilities.append(
                evaluate_invitation(
                    graph, pair.source, pair.target, raf.invitation,
                    num_samples=config.eval_samples, rng=derive_rng(eval_rng, "raf"),
                )
            )
            hd_probabilities.append(
                evaluate_invitation(
                    graph, pair.source, pair.target, hd.invitation,
                    num_samples=config.eval_samples, rng=derive_rng(eval_rng, "hd"),
                )
            )
            sp_probabilities.append(
                evaluate_invitation(
                    graph, pair.source, pair.target, sp.invitation,
                    num_samples=config.eval_samples, rng=derive_rng(eval_rng, "sp"),
                )
            )
            pmax_values.append(pair.pmax if pair.pmax is not None else raf.pmax_estimate)
            sizes.append(budget)
        count = len(raf_probabilities)
        if count == 0:
            continue
        rows.append(
            {
                "alpha": alpha,
                "pmax": sum(pmax_values) / count,
                "raf": sum(raf_probabilities) / count,
                "hd": sum(hd_probabilities) / count,
                "sp": sum(sp_probabilities) / count,
                "avg_size": sum(sizes) / count,
            }
        )
    return BasicExperimentResult(dataset=dataset_name, num_pairs=len(pairs), rows=tuple(rows))


def format_basic_experiment(result: BasicExperimentResult) -> str:
    """Render the Fig. 3 curves for one dataset as a table."""
    title = f"Fig. 3 -- basic experiment ({result.dataset or 'dataset'}; {result.num_pairs} pairs)"
    return format_table(list(result.rows), title=title)
