"""Tests for repro.estimation.stopping_rule (Dagum et al. / Alg. 2)."""

from __future__ import annotations

import random

import pytest

from repro.estimation.stopping_rule import (
    expected_sample_bound,
    stopping_rule_estimate,
    stopping_rule_estimate_batched,
    stopping_rule_threshold,
)
from repro.exceptions import EstimationError


class TestThreshold:
    def test_matches_formula(self):
        import math

        epsilon, delta = 0.1, 0.01
        expected = 1.0 + 4.0 * (math.e - 2.0) * 1.1 * math.log(200.0) / 0.01
        assert stopping_rule_threshold(epsilon, delta) == pytest.approx(expected)

    def test_decreasing_in_epsilon(self):
        assert stopping_rule_threshold(0.05, 0.01) > stopping_rule_threshold(0.2, 0.01)

    def test_increasing_as_delta_shrinks(self):
        assert stopping_rule_threshold(0.1, 0.001) > stopping_rule_threshold(0.1, 0.1)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            stopping_rule_threshold(0.0, 0.1)
        with pytest.raises(ValueError):
            stopping_rule_threshold(1.5, 0.1)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            stopping_rule_threshold(0.1, 0.0)
        with pytest.raises(ValueError):
            stopping_rule_threshold(0.1, 1.0)


class TestExpectedSampleBound:
    def test_scales_inversely_with_mean(self):
        assert expected_sample_bound(0.1, 0.01, 0.01) > expected_sample_bound(0.1, 0.01, 0.1)

    def test_positive(self):
        assert expected_sample_bound(0.2, 0.05, 0.3) > 0

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            expected_sample_bound(0.1, 0.01, 0.0)


class TestStoppingRuleEstimate:
    def test_constant_one_sampler(self):
        result = stopping_rule_estimate(lambda: 1.0, epsilon=0.2, delta=0.05)
        # Every sample contributes 1, so the estimate is threshold/ceil(threshold),
        # i.e. essentially 1.
        assert result.estimate == pytest.approx(1.0, rel=0.02)
        assert result.num_samples == pytest.approx(result.threshold, abs=1.0)

    @pytest.mark.parametrize("true_mean", [0.1, 0.3, 0.7])
    def test_bernoulli_estimates_within_relative_error(self, true_mean):
        generator = random.Random(42)
        result = stopping_rule_estimate(
            lambda: 1.0 if generator.random() < true_mean else 0.0,
            epsilon=0.1,
            delta=0.01,
        )
        assert abs(result.estimate - true_mean) <= 0.1 * true_mean * 1.5  # slack over the 1-delta event

    def test_sample_count_roughly_threshold_over_mean(self):
        true_mean = 0.25
        generator = random.Random(7)
        result = stopping_rule_estimate(
            lambda: 1.0 if generator.random() < true_mean else 0.0,
            epsilon=0.15,
            delta=0.05,
        )
        assert result.num_samples == pytest.approx(result.threshold / true_mean, rel=0.3)

    def test_max_samples_guard(self):
        with pytest.raises(EstimationError):
            stopping_rule_estimate(lambda: 0.0, epsilon=0.2, delta=0.1, max_samples=500)

    def test_invalid_max_samples(self):
        with pytest.raises(ValueError):
            stopping_rule_estimate(lambda: 1.0, epsilon=0.2, delta=0.1, max_samples=0)

    def test_sample_out_of_range_rejected(self):
        with pytest.raises(EstimationError):
            stopping_rule_estimate(lambda: 2.0, epsilon=0.2, delta=0.1)

    def test_result_records_parameters(self):
        result = stopping_rule_estimate(lambda: 1.0, epsilon=0.3, delta=0.2)
        assert result.epsilon == 0.3
        assert result.delta == 0.2


class TestStoppingRuleBatched:
    """The batched rule is sample-for-sample identical to the sequential one."""

    @pytest.mark.parametrize("true_mean", [0.1, 0.4, 0.9])
    def test_matches_sequential_on_same_stream(self, true_mean):
        def bernoulli_stream(seed):
            generator = random.Random(seed)
            while True:
                yield 1.0 if generator.random() < true_mean else 0.0

        sequential_stream = bernoulli_stream(99)
        sequential = stopping_rule_estimate(
            lambda: next(sequential_stream), epsilon=0.15, delta=0.05
        )
        batched_stream = bernoulli_stream(99)
        batched = stopping_rule_estimate_batched(
            lambda size: [next(batched_stream) for _ in range(size)],
            epsilon=0.15,
            delta=0.05,
        )
        assert batched.estimate == sequential.estimate
        assert batched.num_samples == sequential.num_samples

    def test_max_samples_consumed_exactly(self):
        drawn = {"count": 0}

        def zeros(size):
            drawn["count"] += size
            return [0.0] * size

        with pytest.raises(EstimationError):
            stopping_rule_estimate_batched(zeros, epsilon=0.2, delta=0.1, max_samples=500)
        assert drawn["count"] == 500  # chunks are clipped to the cap

    def test_out_of_range_sample_rejected(self):
        with pytest.raises(EstimationError):
            stopping_rule_estimate_batched(
                lambda size: [2.0] * size, epsilon=0.2, delta=0.1
            )

    def test_invalid_batch_parameters(self):
        with pytest.raises(ValueError):
            stopping_rule_estimate_batched(
                lambda size: [1.0] * size, epsilon=0.2, delta=0.1, initial_batch=0
            )
        with pytest.raises(ValueError):
            stopping_rule_estimate_batched(
                lambda size: [1.0] * size, epsilon=0.2, delta=0.1, batch_growth=0.5
            )


class TestWarmStart:
    """warm_start consumes a stream prefix without changing the outcome."""

    @staticmethod
    def _stream(seed, true_mean=0.3):
        generator = random.Random(seed)
        while True:
            yield 1.0 if generator.random() < true_mean else 0.0

    @pytest.mark.parametrize("warm_size", [0, 1, 37, 500, 5000])
    def test_bit_identical_to_cold_run_over_same_stream(self, warm_size):
        cold_stream = self._stream(7)
        cold = stopping_rule_estimate_batched(
            lambda size: [next(cold_stream) for _ in range(size)],
            epsilon=0.2, delta=0.05,
        )
        warm_source = self._stream(7)
        warm = [next(warm_source) for _ in range(warm_size)]
        result = stopping_rule_estimate_batched(
            lambda size: [next(warm_source) for _ in range(size)],
            epsilon=0.2, delta=0.05, warm_start=warm,
        )
        assert result == cold

    def test_stops_inside_warm_prefix_without_fresh_draws(self):
        def must_not_draw(size):
            raise AssertionError("fresh draws requested despite sufficient warm prefix")

        result = stopping_rule_estimate_batched(
            must_not_draw, epsilon=0.5, delta=0.2, warm_start=[1.0] * 100
        )
        assert result.num_samples <= 100

    def test_warm_prefix_respects_max_samples(self):
        with pytest.raises(EstimationError):
            stopping_rule_estimate_batched(
                lambda size: [0.0] * size, epsilon=0.2, delta=0.1,
                max_samples=50, warm_start=[0.0] * 500,
            )

    def test_warm_values_validated(self):
        with pytest.raises(EstimationError):
            stopping_rule_estimate_batched(
                lambda size: [1.0] * size, epsilon=0.2, delta=0.1,
                warm_start=[2.0],
            )

    def test_max_samples_validated_consistently(self):
        # require_positive_int semantics: zero and non-integers are rejected
        # the same way every estimator entry point rejects bad num_samples.
        with pytest.raises(ValueError):
            stopping_rule_estimate_batched(
                lambda size: [1.0] * size, epsilon=0.2, delta=0.1, max_samples=0
            )
        with pytest.raises(TypeError):
            stopping_rule_estimate_batched(
                lambda size: [1.0] * size, epsilon=0.2, delta=0.1, max_samples=2.5
            )
        with pytest.raises(TypeError):
            stopping_rule_estimate(lambda: 1.0, epsilon=0.2, delta=0.1, max_samples=2.5)


class TestIndicatorByteBatches:
    """The columnar 0/1-byte fast path must equal per-element folding."""

    def _indicator_stream(self, true_mean: float, seed: int, length: int) -> bytes:
        generator = random.Random(seed)
        return bytes(1 if generator.random() < true_mean else 0 for _ in range(length))

    @pytest.mark.parametrize("true_mean", [0.9, 0.4, 0.05])
    def test_bytes_batches_match_float_batches(self, true_mean):
        stream = self._indicator_stream(true_mean, seed=13, length=400_000)

        def bytes_sampler(size, state={"i": 0}):
            start = state["i"]
            state["i"] = start + size
            return stream[start : start + size]

        def float_sampler(size, state={"i": 0}):
            start = state["i"]
            state["i"] = start + size
            return [float(v) for v in stream[start : start + size]]

        fast = stopping_rule_estimate_batched(bytes_sampler, epsilon=0.2, delta=0.05)
        slow = stopping_rule_estimate_batched(float_sampler, epsilon=0.2, delta=0.05)
        assert fast == slow  # same estimate AND same halting sample index

    def test_crossing_batch_halts_at_exact_sample(self):
        # All-ones stream with one huge batch: the rule must stop at the
        # same sample index as a one-at-a-time run, not swallow the batch.
        result = stopping_rule_estimate_batched(
            lambda size: bytes([1]) * size, epsilon=0.5, delta=0.1, initial_batch=65536
        )
        sequential = stopping_rule_estimate(lambda: 1.0, epsilon=0.5, delta=0.1)
        assert result == sequential

    def test_invalid_byte_value_rejected(self):
        with pytest.raises(EstimationError):
            stopping_rule_estimate_batched(
                lambda size: bytes([1, 2]) * size, epsilon=0.5, delta=0.1
            )

    def test_bytes_warm_start_bit_identical(self):
        stream = self._indicator_stream(0.3, seed=7, length=200_000)
        warm = stream[:1000]

        def tail_sampler(size, state={"i": 1000}):
            start = state["i"]
            state["i"] = start + size
            return stream[start : start + size]

        def cold_sampler(size, state={"i": 0}):
            start = state["i"]
            state["i"] = start + size
            return stream[start : start + size]

        warmed = stopping_rule_estimate_batched(
            tail_sampler, epsilon=0.2, delta=0.05, warm_start=iter(warm)
        )
        cold = stopping_rule_estimate_batched(cold_sampler, epsilon=0.2, delta=0.05)
        assert warmed == cold
