"""Tests for repro.estimation.bounds."""

from __future__ import annotations

import math

import pytest

from repro.estimation.bounds import (
    chernoff_bound,
    chernoff_sample_size,
    hoeffding_bound,
    hoeffding_sample_size,
    theoretical_realization_count,
    union_bound_failure,
)


class TestChernoff:
    def test_bound_decreases_with_samples(self):
        assert chernoff_bound(10_000, 0.1, 0.1) < chernoff_bound(100, 0.1, 0.1)

    def test_bound_clipped_to_one(self):
        assert chernoff_bound(1, 0.001, 0.001) == 1.0

    def test_matches_formula(self):
        l, mu, delta = 500, 0.2, 0.3
        expected = 2.0 * math.exp(-l * mu * delta * delta / (2.0 + delta))
        assert chernoff_bound(l, mu, delta) == pytest.approx(expected)

    def test_sample_size_achieves_bound(self):
        mu, delta, failure = 0.05, 0.2, 0.01
        l = chernoff_sample_size(mu, delta, failure)
        assert chernoff_bound(l, mu, delta) <= failure * 1.0001
        # One fewer sample should not be enough (tightness up to ceiling).
        if l > 1:
            assert chernoff_bound(l - 1, mu, delta) > failure * 0.999

    def test_sample_size_grows_as_mean_shrinks(self):
        assert chernoff_sample_size(0.01, 0.1, 0.05) > chernoff_sample_size(0.1, 0.1, 0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chernoff_bound(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            chernoff_sample_size(0.1, 0.1, 1.5)


class TestHoeffding:
    def test_bound_formula(self):
        assert hoeffding_bound(100, 0.1) == pytest.approx(2.0 * math.exp(-2.0), rel=1e-9)

    def test_sample_size_achieves_bound(self):
        l = hoeffding_sample_size(0.05, 0.01)
        assert hoeffding_bound(l, 0.05) <= 0.01 * 1.0001


class TestUnionBound:
    def test_multiplies(self):
        assert union_bound_failure(0.001, 100) == pytest.approx(0.1)

    def test_clipped_to_one(self):
        assert union_bound_failure(0.5, 10) == 1.0

    def test_invalid_events(self):
        with pytest.raises(ValueError):
            union_bound_failure(0.1, 0)


class TestTheoreticalRealizationCount:
    def test_matches_eq16(self):
        n, capital_n, eps1, eps0, pmax = 100, 1000.0, 0.05, 0.1, 0.02
        log_term = math.log(2.0) + math.log(capital_n) + n * math.log(2.0)
        expected = math.ceil(
            log_term * (2.0 + eps1 * (1.0 - eps0)) / (eps1**2 * (1.0 - eps0) ** 2 * pmax)
        )
        assert theoretical_realization_count(n, capital_n, eps1, eps0, pmax) == expected

    def test_grows_linearly_in_n(self):
        small = theoretical_realization_count(100, 1000.0, 0.05, 0.1, 0.02)
        large = theoretical_realization_count(1000, 1000.0, 0.05, 0.1, 0.02)
        assert large > 5 * small

    def test_requires_epsilon_zero_below_one(self):
        with pytest.raises(ValueError):
            theoretical_realization_count(100, 1000.0, 0.05, 1.2, 0.02)

    def test_astronomical_for_paper_scale_inputs(self):
        """Documents why the PRACTICAL policy exists (see DESIGN.md)."""
        count = theoretical_realization_count(7000, 100_000.0, 0.005, 0.005, 0.03)
        assert count > 10**9
