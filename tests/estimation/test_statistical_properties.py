"""Property-based statistical tests of the stopping-rule pmax estimator.

These tests guard the estimator's *accuracy contract* -- Lemma 3's (ε, δ)
guarantee -- rather than its plumbing: on graph families whose ``pmax`` is
known in closed form, the estimate must land within relative error ε of
the analytic value, for every available engine and with the sample pool on
and off (and the pooled estimate must be bit-identical to the pool-free
one, since both consume the same canonical stream).

Two analytic families are used (degree-normalized weights, so reverse
walks never die in a stop-probability tail):

* **chain** ``s - v1 - ... - vk - t``: the walk from ``t`` must take the
  "toward s" branch at each of ``v_k .. v_2`` (probability 1/2 each, the
  other branch closes a cycle), so ``pmax = 2^-(k-1)``.
* **decoy star** ``s - v1 - hub - t`` with ``d`` leaf decoys on the hub:
  from the hub the walk picks ``v1`` (type-1), ``t`` (cycle) or a decoy
  (dead end: the decoy's only friend is the hub, already traced), all
  uniformly, so ``pmax = 1/(d+2)``.

Everything is seeded and hypothesis runs derandomized, so the δ failure
probability cannot flake CI: a passing example stays passing.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.raf import estimate_pmax
from repro.diffusion.engine import available_engines, create_engine
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights
from repro.pool import SamplePool

#: Accuracy / confidence requested from the stopping rule in every example.
EPSILON = 0.25
CONFIDENCE_N = 1_000.0  # delta = 1e-3
MAX_SAMPLES = 200_000

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def chain_instance(length: int) -> tuple[SocialGraph, int, int, float]:
    """``s - v1 - ... - v_length - t`` with analytic ``pmax = 2^-(length-1)``."""
    nodes = list(range(length + 2))  # 0 = s, 1..length = v1..vk, length+1 = t
    graph = SocialGraph.from_edges(zip(nodes, nodes[1:]))
    apply_degree_normalized_weights(graph)
    return graph, 0, length + 1, 0.5 ** (length - 1)


def decoy_star_instance(decoys: int) -> tuple[SocialGraph, int, int, float]:
    """``s - v1 - hub - t`` plus ``decoys`` leaves on the hub; ``pmax = 1/(decoys+2)``."""
    source, v1, hub, target = 0, 1, 2, 3
    edges = [(source, v1), (v1, hub), (hub, target)]
    edges += [(hub, 4 + index) for index in range(decoys)]
    graph = SocialGraph.from_edges(edges)
    apply_degree_normalized_weights(graph)
    return graph, source, target, 1.0 / (decoys + 2)


def assert_guarantee(graph, source, target, pmax, seed, engine_name):
    engine = create_engine(graph, engine_name)
    plain = estimate_pmax(
        graph,
        source,
        target,
        epsilon=EPSILON,
        confidence_n=CONFIDENCE_N,
        max_samples=MAX_SAMPLES,
        pool=SamplePool(engine, seed=seed, reuse=False),
    )
    pooled = estimate_pmax(
        graph,
        source,
        target,
        epsilon=EPSILON,
        confidence_n=CONFIDENCE_N,
        max_samples=MAX_SAMPLES,
        pool=SamplePool(engine, seed=seed),
    )
    # Pool on/off consume the same canonical stream: bit-identical output.
    assert pooled == plain
    assert plain.method == "stopping-rule"
    # The Lemma 3 (ε, δ) guarantee against the analytic pmax.
    assert abs(plain.value - pmax) <= EPSILON * pmax, (
        f"estimate {plain.value} misses pmax {pmax} by more than {EPSILON:.0%} "
        f"(seed {seed}, engine {engine_name})"
    )


@pytest.mark.parametrize("engine_name", available_engines())
class TestStoppingRuleGuarantee:
    @SETTINGS
    @given(length=st.integers(min_value=2, max_value=5), seed=st.integers(0, 2**32 - 1))
    def test_chain_pmax_within_epsilon(self, engine_name, length, seed):
        graph, source, target, pmax = chain_instance(length)
        assert_guarantee(graph, source, target, pmax, seed, engine_name)

    @SETTINGS
    @given(decoys=st.integers(min_value=0, max_value=8), seed=st.integers(0, 2**32 - 1))
    def test_decoy_star_pmax_within_epsilon(self, engine_name, decoys, seed):
        graph, source, target, pmax = decoy_star_instance(decoys)
        assert_guarantee(graph, source, target, pmax, seed, engine_name)

    @SETTINGS
    @given(seed=st.integers(0, 2**32 - 1))
    def test_caller_rng_stream_agrees_with_pool_mode_accuracy(self, engine_name, seed):
        """The historical (pool-free, caller-rng) path meets the guarantee too."""
        graph, source, target, pmax = chain_instance(3)
        estimate = estimate_pmax(
            graph,
            source,
            target,
            epsilon=EPSILON,
            confidence_n=CONFIDENCE_N,
            max_samples=MAX_SAMPLES,
            rng=seed,
            engine=engine_name,
        )
        assert abs(estimate.value - pmax) <= EPSILON * pmax


class TestWarmStartEquivalence:
    """A warm pool must not change what the stopping rule returns."""

    @SETTINGS
    @given(
        warm=st.integers(min_value=0, max_value=5000),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_any_warm_prefix_is_bit_identical_to_cold(self, warm, seed):
        graph, source, target, _ = decoy_star_instance(3)
        engine = create_engine(graph, "python")
        cold = estimate_pmax(
            graph, source, target, epsilon=EPSILON, confidence_n=CONFIDENCE_N,
            max_samples=MAX_SAMPLES, pool=SamplePool(engine, seed=seed),
        )
        pool = SamplePool(engine, seed=seed)
        pool.paths(target, graph.neighbor_set(source), warm, stream="pmax")
        warm_result = estimate_pmax(
            graph, source, target, epsilon=EPSILON, confidence_n=CONFIDENCE_N,
            max_samples=MAX_SAMPLES, pool=pool,
        )
        assert warm_result == cold
