"""Tests for repro.estimation.monte_carlo."""

from __future__ import annotations

import random

import pytest

from repro.estimation.monte_carlo import MonteCarloResult, monte_carlo_mean


class TestMonteCarloMean:
    def test_constant_sampler(self):
        result = monte_carlo_mean(lambda: 0.7, num_samples=50)
        assert result.mean == pytest.approx(0.7)
        assert result.variance == pytest.approx(0.0)
        assert result.num_samples == 50

    def test_bernoulli_sampler_converges(self):
        generator = random.Random(3)
        result = monte_carlo_mean(lambda: 1.0 if generator.random() < 0.3 else 0.0, 20_000)
        assert result.mean == pytest.approx(0.3, abs=0.02)

    def test_variance_of_bernoulli(self):
        generator = random.Random(5)
        result = monte_carlo_mean(lambda: 1.0 if generator.random() < 0.5 else 0.0, 20_000)
        assert result.variance == pytest.approx(0.25, abs=0.02)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            monte_carlo_mean(lambda: 1.0, 0)

    def test_invalid_rng_type_rejected(self):
        with pytest.raises(TypeError):
            monte_carlo_mean(lambda: 1.0, 10, rng="seed")


class TestMonteCarloResult:
    def test_std_error(self):
        result = MonteCarloResult(mean=0.5, num_samples=100, variance=0.25)
        assert result.std_error == pytest.approx(0.05)

    def test_std_error_no_samples(self):
        assert MonteCarloResult(0.0, 0, 0.0).std_error == float("inf")

    def test_confidence_interval_contains_mean(self):
        result = MonteCarloResult(mean=0.4, num_samples=400, variance=0.24)
        low, high = result.confidence_interval()
        assert low < 0.4 < high

    def test_confidence_interval_width_scales_with_z(self):
        result = MonteCarloResult(mean=0.4, num_samples=400, variance=0.24)
        narrow = result.confidence_interval(z=1.0)
        wide = result.confidence_interval(z=3.0)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])
