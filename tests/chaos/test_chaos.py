"""Hypothesis chaos suite: random fault plans, byte-identical results.

Each example draws a random :class:`~repro.faults.FaultPlan` -- worker
kills, shared-memory publish failures, slow chunks, spill I/O errors --
and drives it through the public sampling paths (pmax estimation, pair
screening, pool serving with spill/restart).  The invariant is always the
same and is the whole point of the recovery design (DESIGN.md §11):
**faults may change cost and scheduling, never results**.  Every example
asserts bit-identity against a fault-free reference and that no
shared-memory segment or temp file outlives the run.

The suite runs with a handful of examples by default (worker kills cost a
pool respawn each); the CI chaos job raises the example count.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.raf import estimate_pmax
from repro.diffusion.engine import create_engine
from repro.experiments.pair_selection import screen_pmax
from repro.faults import FaultPlan
from repro.graph.generators import barabasi_albert_graph
from repro.graph.weights import apply_degree_normalized_weights
from repro.parallel import ParallelEngine, fork_available
from repro.parallel import shm as shm_transport
from repro.pool import STREAM_PMAX, SamplePool

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="chaos tests exercise forked worker pools"
)

#: Small chunks fan a request over many chunks, so injected per-chunk
#: faults actually land; worker kills then cost one cheap respawn each.
CHUNK = 50

CHAOS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: A bounded random fault plan.  ``on_worker_failure="serial"`` below keeps
#: even a kill-everything draw terminating (and still byte-identical), and
#: ``max_faults`` bounds the injected-kill count so respawn rounds stay
#: cheap; the *plan seed* is the interesting axis, the rates just vary mix.
fault_plans = st.builds(
    FaultPlan,
    st.integers(min_value=0, max_value=2**31),
    kill_rate=st.floats(min_value=0.0, max_value=0.4),
    slow_rate=st.floats(min_value=0.0, max_value=0.3),
    shm_fail_rate=st.floats(min_value=0.0, max_value=0.5),
    slow_seconds=st.just(0.001),
    max_faults=st.integers(min_value=1, max_value=4),
)


@pytest.fixture(scope="module")
def graph():
    return apply_degree_normalized_weights(barabasi_albert_graph(200, 4, rng=17))


@pytest.fixture(scope="module")
def pair(graph):
    source = 0
    target = next(
        node
        for node in reversed(graph.node_list())
        if node != source and not graph.has_edge(source, node)
    )
    return source, target


def _faulted_engine(graph, plan):
    return ParallelEngine(
        create_engine(graph, "numpy"), 2, CHUNK,
        on_worker_failure="serial", fault_plan=plan,
    )


def _assert_shm_clean():
    prefix = shm_transport.default_prefix()
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        assert sorted(p.name for p in shm_dir.glob(f"{prefix}*")) == []


class TestPmaxChaos:
    @CHAOS
    @given(plan=fault_plans)
    def test_pmax_is_bit_identical_under_random_faults(self, graph, pair, plan):
        source, target = pair
        # The reference is the same chunked fan-out path without faults
        # (the chunked path is deliberately a different stream than the
        # historical single-stream serial path).
        with ParallelEngine(create_engine(graph, "numpy"), 2, CHUNK) as clean:
            reference = estimate_pmax(
                graph, source, target, epsilon=0.4, confidence_n=100.0,
                max_samples=4_000, rng=31, engine=clean,
            )
        with _faulted_engine(graph, plan) as engine:
            faulted = estimate_pmax(
                graph, source, target, epsilon=0.4, confidence_n=100.0,
                max_samples=4_000, rng=31, engine=engine,
            )
        assert faulted == reference
        _assert_shm_clean()


class TestScreenChaos:
    @CHAOS
    @given(plan=fault_plans)
    def test_screen_pmax_is_bit_identical_under_random_faults(self, graph, pair, plan):
        source, target = pair
        with ParallelEngine(create_engine(graph, "numpy"), 2, CHUNK) as clean:
            reference = screen_pmax(
                graph, source, target, num_samples=600, rng=7, engine=clean
            )
        with _faulted_engine(graph, plan) as engine:
            faulted = screen_pmax(
                graph, source, target, num_samples=600, rng=7, engine=engine
            )
        assert faulted == reference
        _assert_shm_clean()


class TestPoolChaos:
    @CHAOS
    @given(
        plan=st.builds(
            FaultPlan,
            st.integers(min_value=0, max_value=2**31),
            spill_fail_rate=st.floats(min_value=0.0, max_value=0.8),
        ),
        draws=st.integers(min_value=1, max_value=3),
    )
    def test_spill_faults_never_corrupt_the_stream(
        self, graph, pair, tmp_path_factory, plan, draws
    ):
        """Spill I/O errors at random points must leave every restarted
        pool either adopting a valid prefix or silently re-drawing --
        the served stream is byte-identical either way."""
        source, target = pair
        stop = graph.neighbor_set(source)
        reference = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16
        ).paths(target, stop, 16 * draws, STREAM_PMAX)
        spill_dir = tmp_path_factory.mktemp("chaos-pool")
        faulted = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16,
            spill_dir=spill_dir, fault_plan=plan,
        )
        assert faulted.paths(target, stop, 16 * draws, STREAM_PMAX) == reference
        faulted.spill_all()
        faulted.spill_all()  # a later checkpoint may succeed where one failed
        restarted = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16,
            spill_dir=spill_dir,
        )
        assert restarted.paths(target, stop, 16 * draws, STREAM_PMAX) == reference
        assert list(spill_dir.glob("*.tmp")) == []


class TestKillChaos:
    @CHAOS
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        kill_at=st.sets(st.integers(min_value=0, max_value=7), max_size=2),
    )
    def test_targeted_kills_recover_byte_identically(self, graph, pair, seed, kill_at):
        """Killing the workers of specific chunks (any pair of the eight
        dispatched) recovers exactly the fault-free draw."""
        _, target = pair
        stop = graph.neighbor_set(pair[0])
        with ParallelEngine(create_engine(graph, "numpy"), 2, CHUNK) as clean:
            expected = clean.sample_paths(
                target, stop, 8 * CHUNK, rng=random.Random(seed)
            )
        plan = FaultPlan(kill_at=frozenset(kill_at))
        with ParallelEngine(
            create_engine(graph, "numpy"), 2, CHUNK, fault_plan=plan
        ) as engine:
            observed = engine.sample_paths(
                target, stop, 8 * CHUNK, rng=random.Random(seed)
            )
        assert observed == expected
        _assert_shm_clean()
