"""Shared fixtures for the test suite.

The fixtures provide a few small, hand-analysable graphs plus seeded random
graphs.  Everything is deterministic: graph generators and algorithms always
receive explicit seeds so failures reproduce exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights, apply_uniform_weights


@pytest.fixture
def rng() -> random.Random:
    """A seeded random generator for tests that need explicit randomness."""
    return random.Random(12345)


@pytest.fixture
def triangle_graph() -> SocialGraph:
    """The triangle a-b-c with degree-normalized weights."""
    graph = SocialGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")], name="triangle")
    return apply_degree_normalized_weights(graph)


@pytest.fixture
def chain_graph() -> SocialGraph:
    """The path s - a - b - t with degree-normalized weights.

    A minimal active-friending instance: ``a`` is already a friend of the
    initiator, so the only route to the target is inviting ``b`` and then
    ``t``; every successful invitation set must contain {b, t}.
    """
    graph = SocialGraph.from_edges([("s", "a"), ("a", "b"), ("b", "t")], name="chain")
    return apply_degree_normalized_weights(graph)


@pytest.fixture
def diamond_graph() -> SocialGraph:
    """A diamond with two internally disjoint routes from N_s to the target.

    Topology::

        s -- a -- x1 -- t
        s -- b -- x2 -- t

    with degree-normalized weights.  ``Vmax = {x1, x2, t}``.
    """
    edges = [("s", "a"), ("s", "b"), ("a", "x1"), ("b", "x2"), ("x1", "t"), ("x2", "t")]
    graph = SocialGraph.from_edges(edges, name="diamond")
    return apply_degree_normalized_weights(graph)


@pytest.fixture
def worked_example_graph() -> SocialGraph:
    """A hand-analysable LT friending example (same spirit as the paper's Fig. 1).

    Topology::

        s -- a,  s -- b          (N_s = {a, b})
        c -- a,  c -- b          (c has two mutual friends with s)
        d -- c                   (d needs c first)
        t -- c,  t -- d          (t reachable through c and d)

    All directional weights are set to 0.1 (not normalized to degree), so
    with a threshold of 0.15 a user accepts only with two accepted/initial
    friends, while a threshold of 0.05 accepts with one.
    """
    edges = [("s", "a"), ("s", "b"), ("c", "a"), ("c", "b"), ("d", "c"), ("t", "c"), ("t", "d")]
    graph = SocialGraph.from_edges(edges, name="worked-example")
    return apply_uniform_weights(graph, weight=0.1, normalize=False)


@pytest.fixture
def small_ba_graph() -> SocialGraph:
    """A 60-node Barabási–Albert graph with degree-normalized weights."""
    graph = barabasi_albert_graph(60, 3, rng=7, name="small-ba")
    return apply_degree_normalized_weights(graph)


@pytest.fixture
def medium_ba_graph() -> SocialGraph:
    """A 200-node Barabási–Albert graph with degree-normalized weights."""
    graph = barabasi_albert_graph(200, 4, rng=11, name="medium-ba")
    return apply_degree_normalized_weights(graph)


@pytest.fixture
def sparse_er_graph() -> SocialGraph:
    """A sparse Erdős–Rényi graph (100 nodes, p = 0.04), degree-normalized."""
    graph = erdos_renyi_graph(100, 0.04, rng=13, name="sparse-er")
    return apply_degree_normalized_weights(graph)


@pytest.fixture
def deterministic_topologies() -> dict:
    """A bag of small deterministic topologies keyed by name (unweighted)."""
    return {
        "path": path_graph(6),
        "cycle": cycle_graph(6),
        "star": star_graph(5),
        "grid": grid_graph(3, 4),
    }


def find_test_pair(graph: SocialGraph, rng: random.Random, min_distance: int = 3):
    """Helper used by several test modules: a non-adjacent (s, t) pair.

    Returns a pair at graph distance >= ``min_distance`` when one exists,
    otherwise any non-adjacent pair.
    """
    from repro.graph.traversal import bfs_distances

    nodes = graph.node_list()
    fallback = None
    for _ in range(500):
        s, t = rng.sample(nodes, 2)
        if graph.has_edge(s, t):
            continue
        distance = bfs_distances(graph, s).get(t)
        if distance is None:
            continue
        if distance >= min_distance:
            return s, t
        fallback = (s, t)
    if fallback is None:
        raise AssertionError("could not find a non-adjacent connected pair in the test graph")
    return fallback
