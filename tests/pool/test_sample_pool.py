"""Tests for the shared reverse-sample pool (repro/pool)."""

from __future__ import annotations

import json

import pytest

from repro.diffusion.engine import available_engines, create_engine
from repro.graph.datasets import load_dataset
from repro.parallel.engine import ParallelEngine
from repro.pool import (
    STREAM_EVAL,
    STREAM_PMAX,
    PoolStats,
    SamplePool,
    pool_key_digest,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wiki", scale=0.02, rng=7)


@pytest.fixture(scope="module")
def setting(graph):
    nodes = graph.node_list()
    source, target = nodes[0], nodes[5]
    return graph, target, graph.neighbor_set(source)


class TestKeyDigest:
    def test_independent_of_stop_set_order(self):
        assert pool_key_digest(1, [2, 3, 4]) == pool_key_digest(1, [4, 2, 3])

    def test_distinguishes_target_stop_and_stream(self):
        digests = {
            pool_key_digest(1, [2, 3]),
            pool_key_digest(2, [2, 3]),
            pool_key_digest(1, [2]),
            pool_key_digest(1, [2, 3], stream="eval"),
        }
        assert len(digests) == 4


class TestCanonicalStreams:
    def test_prefix_stability(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "python"), seed=42)
        long = pool.paths(target, stop, 1500)
        assert pool.paths(target, stop, 400) == long[:400]
        assert pool.paths(target, stop, 1500) == long

    def test_request_order_does_not_change_the_stream(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "python")
        small_first = SamplePool(engine, seed=42)
        small_first.paths(target, stop, 10)
        grown = small_first.paths(target, stop, 1200)
        assert grown == SamplePool(engine, seed=42).paths(target, stop, 1200)

    def test_reuse_disabled_is_bit_identical(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "python")
        cached = SamplePool(engine, seed=42).paths(target, stop, 1200)
        redrawn = SamplePool(engine, seed=42, reuse=False).paths(target, stop, 1200)
        assert cached == redrawn

    def test_streams_are_disjoint_draws(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "python"), seed=42)
        assert pool.paths(target, stop, 50, stream=STREAM_PMAX) != pool.paths(
            target, stop, 50, stream=STREAM_EVAL
        )

    def test_different_seeds_differ(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "python")
        assert SamplePool(engine, seed=1).paths(target, stop, 50) != SamplePool(
            engine, seed=2
        ).paths(target, stop, 50)

    @pytest.mark.parametrize("name", available_engines())
    def test_parallel_engine_matches_serial(self, setting, name):
        graph, target, stop = setting
        base = create_engine(graph, name)
        serial = SamplePool(base, seed=9).paths(target, stop, 5000)
        with ParallelEngine(base, workers=4) as fanned_engine:
            fanned = SamplePool(fanned_engine, seed=9).paths(target, stop, 5000)
        assert serial == fanned


class TestReader:
    def test_reader_segments_match_direct_reads(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "python"), seed=7)
        reader = pool.reader(target, stop)
        collected = reader.take(100) + reader.take(0) + reader.take(900)
        assert reader.offset == 1000
        assert collected == pool.paths(target, stop, 1000)

    def test_cached_remaining_reflects_materialized_prefix(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "python"), seed=7)
        reader = pool.reader(target, stop)
        assert reader.cached_remaining() == 0
        pool.paths(target, stop, 10)  # materializes one whole chunk
        assert reader.cached_remaining() == pool.chunk_size
        reader.take(30)
        assert reader.cached_remaining() == pool.chunk_size - 30


class TestIndicators:
    def test_indicators_agree_with_paths(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "python"), seed=3)
        paths = pool.paths(target, stop, 300)
        assert pool.type1_indicators(target, stop, 300) == bytes(
            1 if path.is_type1 else 0 for path in paths
        )
        invited = frozenset(graph.node_list())
        covered = pool.covered_indicators(target, stop, 300, invited)
        # Every type-1 trace is covered by the full node set (Corollary 2).
        assert covered == pool.type1_indicators(target, stop, 300)


class TestEvictionAndBudget:
    def test_lru_eviction_caps_key_count(self, graph):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        pool = SamplePool(create_engine(graph, "python"), seed=5, max_targets=2)
        for target in nodes[5:9]:
            pool.paths(target, stop, 10)
        stats = pool.stats()
        assert stats.keys == 2
        assert stats.evictions == 2

    def test_budget_caps_cached_paths(self, graph):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        pool = SamplePool(
            create_engine(graph, "python"), seed=5, budget=1500, chunk_size=512
        )
        first = pool.paths(nodes[5], stop, 1536)  # 3 chunks
        pool.paths(nodes[6], stop, 512)  # pushes the total over budget
        stats = pool.stats()
        assert stats.cached_paths <= 1500
        assert stats.evictions >= 1
        # The evicted key re-draws the identical canonical prefix.
        assert pool.paths(nodes[5], stop, 1536) == first

    def test_eviction_never_drops_the_key_being_served(self, graph):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        pool = SamplePool(create_engine(graph, "python"), seed=5, budget=100)
        paths = pool.paths(nodes[5], stop, 2000)  # far over budget on its own
        assert len(paths) == 2000
        assert pool.cached_count(nodes[5], stop) >= 2000

    def test_stats_counters(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "python"), seed=5)
        pool.paths(target, stop, 100)
        pool.paths(target, stop, 100)
        stats = pool.stats()
        assert isinstance(stats, PoolStats)
        assert stats.served_paths == 200
        assert stats.drawn_paths == pool.chunk_size  # one chunk, drawn once


class TestSpill:
    def test_spill_and_reload_round_trip(self, graph, tmp_path):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        pool = SamplePool(
            create_engine(graph, "python"), seed=5, max_targets=1, spill_dir=tmp_path
        )
        first = pool.paths(nodes[5], stop, 100)
        pool.paths(nodes[6], stop, 100)  # evicts + spills the first key
        assert pool.stats().spills == 1
        reloaded = pool.paths(nodes[5], stop, 100)
        assert pool.stats().loads == 1
        assert reloaded == first

    def test_spill_files_are_canonical_json(self, graph, tmp_path):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        pool = SamplePool(
            create_engine(graph, "python"), seed=5, max_targets=1, spill_dir=tmp_path
        )
        pool.paths(nodes[5], stop, 50)
        assert pool.spill_all() == 1
        (meta_file,) = tmp_path.glob("pool-*.meta.json")
        (chunk_file,) = tmp_path.glob("pool-*.chunk-*.json")
        for spill_file in (meta_file, chunk_file):
            payload = json.loads(spill_file.read_text(encoding="utf-8"))
            assert spill_file.read_text(encoding="utf-8") == json.dumps(
                payload, indent=2, sort_keys=True
            )
        assert json.loads(meta_file.read_text(encoding="utf-8"))["pool_seed"] == 5
        assert not list(tmp_path.glob("*.tmp"))

    def test_eviction_rewrites_only_new_chunks(self, graph, tmp_path):
        """Append-safe spill: re-evicting a grown key costs O(new chunks)."""
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        pool = SamplePool(
            create_engine(graph, "python"),
            seed=5,
            max_targets=1,
            chunk_size=64,
            spill_dir=tmp_path,
        )
        pool.paths(nodes[5], stop, 128)  # 2 chunks
        pool.paths(nodes[6], stop, 1)  # evicts + spills the first key
        assert pool.stats().chunk_writes == 2
        assert len(list(tmp_path.glob("pool-*.chunk-*"))) == 2
        pool.paths(nodes[5], stop, 320)  # reload, grow to 5 chunks
        assert pool.stats().loads == 1
        before = pool.stats().chunk_writes  # (nodes[6] was evicted+spilled too)
        pool.paths(nodes[6], stop, 1)  # evict the grown key again
        # Only the 3 *new* chunk blobs were written; the 2 old ones were
        # not rewritten (their names already existed on disk).
        assert pool.stats().chunk_writes == before + 3
        # Re-evicting with nothing new writes no blobs at all.
        pool.paths(nodes[5], stop, 320)
        before = pool.stats().chunk_writes
        pool.paths(nodes[6], stop, 1)
        assert pool.stats().chunk_writes == before
        # And the reloaded-and-grown stream is still the canonical one.
        fresh = SamplePool(create_engine(graph, "python"), seed=5, chunk_size=64)
        assert pool.paths(nodes[5], stop, 320) == fresh.paths(nodes[5], stop, 320)

    def test_foreign_spill_is_ignored(self, graph, tmp_path):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        engine = create_engine(graph, "python")
        writer = SamplePool(engine, seed=5, spill_dir=tmp_path)
        expected = writer.paths(nodes[5], stop, 100)
        writer.spill_all()
        # A pool with another seed must not adopt the spilled stream.
        other = SamplePool(engine, seed=6, spill_dir=tmp_path)
        assert other.paths(nodes[5], stop, 100) != expected
        # The matching pool does.
        fresh = SamplePool(engine, seed=5, spill_dir=tmp_path)
        assert fresh.paths(nodes[5], stop, 100) == expected
        assert fresh.stats().loads == 1


class TestValidation:
    def test_rejects_bad_arguments(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "python")
        with pytest.raises(TypeError):
            SamplePool(engine, seed="42")
        with pytest.raises(ValueError):
            SamplePool(engine, seed=1, chunk_size=0)
        with pytest.raises(ValueError):
            SamplePool(engine, seed=1, max_targets=0)
        with pytest.raises(ValueError):
            SamplePool(engine, seed=1, budget=0)
        pool = SamplePool(engine, seed=1)
        with pytest.raises(ValueError):
            pool.paths(target, stop, -1)
        assert pool.paths(target, stop, 0) == []


class TestSpillAllReturnValue:
    def test_counts_only_keys_actually_written(self, tmp_path):
        from repro.graph.social_graph import SocialGraph
        from repro.graph.weights import apply_degree_normalized_weights

        # Tuple node ids cannot round-trip through JSON, so they must not
        # be counted as written.
        edges = [((0, "a"), (1, "b")), ((1, "b"), (2, "c")), ((2, "c"), (3, "d"))]
        graph = apply_degree_normalized_weights(SocialGraph.from_edges(edges))
        pool = SamplePool(create_engine(graph, "python"), seed=1, spill_dir=tmp_path)
        pool.paths((3, "d"), graph.neighbor_set((0, "a")), 10)
        assert pool.spill_all() == 0
        assert list(tmp_path.glob("pool-*")) == []


class TestSnapshotInvalidation:
    """Caches drawn from a dead CSR must never be served after a mutation."""

    def _mutable_graph(self):
        from repro.graph.generators import barabasi_albert_graph
        from repro.graph.weights import apply_degree_normalized_weights

        return apply_degree_normalized_weights(barabasi_albert_graph(150, 3, rng=29))

    def test_mutation_flushes_the_cache(self):
        graph = self._mutable_graph()
        target, stop = 80, graph.neighbor_set(0)
        pool = SamplePool(create_engine(graph, "python"), seed=5)
        stale = pool.paths(target, stop, 100, stream=STREAM_PMAX)
        assert pool.cached_count(target, stop, STREAM_PMAX) >= 100
        graph.add_edge(0, 80, weight_uv=0.15, weight_vu=0.15)
        stop = graph.neighbor_set(0)
        refreshed = pool.paths(target, stop, 100, stream=STREAM_PMAX)
        fresh_pool = SamplePool(create_engine(graph, "python"), seed=5)
        assert refreshed == fresh_pool.paths(target, stop, 100, stream=STREAM_PMAX)
        assert refreshed != stale

    def test_unchanged_graph_keeps_the_cache(self):
        graph = self._mutable_graph()
        target, stop = 80, graph.neighbor_set(0)
        pool = SamplePool(create_engine(graph, "python"), seed=5)
        pool.paths(target, stop, 64, stream=STREAM_PMAX)
        drawn = pool.stats().drawn_paths
        pool.paths(target, stop, 64, stream=STREAM_PMAX)
        assert pool.stats().drawn_paths == drawn  # served from cache

    def test_spills_from_a_dead_topology_are_ignored(self, tmp_path):
        graph = self._mutable_graph()
        target, stop = 80, graph.neighbor_set(0)
        before = SamplePool(
            create_engine(graph, "python"), seed=5, spill_dir=tmp_path
        )
        before.paths(target, stop, 64, stream=STREAM_PMAX)
        assert before.spill_all() >= 1
        graph.add_edge(0, 80, weight_uv=0.15, weight_vu=0.15)
        stop = graph.neighbor_set(0)
        after = SamplePool(create_engine(graph, "python"), seed=5, spill_dir=tmp_path)
        refreshed = after.paths(target, stop, 64, stream=STREAM_PMAX)
        assert after.stats().loads == 0  # the old spill was rejected
        fresh = SamplePool(create_engine(graph, "python"), seed=5)
        assert refreshed == fresh.paths(target, stop, 64, stream=STREAM_PMAX)

    def test_spill_round_trip_on_the_same_topology_still_loads(self, tmp_path):
        graph = self._mutable_graph()
        target, stop = 80, graph.neighbor_set(0)
        writer = SamplePool(
            create_engine(graph, "python"), seed=5, spill_dir=tmp_path
        )
        expected = writer.paths(target, stop, 64, stream=STREAM_PMAX)
        assert writer.spill_all() >= 1
        reader = SamplePool(create_engine(graph, "python"), seed=5, spill_dir=tmp_path)
        assert reader.paths(target, stop, 64, stream=STREAM_PMAX) == expected
        assert reader.stats().loads == 1
        assert reader.stats().drawn_paths == 0


class TestReaderIndicators:
    def test_take_type1_bytes_advances_the_same_cursor(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "python"), seed=7)
        reader = pool.reader(target, stop)
        head = reader.take(100)
        flags = reader.take_type1_bytes(200)
        tail = reader.take(100)
        assert reader.offset == 400
        expected = pool.paths(target, stop, 400)
        assert head == expected[:100]
        assert flags == bytes(1 if p.is_type1 else 0 for p in expected[100:300])
        assert tail == expected[300:]

    def test_take_type1_bytes_reuse_disabled_matches(self, setting):
        graph, target, stop = setting
        engine = create_engine(graph, "python")
        cached = SamplePool(engine, seed=7).reader(target, stop).take_type1_bytes(500)
        redrawn = SamplePool(engine, seed=7, reuse=False).reader(target, stop).take_type1_bytes(500)
        assert cached == redrawn


class TestTypeOnePaths:
    @pytest.mark.parametrize("name", available_engines())
    def test_type1_paths_equals_filtering(self, setting, name):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, name), seed=11)
        filtered = [p for p in pool.paths(target, stop, 2000) if p.is_type1]
        assert pool.type1_paths(target, stop, 2000) == filtered


@pytest.mark.skipif("numpy" not in available_engines(), reason="requires numpy")
class TestColumnarPool:
    """The pool's columnar storage path (batch-native engines)."""

    def test_columnar_chunks_are_stored(self, setting):
        from repro.diffusion.path_batch import PathBatch

        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "numpy"), seed=3)
        pool.paths(target, stop, 100)
        (entry,) = pool._entries.values()
        assert all(isinstance(chunk, PathBatch) for chunk in entry.store.chunks())

    def test_indicators_match_object_views(self, setting):
        graph, target, stop = setting
        pool = SamplePool(create_engine(graph, "numpy"), seed=3)
        paths = pool.paths(target, stop, 1500)
        assert pool.type1_indicators(target, stop, 1500) == bytes(
            1 if p.is_type1 else 0 for p in paths
        )
        invited = frozenset(graph.node_list()[:60])
        assert pool.covered_indicators(target, stop, 1500, invited) == bytes(
            1 if p.covered_by(invited) else 0 for p in paths
        )
        assert pool.type1_paths(target, stop, 1500) == [p for p in paths if p.is_type1]

    def test_parallel_columnar_matches_serial(self, setting):
        graph, target, stop = setting
        base = create_engine(graph, "numpy")
        serial = SamplePool(base, seed=9).paths(target, stop, 5000)
        with ParallelEngine(create_engine(graph, "numpy"), workers=4) as fanned:
            pooled = SamplePool(fanned, seed=9)
            assert pooled.paths(target, stop, 5000) == serial
            (entry,) = pooled._entries.values()
            from repro.diffusion.path_batch import PathBatch

            assert all(isinstance(chunk, PathBatch) for chunk in entry.store.chunks())

    def test_npz_spill_round_trip(self, graph, tmp_path):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        engine = create_engine(graph, "numpy")
        writer = SamplePool(engine, seed=5, spill_dir=tmp_path)
        expected = writer.paths(nodes[5], stop, 100)
        assert writer.spill_all() == 1
        (blob,) = tmp_path.glob("pool-*.chunk-*.npz")
        assert blob.stat().st_size > 0
        assert list(tmp_path.glob("pool-*.chunk-*.json")) == []
        fresh = SamplePool(create_engine(graph, "numpy"), seed=5, spill_dir=tmp_path)
        assert fresh.paths(nodes[5], stop, 100) == expected
        assert fresh.stats().loads == 1
        assert fresh.stats().drawn_paths == 0

    def test_foreign_engine_spill_rejected(self, graph, tmp_path):
        # Python- and numpy-engine pools draw different canonical streams
        # for the same seed; sharing a spill_dir must never let one adopt
        # the other's blobs (that would break warm == cold bit-identity).
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        writer = SamplePool(create_engine(graph, "python"), seed=5, spill_dir=tmp_path)
        python_stream = writer.paths(nodes[5], stop, 100)
        writer.spill_all()
        warm = SamplePool(create_engine(graph, "numpy"), seed=5, spill_dir=tmp_path)
        warm_stream = warm.paths(nodes[5], stop, 100)
        assert warm.stats().loads == 0  # the python spill was never opened
        cold = SamplePool(create_engine(graph, "numpy"), seed=5)
        assert warm_stream == cold.paths(nodes[5], stop, 100)
        assert warm_stream != python_stream

    def test_spills_shared_across_worker_counts(self, graph, tmp_path):
        # A ParallelEngine is transparent to the stream identity: spills
        # written under workers=N must load under the bare base engine.
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        with ParallelEngine(create_engine(graph, "numpy"), workers=4) as fanned:
            writer = SamplePool(fanned, seed=5, spill_dir=tmp_path)
            expected = writer.paths(nodes[5], stop, 3000)
            writer.spill_all()
        reader = SamplePool(create_engine(graph, "numpy"), seed=5, spill_dir=tmp_path)
        assert reader.paths(nodes[5], stop, 3000) == expected
        assert reader.stats().loads == 1
        assert reader.stats().drawn_paths == 0

    def test_npz_spill_foreign_seed_rejected(self, graph, tmp_path):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        engine = create_engine(graph, "numpy")
        writer = SamplePool(engine, seed=5, spill_dir=tmp_path)
        expected = writer.paths(nodes[5], stop, 100)
        writer.spill_all()
        other = SamplePool(engine, seed=6, spill_dir=tmp_path)
        assert other.paths(nodes[5], stop, 100) != expected
        assert other.stats().loads == 0

    def test_npz_spill_stale_csr_rejected(self, tmp_path):
        from repro.graph.generators import barabasi_albert_graph
        from repro.graph.weights import apply_degree_normalized_weights

        graph = apply_degree_normalized_weights(barabasi_albert_graph(150, 3, rng=29))
        target, stop = 80, graph.neighbor_set(0)
        before = SamplePool(create_engine(graph, "numpy"), seed=5, spill_dir=tmp_path)
        before.paths(target, stop, 64)
        assert before.spill_all() >= 1
        graph.add_edge(0, 80, weight_uv=0.15, weight_vu=0.15)
        stop = graph.neighbor_set(0)
        after = SamplePool(create_engine(graph, "numpy"), seed=5, spill_dir=tmp_path)
        refreshed = after.paths(target, stop, 64)
        assert after.stats().loads == 0  # dead-topology blobs never found
        fresh = SamplePool(create_engine(graph, "numpy"), seed=5)
        assert refreshed == fresh.paths(target, stop, 64)

    def test_npz_eviction_is_append_safe(self, graph, tmp_path):
        nodes = graph.node_list()
        stop = graph.neighbor_set(nodes[0])
        pool = SamplePool(
            create_engine(graph, "numpy"),
            seed=5,
            max_targets=1,
            chunk_size=64,
            spill_dir=tmp_path,
        )
        pool.paths(nodes[5], stop, 192)  # 3 chunks
        pool.paths(nodes[6], stop, 1)  # evict + spill
        assert pool.stats().chunk_writes == 3
        pool.paths(nodes[5], stop, 256)  # reload + 1 new chunk
        before = pool.stats().chunk_writes  # (nodes[6] was evicted+spilled too)
        pool.paths(nodes[6], stop, 1)  # evict the grown key again
        assert pool.stats().chunk_writes == before + 1  # only the new blob
        assert len(list(tmp_path.glob("pool-*.chunk-*.npz"))) == 5  # 4 + nodes[6]'s 1


class TestStatsSync:
    """stats()/cached_count() must reflect mutations immediately (PR 9 fix:
    both used to skip _sync_snapshot and report counts from the dead CSR
    until the next take/paths call)."""

    def _mutable_graph(self):
        from repro.graph.generators import barabasi_albert_graph
        from repro.graph.weights import apply_degree_normalized_weights

        return apply_degree_normalized_weights(barabasi_albert_graph(150, 3, rng=29))

    def test_stats_sees_a_mutation_before_the_next_take(self):
        graph = self._mutable_graph()
        target, stop = 80, graph.neighbor_set(0)
        pool = SamplePool(create_engine(graph, "python"), seed=5)
        pool.paths(target, stop, 64, stream=STREAM_PMAX)
        assert pool.stats().keys == 1
        graph.add_edge(0, 80, weight_uv=0.15, weight_vu=0.15)
        stats = pool.stats()  # no take in between
        assert stats.keys == 0 and stats.cached_paths == 0
        assert stats.invalidations == 1

    def test_cached_count_sees_a_mutation_before_the_next_take(self):
        graph = self._mutable_graph()
        target, stop = 80, graph.neighbor_set(0)
        pool = SamplePool(create_engine(graph, "python"), seed=5)
        pool.paths(target, stop, 64, stream=STREAM_PMAX)
        assert pool.cached_count(target, stop, STREAM_PMAX) >= 64
        graph.add_edge(0, 80, weight_uv=0.15, weight_vu=0.15)
        assert pool.cached_count(target, stop, STREAM_PMAX) == 0
