"""Property suite: random mutation sequences never corrupt a warm pool.

Hypothesis drives interleaved ``add_edge`` / ``remove_edge`` /
``set_weight`` / ``remove_node`` sequences against a live graph backing a
warm :class:`SamplePool`, asserting the two contracts of delta-scoped
invalidation (DESIGN.md §10) hold after *every* sync:

* **retention soundness** -- every key the pool kept warm yields a stream
  byte-identical to a cold pool built on the mutated topology (the pool
  may only keep a key when keeping it is indistinguishable from a full
  flush);
* **flush completeness** -- any key whose target falls inside the
  mutation's conservative affected set is no longer cached.

The base graph is deliberately sparse and multi-component so the
reverse-reachable closure of most mutations is small -- otherwise every
sequence would degenerate into full flushes and the retention branch would
go untested.  Hypothesis runs derandomized (the repo convention for
property suites), so a passing example stays passing in CI.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diffusion.engine import create_engine
from repro.graph.social_graph import SocialGraph
from repro.pool import STREAM_PMAX, SamplePool

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

NUM_NODES = 24
COMPONENT = 6  # nodes 0-5, 6-11, 12-17, 18-23 start as separate rings
PATHS_PER_KEY = 24
CHUNK = 8


def ring_components() -> SocialGraph:
    """Four disjoint weighted rings -- sparse, multi-component, normalized."""
    graph = SocialGraph(name="rings")
    for base in range(0, NUM_NODES, COMPONENT):
        for offset in range(COMPONENT):
            u = base + offset
            v = base + (offset + 1) % COMPONENT
            graph.add_edge(u, v, 0.3, 0.25)
    return graph


def headroom_weight(graph: SocialGraph, u: int, v: int, scale: float) -> float:
    """A weight for edge (u, v) that keeps v's in-row normalization-safe."""
    return round(min(0.2, scale * max(0.0, 1.0 - graph.total_in_weight(v))), 6)


MUTATIONS = st.lists(
    st.tuples(
        st.sampled_from(["add_edge", "remove_edge", "set_weight", "remove_node"]),
        st.integers(min_value=0, max_value=NUM_NODES - 1),
        st.integers(min_value=0, max_value=NUM_NODES - 1),
        st.floats(min_value=0.1, max_value=0.9),
    ),
    min_size=1,
    max_size=6,
)


def apply_mutation(graph: SocialGraph, op: str, u: int, v: int, scale: float) -> bool:
    """Apply one drawn mutation if it is legal; return whether it ran."""
    if op == "remove_node":
        if not graph.has_node(u):
            return False
        graph.remove_node(u)
        return True
    if u == v:
        return False
    if op == "add_edge":
        if graph.has_edge(u, v) or not (graph.has_node(u) and graph.has_node(v)):
            return False
        w_uv = headroom_weight(graph, u, v, scale)
        w_vu = headroom_weight(graph, v, u, scale)
        if w_uv <= 0.0 or w_vu <= 0.0:
            return False
        graph.add_edge(u, v, w_uv, w_vu)
        return True
    if not graph.has_edge(u, v):
        return False
    if op == "remove_edge":
        graph.remove_edge(u, v)
        return True
    # set_weight: shrink towards zero stays inside the existing headroom.
    new_weight = round(graph.weight(u, v) * scale, 6)
    if new_weight <= 0.0 or new_weight == graph.weight(u, v):
        return False
    graph.set_weight(u, v, new_weight)
    return True


@given(sequence=MUTATIONS)
@SETTINGS
def test_interleaved_mutations_keep_retained_keys_byte_identical(sequence):
    graph = ring_components()
    pool = SamplePool(create_engine(graph, "python"), seed=41, chunk_size=CHUNK)
    keys = [
        (target, graph.neighbor_set((target + 2) % NUM_NODES))
        for target in (1, 7, 13, 19)
    ]
    for target, stop in keys:
        pool.paths(target, stop, PATHS_PER_KEY, STREAM_PMAX)

    for op, u, v, scale in sequence:
        if not apply_mutation(graph, op, u, v, scale):
            continue
        warm = {
            (target, stop): pool.cached_count(target, stop, STREAM_PMAX)
            for target, stop in keys
            if graph.has_node(target)
        }
        cold = SamplePool(create_engine(graph, "python"), seed=41, chunk_size=CHUNK)
        for (target, stop), cached in warm.items():
            expected = cold.paths(target, stop, PATHS_PER_KEY, STREAM_PMAX)
            if cached:
                drawn = pool.drawn_paths
                assert pool.paths(target, stop, cached, STREAM_PMAX) == expected[:cached]
                assert pool.drawn_paths == drawn, (
                    f"retained key {target} re-drew after {op}({u}, {v})"
                )
            assert pool.paths(target, stop, PATHS_PER_KEY, STREAM_PMAX) == expected

    removed = {target for target, _ in keys if not graph.has_node(target)}
    cached_targets = {entry.target for entry in pool._entries.values()}
    assert not removed & cached_targets  # removed targets never resurrected


@given(sequence=MUTATIONS)
@SETTINGS
def test_touched_targets_are_never_served_from_cache(sequence):
    graph = ring_components()
    pool = SamplePool(create_engine(graph, "python"), seed=41, chunk_size=CHUNK)
    keys = [
        (target, graph.neighbor_set((target + 2) % NUM_NODES))
        for target in (1, 7, 13, 19)
    ]
    for target, stop in keys:
        pool.paths(target, stop, PATHS_PER_KEY, STREAM_PMAX)

    for op, u, v, scale in sequence:
        before = graph.version
        if not apply_mutation(graph, op, u, v, scale):
            assert graph.version == before  # rejected ops must not bump
            continue
        events = graph.mutations_since(before)
        assert events is not None and len(events) == 1
        touched = events[0].touched
        pool.stats()  # force the sync
        if touched is None:
            for target, stop in keys:
                if graph.has_node(target):
                    assert pool.cached_count(target, stop, STREAM_PMAX) == 0
            continue
        for target, stop in keys:
            if graph.has_node(target) and target in touched:
                assert pool.cached_count(target, stop, STREAM_PMAX) == 0, (
                    f"key {target} survived {op}({u}, {v}) touching it"
                )
