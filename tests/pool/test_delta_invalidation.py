"""Delta-scoped pool invalidation under live graph mutation (DESIGN.md §10).

One edge write must not flush every warm key: the pool maps the graph's
structured mutation log to a conservative affected set over the *old* CSR
and keeps every key outside it -- in memory and on disk -- while remaining
byte-identical to a cold pool on the new topology.  These tests construct
graphs with more than one component (or zero-weight barriers) because the
reverse-reachable closure of a mutation inside one connected
positive-weight component is that whole component: retention wins exactly
when the closure is smaller than the graph.
"""

from __future__ import annotations

import pytest

from repro.diffusion.engine import create_engine
from repro.graph.compiled import compile_graph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights
from repro.parallel.engine import ParallelEngine
from repro.pool import STREAM_PMAX, SamplePool


def two_region_graph(main_n=80, side_n=20):
    """A weighted BA main component plus a disjoint side community."""
    main = apply_degree_normalized_weights(barabasi_albert_graph(main_n, 3, rng=17))
    side = apply_degree_normalized_weights(barabasi_albert_graph(side_n, 2, rng=23))
    graph = SocialGraph(name="two-region")
    for u, v in main.edges():
        graph.add_edge(u, v, main.weight(u, v), main.weight(v, u))
    for u, v in side.edges():
        graph.add_edge(u + main_n, v + main_n, side.weight(u, v), side.weight(v, u))
    return graph


def side_arrival(graph, rng_pair=(180, 190)):
    """Insert one new edge inside the side community (headroom-safe)."""
    u, v = rng_pair
    for candidate in range(80, 100):
        if candidate != u and not graph.has_edge(u, candidate):
            v = candidate
            break
    graph.add_edge(
        u, v,
        min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(v))),
        min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(u))),
    )
    return u, v


class TestDeltaRetention:
    def test_far_keys_survive_without_redrawing(self):
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        main_keys = [(t, graph.neighbor_set(s)) for s, t in [(0, 40), (1, 50), (2, 60)]]
        before = {key[0]: pool.paths(key[0], key[1], 32, STREAM_PMAX) for key in main_keys}
        side_arrival(graph, rng_pair=(85, 95))
        drawn = pool.drawn_paths
        stats = pool.stats()
        assert stats.invalidations == 1
        assert stats.retained_keys == 3 and stats.flushed_keys == 0
        for target, stop in main_keys:
            assert pool.paths(target, stop, 32, STREAM_PMAX) == before[target]
        assert pool.drawn_paths == drawn  # retention means zero re-draws

    def test_retained_streams_equal_a_cold_pool_on_the_new_topology(self):
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        pool.paths(40, stop, 48, STREAM_PMAX)
        side_arrival(graph, rng_pair=(85, 95))
        cold = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        assert pool.paths(40, stop, 48, STREAM_PMAX) == cold.paths(40, stop, 48, STREAM_PMAX)

    def test_touched_keys_are_flushed(self):
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        main_stop = graph.neighbor_set(0)
        side_stop = graph.neighbor_set(80)
        pool.paths(40, main_stop, 32, STREAM_PMAX)
        pool.paths(90, side_stop, 32, STREAM_PMAX)
        side_arrival(graph, rng_pair=(85, 95))
        stats = pool.stats()
        assert stats.retained_keys == 1 and stats.flushed_keys == 1
        assert pool.cached_count(40, main_stop, STREAM_PMAX) > 0
        assert pool.cached_count(90, side_stop, STREAM_PMAX) == 0
        cold = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        assert pool.paths(90, side_stop, 32, STREAM_PMAX) == cold.paths(
            90, side_stop, 32, STREAM_PMAX
        )

    def test_growing_a_retained_key_stays_canonical(self):
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        pool.paths(40, stop, 16, STREAM_PMAX)  # one chunk warm
        side_arrival(graph, rng_pair=(85, 95))
        grown = pool.paths(40, stop, 48, STREAM_PMAX)  # extend past the warm prefix
        cold = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        assert grown == cold.paths(40, stop, 48, STREAM_PMAX)

    def test_multiple_mutation_rounds_accumulate(self):
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        expected = pool.paths(40, stop, 32, STREAM_PMAX)
        for pair in ((85, 95), (81, 97), (82, 99)):
            side_arrival(graph, rng_pair=pair)
            assert pool.paths(40, stop, 32, STREAM_PMAX) == expected
        assert pool.stats().invalidations == 3
        assert pool.stats().retained_keys == 3


class TestFullFlushFallbacks:
    def test_pinned_engine_falls_back_to_full_flush(self):
        graph = two_region_graph()
        engine = create_engine(compile_graph(graph), "python")  # snapshot-pinned
        assert engine.source_graph is None
        pool = SamplePool(engine, seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        pool.paths(40, stop, 16, STREAM_PMAX)
        # A pinned engine never re-snapshots, so no invalidation can even
        # occur; the fallback is observable through _delta_affected.
        assert pool._delta_affected(pool._snapshot) is None

    def test_opaque_mutation_flushes_everything(self):
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        pool.paths(40, stop, 16, STREAM_PMAX)
        graph._invalidate()  # an untyped legacy invalidation
        stats = pool.stats()
        assert stats.keys == 0 and stats.flushed_keys == 1

    def test_bfs_cap_overrun_flushes_everything(self):
        graph = two_region_graph()
        pool = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16, delta_nodes=2
        )
        stop = graph.neighbor_set(0)
        pool.paths(40, stop, 16, STREAM_PMAX)
        side_arrival(graph, rng_pair=(85, 95))  # side closure > 2 nodes
        stats = pool.stats()
        assert stats.keys == 0 and stats.flushed_keys == 1

    def test_log_overrun_flushes_everything(self):
        from repro.graph.social_graph import MUTATION_LOG_LIMIT

        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        pool.paths(40, stop, 16, STREAM_PMAX)
        for index in range(MUTATION_LOG_LIMIT + 1):
            graph.add_node(f"fresh-{index}")  # harmless events, but too many
        stats = pool.stats()
        assert stats.keys == 0 and stats.flushed_keys == 1

    def test_add_node_only_deltas_retain_everything(self):
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        expected = pool.paths(40, stop, 16, STREAM_PMAX)
        graph.add_node("newcomer")  # touches no in-row
        stats = pool.stats()
        assert stats.keys == 1 and stats.retained_keys == 1
        cold = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        assert expected == cold.paths(40, stop, 16, STREAM_PMAX)


class TestSpillCompatibilityAcrossResnapshots:
    def test_historical_spill_loads_for_an_unaffected_key(self, tmp_path):
        graph = two_region_graph()
        pool = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16,
            max_targets=2, spill_dir=tmp_path,
        )
        stop = graph.neighbor_set(0)
        expected = pool.paths(40, stop, 32, STREAM_PMAX)
        # Evict the key by warming two more, spilling it under the old digest.
        pool.paths(50, graph.neighbor_set(1), 16, STREAM_PMAX)
        pool.paths(60, graph.neighbor_set(2), 16, STREAM_PMAX)
        assert pool.stats().spills >= 1
        side_arrival(graph, rng_pair=(85, 95))
        pool.stats()  # sync: the transition lands in the digest history
        drawn = pool.drawn_paths
        assert pool.paths(40, stop, 32, STREAM_PMAX) == expected
        assert pool.drawn_paths == drawn  # loaded from the old-digest blobs
        assert pool.stats().loads >= 1

    def test_historical_spill_rejected_for_an_affected_key(self, tmp_path):
        graph = two_region_graph()
        pool = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16,
            max_targets=2, spill_dir=tmp_path,
        )
        side_stop = graph.neighbor_set(80)
        pool.paths(90, side_stop, 32, STREAM_PMAX)  # side-community key
        pool.paths(50, graph.neighbor_set(1), 16, STREAM_PMAX)
        pool.paths(60, graph.neighbor_set(2), 16, STREAM_PMAX)  # evicts key 90
        assert pool.stats().spills >= 1
        side_arrival(graph, rng_pair=(85, 95))
        drawn = pool.drawn_paths
        refreshed = pool.paths(90, side_stop, 32, STREAM_PMAX)
        assert pool.drawn_paths > drawn  # the stale spill was not loaded
        cold = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        assert refreshed == cold.paths(90, side_stop, 32, STREAM_PMAX)

    def test_fresh_pools_do_not_see_historical_spills(self, tmp_path):
        # The persisted lineage record binds the digest current at spill
        # time; this pool spilled *before* the mutation, so a new pool on
        # the mutated graph finds a record for a digest it does not have
        # and adopts nothing (adoption after restart requires the writer to
        # have observed the mutation -- see test_pool_restart.py).
        graph = two_region_graph()
        writer = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16, spill_dir=tmp_path
        )
        stop = graph.neighbor_set(0)
        expected = writer.paths(40, stop, 32, STREAM_PMAX)
        assert writer.spill_all() >= 1
        side_arrival(graph, rng_pair=(85, 95))
        reader = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16, spill_dir=tmp_path
        )
        assert reader.paths(40, stop, 32, STREAM_PMAX) == expected  # same stream...
        assert reader.stats().loads == 0  # ...but re-drawn, not loaded

    def test_remove_node_disables_spilling_but_keeps_warmth(self, tmp_path):
        graph = two_region_graph()
        pool = SamplePool(
            create_engine(graph, "python"), seed=9, chunk_size=16, spill_dir=tmp_path
        )
        stop = graph.neighbor_set(0)
        expected = pool.paths(40, stop, 32, STREAM_PMAX)
        graph.remove_node(95)  # side community: main keys unaffected
        stats = pool.stats()
        assert stats.keys == 1 and stats.retained_keys == 1
        drawn = pool.drawn_paths
        assert pool.paths(40, stop, 32, STREAM_PMAX) == expected  # still warm
        assert pool.drawn_paths == drawn
        # ...but the interning shifted, so the key must not spill anymore.
        assert pool.spill_all() == 0
        cold = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        assert pool.paths(40, stop, 32, STREAM_PMAX) == cold.paths(
            40, stop, 32, STREAM_PMAX
        )


class TestEngineSourceGraph:
    def test_live_engine_exposes_its_graph(self):
        graph = two_region_graph()
        engine = create_engine(graph, "python")
        assert engine.source_graph is graph

    def test_parallel_engine_proxies_the_base(self):
        graph = two_region_graph()
        engine = ParallelEngine(create_engine(graph, "python"), workers=2)
        assert engine.source_graph is graph
        pinned = ParallelEngine(create_engine(compile_graph(graph), "python"), workers=2)
        assert pinned.source_graph is None


@pytest.mark.parametrize("backend", ["python", "numpy"])
class TestBackendParity:
    def test_retention_is_backend_agnostic(self, backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        graph = two_region_graph()
        pool = SamplePool(create_engine(graph, backend), seed=9, chunk_size=16)
        stop = graph.neighbor_set(0)
        expected = pool.paths(40, stop, 32, STREAM_PMAX)
        side_arrival(graph, rng_pair=(85, 95))
        assert pool.stats().retained_keys == 1
        cold = SamplePool(create_engine(graph, backend), seed=9, chunk_size=16)
        assert expected == cold.paths(40, stop, 32, STREAM_PMAX)
        assert pool.paths(40, stop, 32, STREAM_PMAX) == expected
