"""Durable pool restarts: spill adoption across process boundaries.

The contract under test (DESIGN.md §11): a fresh :class:`SamplePool`
pointed at an existing ``spill_dir`` with the same pool seed, chunk size
and engine adopts its predecessor's spills -- including, through the
persisted digest-lineage record, blobs written under an *ancestor* CSR
digest for keys the recorded mutations never touched.  Adopted streams are
byte-identical to cold draws; anything that cannot be proven compatible
(other seed, other engine, unmatched digest, malformed or crash-interrupted
records) is silently re-drawn, never mis-served.
"""

from __future__ import annotations

import json

import pytest

from repro.diffusion.engine import available_engines, create_engine
from repro.faults import SITE_SPILL_IO, FaultPlan
from repro.graph.generators import barabasi_albert_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights
from repro.pool import STREAM_PMAX, SamplePool


def two_region_graph(main_n=80, side_n=20):
    """A weighted BA main component plus a disjoint side community.

    Two components keep a side-community mutation's reverse-reachable
    closure away from the main-community keys, so those keys survive the
    mutation and restart adoption across it is actually exercised (same
    construction as test_delta_invalidation.py).
    """
    main = apply_degree_normalized_weights(barabasi_albert_graph(main_n, 3, rng=17))
    side = apply_degree_normalized_weights(barabasi_albert_graph(side_n, 2, rng=23))
    graph = SocialGraph(name="two-region")
    for u, v in main.edges():
        graph.add_edge(u, v, main.weight(u, v), main.weight(v, u))
    for u, v in side.edges():
        graph.add_edge(u + main_n, v + main_n, side.weight(u, v), side.weight(v, u))
    return graph


def side_arrival(graph, rng_pair=(180, 190)):
    """Insert one new edge inside the side community (headroom-safe)."""
    u, v = rng_pair
    for candidate in range(80, 100):
        if candidate != u and not graph.has_edge(u, candidate):
            v = candidate
            break
    graph.add_edge(
        u, v,
        min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(v))),
        min(0.2, 0.5 * max(0.0, 1.0 - graph.total_in_weight(u))),
    )
    return u, v


def _pool(graph, tmp_path, seed=9, **kwargs):
    return SamplePool(
        create_engine(graph, "python"), seed=seed, chunk_size=16,
        spill_dir=tmp_path, **kwargs,
    )


class TestWarmRestart:
    def test_restarted_pool_serves_spills_byte_identically(self, tmp_path):
        graph = two_region_graph()
        writer = _pool(graph, tmp_path)
        keys = [(t, graph.neighbor_set(s)) for s, t in [(0, 40), (1, 50), (80, 90)]]
        expected = {t: writer.paths(t, stop, 48, STREAM_PMAX) for t, stop in keys}
        assert writer.spill_all() == 3
        restarted = _pool(graph, tmp_path)
        for target, stop in keys:
            assert restarted.paths(target, stop, 48, STREAM_PMAX) == expected[target]
        stats = restarted.stats()
        assert stats.loads == 3
        assert stats.drawn_paths == 0  # every sample came off disk

    def test_adoption_requires_matching_seed(self, tmp_path):
        graph = two_region_graph()
        writer = _pool(graph, tmp_path, seed=9)
        stop = graph.neighbor_set(0)
        writer.paths(40, stop, 32, STREAM_PMAX)
        writer.spill_all()
        other = _pool(graph, tmp_path, seed=10)
        other.paths(40, stop, 32, STREAM_PMAX)
        assert other.stats().loads == 0


class TestLineageAdoption:
    """Restart adoption across a recorded mutation (the new capability)."""

    def _spill_then_mutate(self, tmp_path):
        """Warm a main-community key, record a side mutation, checkpoint."""
        graph = two_region_graph()
        writer = _pool(graph, tmp_path)
        stop = graph.neighbor_set(0)
        expected = writer.paths(40, stop, 48, STREAM_PMAX)
        assert writer.spill_all() == 1  # blobs land under the old digest
        side_arrival(graph, rng_pair=(85, 95))
        # The live writer observes the mutation; the refreshed lineage
        # record now binds the *new* digest to the old-digest transition.
        assert writer.spill_all() >= 0
        return graph, stop, expected

    def test_restarted_pool_adopts_ancestor_spills(self, tmp_path):
        graph, stop, expected = self._spill_then_mutate(tmp_path)
        restarted = _pool(graph, tmp_path)
        assert restarted.paths(40, stop, 48, STREAM_PMAX) == expected
        stats = restarted.stats()
        assert stats.loads == 1
        assert stats.drawn_paths == 0

    def test_affected_keys_are_never_adopted_across_the_mutation(self, tmp_path):
        graph = two_region_graph()
        writer = _pool(graph, tmp_path)
        side_stop = graph.neighbor_set(80)
        writer.paths(90, side_stop, 32, STREAM_PMAX)  # side-community key
        assert writer.spill_all() == 1
        side_arrival(graph, rng_pair=(85, 95))  # invalidates that key
        writer.spill_all()
        restarted = _pool(graph, tmp_path)
        refreshed = restarted.paths(90, side_stop, 32, STREAM_PMAX)
        assert restarted.stats().loads == 0  # stale blobs rejected
        cold = SamplePool(create_engine(graph, "python"), seed=9, chunk_size=16)
        assert refreshed == cold.paths(90, side_stop, 32, STREAM_PMAX)

    def test_lineage_for_another_digest_adopts_nothing(self, tmp_path):
        graph, stop, expected = self._spill_then_mutate(tmp_path)
        side_arrival(graph, rng_pair=(86, 96))  # a mutation nobody recorded
        restarted = _pool(graph, tmp_path)
        assert restarted.paths(40, stop, 48, STREAM_PMAX) == expected
        assert restarted.stats().loads == 0  # same stream, but re-drawn

    def test_malformed_lineage_record_is_ignored(self, tmp_path):
        graph, stop, expected = self._spill_then_mutate(tmp_path)
        (record,) = tmp_path.glob("pool-lineage-*.json")
        record.write_text("{not json", encoding="utf-8")
        restarted = _pool(graph, tmp_path)  # must not raise
        assert restarted.paths(40, stop, 48, STREAM_PMAX) == expected
        assert restarted.stats().loads == 0

    def test_truncated_lineage_record_is_ignored(self, tmp_path):
        graph, stop, expected = self._spill_then_mutate(tmp_path)
        (record,) = tmp_path.glob("pool-lineage-*.json")
        payload = json.loads(record.read_text(encoding="utf-8"))
        payload["lineage"] = [{"digest": "bogus"}]  # missing required fields
        record.write_text(json.dumps(payload), encoding="utf-8")
        restarted = _pool(graph, tmp_path)
        assert restarted.paths(40, stop, 48, STREAM_PMAX) == expected
        assert restarted.stats().loads == 0


class TestSpillFaults:
    def test_injected_spill_error_keeps_the_key_in_memory(self, tmp_path):
        graph = two_region_graph()
        plan = FaultPlan(spill_fail_at={0})
        pool = _pool(graph, tmp_path, fault_plan=plan)
        stop = graph.neighbor_set(0)
        expected = pool.paths(40, stop, 48, STREAM_PMAX)
        assert pool.spill_all() == 0  # the write failed...
        stats = pool.stats()
        assert stats.spill_errors == 1
        assert plan.injected(SITE_SPILL_IO) == 1
        # ...but serving is unaffected, from memory, byte-identically.
        assert pool.paths(40, stop, 48, STREAM_PMAX) == expected
        assert pool.drawn_paths == stats.drawn_paths

    def test_spill_retry_succeeds_after_the_fault_passes(self, tmp_path):
        graph = two_region_graph()
        plan = FaultPlan(spill_fail_at={0})
        pool = _pool(graph, tmp_path, fault_plan=plan)
        stop = graph.neighbor_set(0)
        expected = pool.paths(40, stop, 48, STREAM_PMAX)
        assert pool.spill_all() == 0
        assert pool.spill_all() == 1  # occurrence 1 does not fire
        restarted = _pool(graph, tmp_path)
        assert restarted.paths(40, stop, 48, STREAM_PMAX) == expected
        assert restarted.stats().loads == 1

    def test_failed_spill_leaves_no_partial_files(self, tmp_path):
        graph = two_region_graph()
        plan = FaultPlan(spill_fail_at={0})
        pool = _pool(graph, tmp_path, fault_plan=plan)
        pool.paths(40, graph.neighbor_set(0), 48, STREAM_PMAX)
        assert pool.spill_all() == 0
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob("pool-*.meta.json")) == []


class TestCrashInterruptedSpills:
    def test_leftover_tmp_files_are_never_adopted(self, tmp_path):
        graph = two_region_graph()
        writer = _pool(graph, tmp_path)
        stop = graph.neighbor_set(0)
        expected = writer.paths(40, stop, 48, STREAM_PMAX)
        assert writer.spill_all() == 1
        # Simulate a crash mid-write: a half-written temp file next to the
        # real ones.  tmp+rename means it was never observable as a blob.
        (tmp_path / "pool-deadbeef.meta.json.tmp").write_text("{", encoding="utf-8")
        restarted = _pool(graph, tmp_path)
        assert restarted.paths(40, stop, 48, STREAM_PMAX) == expected
        assert restarted.stats().loads == 1

    def test_corrupt_meta_means_redraw_not_corruption(self, tmp_path):
        graph = two_region_graph()
        writer = _pool(graph, tmp_path)
        stop = graph.neighbor_set(0)
        expected = writer.paths(40, stop, 48, STREAM_PMAX)
        assert writer.spill_all() == 1
        (meta,) = tmp_path.glob("pool-*.meta.json")
        meta.write_text("garbage", encoding="utf-8")
        restarted = _pool(graph, tmp_path)
        assert restarted.paths(40, stop, 48, STREAM_PMAX) == expected
        assert restarted.stats().loads == 0  # re-drawn, byte-identical


class TestLineageRecordHygiene:
    def test_lineage_file_is_canonical_json_with_bound_identity(self, tmp_path):
        graph = two_region_graph()
        writer = _pool(graph, tmp_path)
        writer.paths(40, graph.neighbor_set(0), 32, STREAM_PMAX)
        assert writer.spill_all() == 1
        (record,) = tmp_path.glob("pool-lineage-*.json")
        text = record.read_text(encoding="utf-8")
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True)
        assert payload["pool_seed"] == 9
        assert payload["chunk_size"] == 16
        assert payload["engine"] == "python"
        assert payload["csr"]
        assert not list(tmp_path.glob("*.tmp"))

    def test_no_lineage_record_without_successful_spills(self, tmp_path):
        graph = two_region_graph()
        pool = _pool(graph, tmp_path)
        pool.paths(40, graph.neighbor_set(0), 32, STREAM_PMAX)
        assert list(tmp_path.glob("pool-lineage-*.json")) == []

    @pytest.mark.skipif("numpy" not in available_engines(), reason="requires numpy")
    def test_adoption_requires_matching_engine_name(self, tmp_path):
        graph = two_region_graph()
        writer = _pool(graph, tmp_path)
        stop = graph.neighbor_set(0)
        writer.paths(40, stop, 32, STREAM_PMAX)
        assert writer.spill_all() == 1
        side_arrival(graph, rng_pair=(85, 95))
        writer.spill_all()
        numpy_pool = SamplePool(
            create_engine(graph, "numpy"), seed=9, chunk_size=16, spill_dir=tmp_path
        )
        numpy_pool.paths(40, stop, 32, STREAM_PMAX)
        assert numpy_pool.stats().loads == 0  # scope (engine) mismatch
