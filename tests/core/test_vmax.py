"""Tests for repro.core.vmax (Lemma 7).

Correctness is checked two ways: against hand-computed sets on small
topologies, and against the defining property -- ``Vmax`` achieves the same
acceptance probability as inviting everyone, while removing any of its
members strictly hurts.
"""

from __future__ import annotations

import pytest

from repro.core.vmax import compute_vmax, pmax_upper_invitation
from repro.diffusion.friending_process import estimate_acceptance_probability
from repro.exceptions import ProblemDefinitionError
from repro.graph.generators import barabasi_albert_graph, path_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.weights import apply_degree_normalized_weights


class TestSmallTopologies:
    def test_chain(self, chain_graph):
        assert compute_vmax(chain_graph, "s", "t") == frozenset({"b", "t"})

    def test_diamond_includes_both_routes(self, diamond_graph):
        assert compute_vmax(diamond_graph, "s", "t") == frozenset({"x1", "x2", "t"})

    def test_dangling_branch_excluded(self):
        # s - a - b - t with a pendant node hanging off b: the pendant is on
        # no N_s -> t path, so it is not in Vmax.
        graph = apply_degree_normalized_weights(
            SocialGraph(edges=[("s", "a"), ("a", "b"), ("b", "t"), ("b", "pendant")])
        )
        assert compute_vmax(graph, "s", "t") == frozenset({"b", "t"})

    def test_target_adjacent_to_circle(self):
        # s - a - t: the only node that needs an invitation is t itself.
        graph = apply_degree_normalized_weights(path_graph(3))
        assert compute_vmax(graph, 0, 2) == frozenset({2})

    def test_unreachable_target_gives_empty_set(self):
        graph = apply_degree_normalized_weights(
            SocialGraph(edges=[("s", "a"), ("t", "x")])
        )
        assert compute_vmax(graph, "s", "t") == frozenset()

    def test_path_through_source_friends_only_counts_outside(self, worked_example_graph):
        # Routes to t go through c (friend of a and b in N_s) and d.
        assert compute_vmax(worked_example_graph, "s", "t") == frozenset({"c", "d", "t"})

    def test_same_user_rejected(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            compute_vmax(diamond_graph, "s", "s")

    def test_already_friends_rejected(self, diamond_graph):
        with pytest.raises(ProblemDefinitionError):
            compute_vmax(diamond_graph, "s", "a")

    def test_alias(self, chain_graph):
        assert pmax_upper_invitation(chain_graph, "s", "t") == compute_vmax(chain_graph, "s", "t")


class TestLemma7Properties:
    """Vmax achieves pmax, and removing any member strictly decreases f."""

    @pytest.fixture
    def ba_instance(self):
        graph = apply_degree_normalized_weights(barabasi_albert_graph(50, 2, rng=5))
        source = 0
        target = next(
            node
            for node in reversed(graph.node_list())
            if node != source and not graph.has_edge(source, node)
        )
        return graph, source, target

    def test_vmax_achieves_pmax(self, ba_instance):
        graph, source, target = ba_instance
        vmax = compute_vmax(graph, source, target)
        samples = 4000
        f_vmax = estimate_acceptance_probability(
            graph, source, target, vmax, num_samples=samples, rng=1
        ).probability
        f_all = estimate_acceptance_probability(
            graph, source, target, graph.node_list(), num_samples=samples, rng=2
        ).probability
        assert f_vmax == pytest.approx(f_all, abs=0.04)

    def test_vmax_members_are_outside_circle(self, ba_instance):
        graph, source, target = ba_instance
        vmax = compute_vmax(graph, source, target)
        assert source not in vmax
        assert not (vmax & graph.neighbor_set(source))
        assert target in vmax

    def test_removing_a_member_hurts_on_chain(self, chain_graph):
        vmax = compute_vmax(chain_graph, "s", "t")
        full = estimate_acceptance_probability(
            chain_graph, "s", "t", vmax, num_samples=3000, rng=3
        ).probability
        for member in vmax:
            reduced = estimate_acceptance_probability(
                chain_graph, "s", "t", vmax - {member}, num_samples=3000, rng=4
            ).probability
            assert reduced < full

    def test_removing_a_member_hurts_on_diamond(self, diamond_graph):
        vmax = compute_vmax(diamond_graph, "s", "t")
        full = estimate_acceptance_probability(
            diamond_graph, "s", "t", vmax, num_samples=5000, rng=5
        ).probability
        for member in vmax:
            reduced = estimate_acceptance_probability(
                diamond_graph, "s", "t", vmax - {member}, num_samples=5000, rng=6
            ).probability
            assert reduced < full - 0.02
