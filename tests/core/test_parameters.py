"""Tests for repro.core.parameters (Equation System 1 / Eq. 17)."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    ParameterCoupling,
    SamplePolicy,
    realization_count,
    solve_parameters,
)
from repro.exceptions import ParameterSolverError


class TestSolveParameters:
    @pytest.mark.parametrize("alpha,epsilon", [(0.1, 0.01), (0.3, 0.05), (0.9, 0.1), (1.0, 0.2)])
    @pytest.mark.parametrize("coupling", [ParameterCoupling.BALANCED, ParameterCoupling.PAPER])
    def test_equation_13_is_satisfied(self, alpha, epsilon, coupling):
        parameters = solve_parameters(alpha, epsilon, num_nodes=500, coupling=coupling)
        # beta * (1 - eps1(1+eps0)) - eps1(1+eps0) == alpha - epsilon (Eq. 13)
        assert parameters.residual() == pytest.approx(0.0, abs=1e-8)

    @pytest.mark.parametrize("alpha,epsilon", [(0.1, 0.01), (0.5, 0.1)])
    def test_equation_12_defines_beta(self, alpha, epsilon):
        parameters = solve_parameters(alpha, epsilon, num_nodes=100)
        x = parameters.x
        assert parameters.beta == pytest.approx((alpha - x) / (1.0 + x))
        assert parameters.beta > 0

    def test_paper_coupling_ties_eps0_to_n_eps1(self):
        parameters = solve_parameters(0.1, 0.01, num_nodes=1000, coupling=ParameterCoupling.PAPER)
        assert parameters.epsilon_zero == pytest.approx(1000 * parameters.epsilon_one)

    def test_balanced_coupling_equalizes(self):
        parameters = solve_parameters(0.1, 0.01, num_nodes=1000, coupling=ParameterCoupling.BALANCED)
        assert parameters.epsilon_zero == pytest.approx(parameters.epsilon_one)

    def test_epsilons_positive(self):
        parameters = solve_parameters(0.2, 0.05, num_nodes=50)
        assert parameters.epsilon_zero > 0
        assert parameters.epsilon_one > 0

    def test_smaller_epsilon_means_smaller_tolerances(self):
        loose = solve_parameters(0.2, 0.1, num_nodes=100)
        tight = solve_parameters(0.2, 0.01, num_nodes=100)
        assert tight.epsilon_one < loose.epsilon_one
        assert tight.beta > loose.beta

    def test_beta_below_alpha(self):
        parameters = solve_parameters(0.3, 0.05, num_nodes=100)
        assert parameters.beta < 0.3

    def test_paper_coupling_exceeds_one_for_large_n(self):
        """Documents the Eq. (17) pathology discussed in DESIGN.md."""
        parameters = solve_parameters(0.1, 0.01, num_nodes=7000, coupling=ParameterCoupling.PAPER)
        assert parameters.epsilon_zero > 1.0

    @pytest.mark.parametrize("alpha,epsilon", [(0.1, 0.1), (0.1, 0.2), (0.1, 0.0), (0.1, -0.1)])
    def test_epsilon_must_be_between_zero_and_alpha(self, alpha, epsilon):
        with pytest.raises(ParameterSolverError):
            solve_parameters(alpha, epsilon, num_nodes=100)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            solve_parameters(1.5, 0.1, num_nodes=100)

    def test_coupling_accepts_strings(self):
        parameters = solve_parameters(0.2, 0.02, num_nodes=100, coupling="paper")
        assert parameters.coupling is ParameterCoupling.PAPER


class TestRealizationCount:
    @pytest.fixture
    def parameters(self):
        return solve_parameters(0.2, 0.05, num_nodes=200, coupling=ParameterCoupling.BALANCED)

    def test_fixed_policy_returns_given_value(self, parameters):
        assert realization_count(parameters, 0.1, 1000.0, policy="fixed", fixed=1234) == 1234

    def test_fixed_policy_requires_value(self, parameters):
        with pytest.raises(ParameterSolverError):
            realization_count(parameters, 0.1, 1000.0, policy="fixed")

    def test_theoretical_policy_matches_eq16(self, parameters):
        from repro.estimation.bounds import theoretical_realization_count

        value = realization_count(parameters, 0.05, 1000.0, policy="theoretical")
        expected = theoretical_realization_count(
            200, 1000.0, parameters.epsilon_one, parameters.epsilon_zero, 0.05
        )
        assert value == expected

    def test_theoretical_policy_rejects_large_eps0(self):
        paper = solve_parameters(0.1, 0.01, num_nodes=7000, coupling=ParameterCoupling.PAPER)
        with pytest.raises(ParameterSolverError):
            realization_count(paper, 0.05, 1000.0, policy="theoretical")

    def test_practical_policy_respects_clamp(self, parameters):
        value = realization_count(
            parameters, 0.05, 1000.0, policy="practical",
            min_realizations=500, max_realizations=2000,
        )
        assert 500 <= value <= 2000

    def test_practical_policy_scales_with_pmax(self, parameters):
        rare = realization_count(
            parameters, 0.001, 1000.0, policy="practical",
            min_realizations=1, max_realizations=10**9,
        )
        common = realization_count(
            parameters, 0.5, 1000.0, policy="practical",
            min_realizations=1, max_realizations=10**9,
        )
        assert rare > common

    def test_practical_policy_requires_valid_clamp(self, parameters):
        with pytest.raises(ValueError):
            realization_count(
                parameters, 0.05, 1000.0, policy="practical",
                min_realizations=100, max_realizations=10,
            )

    def test_requires_positive_pmax_for_adaptive_policies(self, parameters):
        with pytest.raises(ValueError):
            realization_count(parameters, 0.0, 1000.0, policy="practical")

    def test_sample_policy_enum_round_trip(self):
        assert SamplePolicy("fixed") is SamplePolicy.FIXED
        assert SamplePolicy("practical") is SamplePolicy.PRACTICAL
        assert SamplePolicy("theoretical") is SamplePolicy.THEORETICAL
