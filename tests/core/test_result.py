"""Tests for repro.core.result."""

from __future__ import annotations

import pytest

from repro.core.parameters import ParameterCoupling, RAFParameters
from repro.core.result import InvitationResult, RAFResult


def _parameters() -> RAFParameters:
    return RAFParameters(
        alpha=0.2,
        epsilon=0.05,
        num_nodes=100,
        coupling=ParameterCoupling.BALANCED,
        epsilon_zero=0.03,
        epsilon_one=0.03,
        beta=0.15,
    )


def _raf_result(**overrides) -> RAFResult:
    values = dict(
        invitation=frozenset({1, 2, 3}),
        pmax_estimate=0.12,
        pmax_samples=5000,
        num_realizations=4000,
        num_type1=500,
        cover_target=75,
        covered_weight=90,
        parameters=_parameters(),
        approx_ratio_bound=44.7,
        msc_solver="chlamtac",
        elapsed_seconds=0.5,
    )
    values.update(overrides)
    return RAFResult(**values)


class TestInvitationResult:
    def test_size(self):
        result = InvitationResult(invitation=frozenset({1, 2}), algorithm="HD")
        assert result.size == 2

    def test_contains(self):
        result = InvitationResult(invitation=frozenset({1, 2}), algorithm="HD")
        assert 1 in result
        assert 9 not in result

    def test_metadata_defaults_empty(self):
        assert InvitationResult(frozenset(), "SP").metadata == {}

    def test_frozen(self):
        result = InvitationResult(frozenset(), "SP")
        with pytest.raises(AttributeError):
            result.algorithm = "other"  # type: ignore[misc]


class TestRAFResult:
    def test_size_and_contains(self):
        result = _raf_result()
        assert result.size == 3
        assert 2 in result
        assert 99 not in result

    def test_algorithm_name(self):
        assert _raf_result().algorithm == "RAF"

    def test_coverage_fraction(self):
        assert _raf_result().coverage_fraction == pytest.approx(90 / 500)

    def test_coverage_fraction_empty(self):
        assert _raf_result(num_type1=0, covered_weight=0, cover_target=0).coverage_fraction == 0.0

    def test_as_invitation_result_copies_key_fields(self):
        result = _raf_result()
        generic = result.as_invitation_result()
        assert generic.invitation == result.invitation
        assert generic.algorithm == "RAF"
        assert generic.metadata["pmax_estimate"] == result.pmax_estimate
        assert generic.metadata["cover_target"] == result.cover_target
        assert generic.metadata["msc_solver"] == "chlamtac"
